"""Figure 3 of the paper: `from` instance constraints tame aliasing.

Backwards across `z = y.f`, the instance bound to z is narrowed to
`pt(y.f) ∩ r̂`; across the write `x.f = p`, the produced case narrows it
further by `pt(p)`. A fully symbolic analysis would instead fork an
aliased/not-aliased case at every write and only discover contradictions
at allocation sites.

This example drives the backwards transfer functions directly and prints
the evolving mixed symbolic-explicit query, mirroring the figure.

Run:  python examples/from_constraints.py
"""

from repro.ir import compile_program
from repro.ir import instructions as ins
from repro.ir.stmts import walk_commands
from repro.pointsto import analyze
from repro.symbolic import Query, SearchConfig, TransferContext
from repro.symbolic.transfer import transfer_command

SOURCE = """
class Node { Object f; }
class Main {
    static void main() {
        Object a1 = new Object();
        Object a2 = new String();
        Node x = new Node();
        Node y = new Node();
        if (nondet()) { y = x; }
        Object p = a1;
        x.f = p;          // program point 1
        Object z = y.f;   // program point 2
    }
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    pta = analyze(program)
    ctx = TransferContext(pta, SearchConfig())

    cmds = list(walk_commands(program.methods["Main.main"].body))
    field_write = next(c for c in cmds if isinstance(c, ins.FieldWrite))
    field_read = next(c for c in cmds if isinstance(c, ins.FieldRead))

    # Initial query at point 3: z ↦ ẑ with ẑ from r̂ = pt(z).
    q = Query("Main.main")
    region = pta.pt_local("Main.main", "z")
    z_hat = q.new_ref(region, hint="z")
    q.set_local("z", z_hat)
    print(f"query at point 3:\n    {q}\n")

    # Backwards across z = y.f (WIT-READ): ẑ narrowed by pt(y.f), and a
    # fresh ŷ materialized with pt(y).
    (q2,) = transfer_command(field_read, q.copy(), ctx)
    print(f"pre-query at point 2 (after WIT-READ):\n    {q2}\n")

    # Backwards across x.f = p (WIT-WRITE): the produced case narrows ẑ by
    # pt(p) and unifies ŷ with x̂; the not-produced case keeps the cell.
    disjuncts = transfer_command(field_write, q2, ctx)
    print(f"pre-queries at point 1 (after WIT-WRITE, {len(disjuncts)} disjuncts):")
    for i, disjunct in enumerate(disjuncts):
        print(f"  [{i}] {disjunct}")

    print(
        "\nNote how each flow through a variable or field intersects the"
        "\ninstance's points-to region — the contradictions of Figure 3"
        "\n(r̂ ∩ pt(y.f) = ∅) are found long before any allocation site."
    )


if __name__ == "__main__":
    main()
