"""Programmatic refutation certificates through the `analyze` facade.

A leak alarm that the refuter kills is only as trustworthy as the reasons
each branch of the search died. With ``journal=True`` the facade records a
per-query search journal and attaches it to the result, so you can ask
*why* an edge was refuted — which branches were explored, and which typed
kill reason (instance-constraint contradiction, solver unsat, loop
invariant, ...) ended each one — without re-running anything.

Run:  python examples/explain_leak.py
"""

from repro.api import analyze

APP = """
class A extends Activity {
    static boolean keep = false;
    static Activity cache;
    static Activity leaked;
    void onCreate() { if (A.keep) { A.cache = this; } A.leaked = this; }
}
"""


def explain(root_field: str) -> None:
    result = analyze(
        client="reachability",
        source=APP,
        include_library=True,
        root_class="A",
        root_field=root_field,
        target_class="Activity",
        journal=True,
    )
    print(f"=== A.{root_field} -> Activity: {result.status} ===")
    attribution = result.report.attribution
    print(
        f"dead branches across the run: {attribution['total_kills']}"
        f" {attribution['kills'] or ''}\n"
    )
    for record in result.report.records:
        # The certificate is rendered from the attached journal: the full
        # spawn/kill tree of the search for this edge, every leaf labelled
        # with the reason it died (or the witness that survived).
        print(result.certificate(record.description))
        print()


def main() -> None:
    # A.cache is only written under `A.keep`, which is never true: every
    # producer search dies and the edge is *refuted* — the certificate
    # names the contradiction that killed each branch.
    explain("cache")
    # A.leaked is written unconditionally: the search finds a surviving
    # path program, so the alarm is real and the journal shows the
    # witnessed branch alongside the pruned ones.
    explain("leaked")


if __name__ == "__main__":
    main()
