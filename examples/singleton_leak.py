"""Figure 5 of the paper: the confirmed K9Mail singleton leak.

`EmailAddressAdapter.getInstance(activity)` stores the Activity through
two super-constructors into `CursorAdapter.mContext`; the static
`sInstance` keeps the whole chain alive forever. Thresher confirms this
alarm and produces a path program witness for triage.

Run:  python examples/singleton_leak.py
"""

from repro.android.leaks import LeakChecker
from repro.symbolic.replay import replay_witness
from repro.symbolic.witness import render_witness

APP = """
class MessageListActivity extends Activity {
    void onCreate() {
        EmailAddressAdapter a = EmailAddressAdapter.getInstance(this);
    }
}
class ComposeActivity extends Activity {
    void onCreate() {
        EmailAddressAdapter a = EmailAddressAdapter.getInstance(this);
    }
}
class EmailAddressAdapter extends ResourceCursorAdapter {
    private static EmailAddressAdapter sInstance;
    static EmailAddressAdapter getInstance(Context context) {
        if (EmailAddressAdapter.sInstance == null) {
            EmailAddressAdapter.sInstance = new EmailAddressAdapter(context);
        }
        return EmailAddressAdapter.sInstance;
    }
    EmailAddressAdapter(Context context) { super(context); }
}
"""


def main() -> None:
    checker = LeakChecker(APP, "k9mail")
    report = checker.run()

    print(f"alarms reported by the flow-insensitive analysis: {report.num_alarms}")
    for alarm in report.alarms:
        print(f"\n  {alarm.root} ↪ {alarm.target}: {alarm.status.upper()}")
        if alarm.witnessed_path:
            print("  heap path:")
            for edge in alarm.witnessed_path:
                print(f"      {edge}")
            # Render the path program witness for the last edge — the
            # store of the Activity into mContext.
            result = checker.engine.refute_edge(alarm.witnessed_path[-1])
            print("\n" + render_witness(checker.program, result))
            replay = replay_witness(checker.program, result.witness_trace)
            print(f"\n  concrete replay: {'VALIDATED' if replay.validated else replay.reason}")

    print(
        "\nThe fix the K9Mail developers later shipped — removing the"
        "\nsingleton — makes the alarm disappear (see"
        " tests/integration/test_figure5.py)."
    )


if __name__ == "__main__":
    main()
