"""Figures 1 & 2 of the paper: the Vec null-object false alarm.

The shared static `Vec.EMPTY` backing array pollutes the flow-insensitive
points-to graph: it appears to contain every object ever pushed into any
Vec, so the graph claims the Activity is reachable from both `Act.objs`
and `Vec.EMPTY` — two false leak alarms. Refuting them needs the exact
reasoning of the paper: the grow-branch dies at the fresh allocation
(WIT-NEW), and the bypass branch carries `sz < cap` back to the
constructor where sz=0, cap=-1 contradicts it.

Run:  python examples/vec_refutation.py
"""

from repro.ir import compile_program
from repro.pointsto import ELEMS, ContainerSensitive, analyze, find_alarms
from repro.symbolic import Engine, SearchConfig

FIGURE1 = """
class Activity { }
class Main {
    static void main() {
        Act a = new Act();
        a.onCreate();
    }
}
class Act extends Activity {
    static Vec objs = new Vec();
    void onCreate() {
        Vec acts = new Vec();
        acts.push(this);
        Act.objs.push("hello");
    }
}
class Vec {
    static Object[] EMPTY = new Object[1];
    int sz;
    int cap;
    Object[] tbl;
    Vec() { this.sz = 0; this.cap = 0 - 1; this.tbl = Vec.EMPTY; }
    void push(Object val) {
        Object[] oldtbl = this.tbl;
        if (this.sz >= this.cap) {
            this.cap = this.tbl.length * 2;
            this.tbl = new Object[this.cap];
            for (int i = 0; i < this.sz; i++) { this.tbl[i] = oldtbl[i]; }
        }
        this.tbl[this.sz] = val;
        this.sz = this.sz + 1;
    }
}
"""


def main() -> None:
    program = compile_program(FIGURE1)
    pta = analyze(program, policy=ContainerSensitive(containers={"Vec"}))

    # --- Figure 2: the polluted points-to graph --------------------------
    print("Figure 2 — the flow-insensitive points-to graph (dot):\n")
    print(pta.graph.to_dot())

    alarms = find_alarms(pta.graph, program.class_table, "Activity")
    print("\nflow-insensitive leak alarms (all false!):")
    for root, target in alarms:
        print(f"  {root} ↪ {target}")

    # --- the refutation ---------------------------------------------------
    (empty,) = pta.pt_static("Vec", "EMPTY")
    polluted = [
        e for e in pta.graph.heap_edges() if e.src == empty and e.field == ELEMS
    ]
    engine = Engine(pta, SearchConfig(path_budget=50_000))
    print("\nrefuting the polluted EMPTY-contents edges:")
    for edge in polluted:
        result = engine.refute_edge(edge)
        producers = pta.producers_of(edge)
        print(
            f"  {edge}: {result.status.upper()}"
            f" ({len(producers)} producing statements,"
            f" {result.path_programs} path programs)"
        )
        for kind, count in sorted(result.refutation_kinds.items()):
            print(f"      refutations via {kind}: {count}")


if __name__ == "__main__":
    main()
