"""Full leak triage on a benchmark app, in both annotation configurations.

Reproduces one row of the paper's Table 1: alarms raised by the
flow-insensitive analysis, how many the witness-refutation search filters,
and the per-edge effort — then prints the alarms a developer would triage.

Run:  python examples/leak_triage.py [AppName]
"""

import sys

from repro.bench import APPS, app_by_name
from repro.reporting import render_table1, table1_row


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "K9Mail"
    app = app_by_name(name)
    print(f"=== {app.name}: {app.description} ===\n")

    rows = []
    reports = {}
    for annotated in (False, True):
        row, report = table1_row(app, annotated)
        rows.append(row)
        reports[annotated] = report
    print(render_table1(rows))

    report = reports[False]
    print("\nalarms remaining after refutation (Ann?=N):")
    for alarm in report.reported_alarms:
        truth = (
            "REAL LEAK"
            if (alarm.root.class_name, alarm.root.field) in app.true_leak_fields
            else "false positive the search could not refute"
        )
        print(f"  {alarm.root} ↪ {alarm.target}   [{truth}]")
    filtered = [a for a in report.alarms if a.refuted]
    print(f"\nfiltered out: {len(filtered)} alarms")
    for alarm in filtered:
        print(f"  {alarm.root} ↪ {alarm.target}")

    print(f"\navailable benchmark apps: {', '.join(a.name for a in APPS)}")


if __name__ == "__main__":
    main()
