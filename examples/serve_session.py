"""The edit-analyze loop against a resident analysis session.

A :class:`ProgramSession` is the serve daemon's core, usable in-process:
the pipeline front half runs once, every verdict records the search
footprint that produced it, and an ``update`` re-runs only the verdicts
the edit can actually have changed — everything else is answered from
retained state. This script drives the same lifecycle-leak workload the
``BENCH_serve.json`` benchmark uses and prints the accounting: how many
edges the edit invalidated, how many verdicts the warm re-analysis
reused, and that the warm payload is byte-identical to a cold build of
the edited source.

Run:  python examples/serve_session.py
(The same loop over a subprocess: `thresher serve app.mj --stdio`.)
"""

import json

from repro.bench.workloads import lifecycle_app, lifecycle_edit
from repro.serve.session import ProgramSession

PARAMS = {
    "client": "reachability",
    "root_class": "Registry",
    "root_field": "hold",
    "target_class": "Item",
}


def main() -> None:
    source = lifecycle_app(8, leaky=1)
    session = ProgramSession(source, include_library=False)
    try:
        cold, meta = session.analyze(PARAMS)
        print(
            f"cold analyze: {cold['status']}, {meta['jobs_run']} searches,"
            f" {len(cold['verdicts'])} edges, {meta['seconds'] * 1000:.0f}ms"
        )

        # Edit one screen's onStart; the other seven share no code with it.
        update, umeta = session.update(
            {"source": lifecycle_edit(source, screen=3)}
        )
        print(
            f"update: {update['mode']}, changed {update['changed_methods']},"
            f" invalidated {umeta['invalidated_edges']} edge(s),"
            f" retained {umeta['retained_verdicts']}"
        )

        warm, wmeta = session.analyze(PARAMS)
        print(
            f"warm analyze: {warm['status']}, {wmeta['jobs_run']} search(es)"
            f" re-run, {wmeta['verdicts_reused']} verdicts reused,"
            f" {wmeta['seconds'] * 1000:.0f}ms"
        )

        reference = ProgramSession(
            lifecycle_edit(source, screen=3), include_library=False
        )
        try:
            ref, _ = reference.analyze(PARAMS)
        finally:
            reference.close()
        identical = json.dumps(warm["verdicts"], sort_keys=True) == json.dumps(
            ref["verdicts"], sort_keys=True
        )
        print(f"byte-identical to a cold build of the edit: {identical}")
    finally:
        session.close()


if __name__ == "__main__":
    main()
