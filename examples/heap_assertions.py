"""Statically checkable heap assertions — the paper's introduction:

    "A heap reachability checker would also enable a developer to write
    statically checkable assertions about, for example, object lifetimes,
    encapsulation of fields, or immutability of objects."

Three assertion styles on one small connection-pool program:

1. unreachability — secrets never reachable from the public registry;
2. lifetime      — request-scoped objects never escape to statics;
3. encapsulation — the pool's internal slots never leak out.

Run:  python examples/heap_assertions.py
"""

from repro.clients import (
    assert_not_leaked,
    assert_unreachable,
    check_encapsulation,
    check_immutable,
    encapsulated,
    verified,
)
from repro.ir import compile_program
from repro.pointsto import analyze

SOURCE = """
class Credential { }
class Request { int id; }
class Connection {
    Credential auth;
    Connection(Credential c) { this.auth = c; }
}

class Pool {
    Connection slot;                   // the pool's private representation
    Pool() { this.slot = null; }
    void put(Connection c) { this.slot = c; }
    Connection borrow() { return this.slot; }
}

class Registry {
    static Object published;           // world-readable
    static Pool pool;
}

class Main {
    static void main() {
        Credential secret = new Credential();
        Connection conn = new Connection(secret);

        Pool pool = new Pool();
        pool.put(conn);
        Registry.pool = pool;

        // A request-scoped scratch object: must never outlive main.
        Request scratch = new Request();

        // Publish only a sanitized summary, never the credential...
        Object summary = new Object();
        int paranoid = 1;
        if (paranoid == 0) { summary = secret; }   // dead by configuration
        Registry.published = summary;
    }
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    pta = analyze(program)

    # 1. Unreachability: Registry.published never reaches a Credential.
    results = assert_unreachable(pta, "Registry", "published", "Credential")
    status = "VERIFIED" if verified(results) else "VIOLATED"
    print(f"assert: no Credential reachable from Registry.published -> {status}")
    for r in results:
        print(f"    {r.root} ↪ {r.target}: {r.status}"
              f" ({r.refuted_edges} edge refutations)")

    # ...but the same assertion on Registry.pool is genuinely violated
    # (the pool holds the connection which holds the credential).
    results = assert_unreachable(pta, "Registry", "pool", "Credential")
    status = "VERIFIED" if verified(results) else "VIOLATED"
    print(f"\nassert: no Credential reachable from Registry.pool -> {status}")
    for r in results:
        if r.witnessed_path:
            print("    exposure path:")
            for edge in r.witnessed_path:
                print(f"        {edge}")

    # 2. Lifetime: the request-scoped scratch object never escapes.
    leaked = assert_not_leaked(pta, "request0")
    print(f"\nassert: request0 (scratch) never escapes to a static ->"
          f" {'VERIFIED' if verified(leaked) else 'VIOLATED'}")

    # 3. Encapsulation: Pool.slot's contents are reachable from statics
    # only through the pool itself.
    exposures = check_encapsulation(pta, "Pool", "slot")
    alien = [e for e in exposures if e.root.field != "pool"]
    print(f"\nencapsulation of Pool.slot: "
          f"{'intact (only via the pool)' if not alien else 'leaked!'}"
          f" — {len(exposures)} candidate exposure(s) examined")

    # 4. Immutability: Credentials are never mutated after construction;
    # Pools are (put() writes slot).
    for cls in ("Credential", "Connection", "Pool"):
        report = check_immutable(pta, cls)
        print(f"\nimmutability of {cls}: {report.status.upper()}"
              f" ({len(report.sites)} candidate mutation site(s))")


if __name__ == "__main__":
    main()
