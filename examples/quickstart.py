"""Quickstart: compile a program, run the points-to analysis, and ask
Thresher to refute or witness a heap edge.

Run:  python examples/quickstart.py
"""

from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.witness import render_witness

SOURCE = """
class Box { Object v; }
class Main {
    static void main() {
        int flag = 0;
        Object o = new String();
        if (flag == 1) { o = new Object(); }   // dead branch
        Box b = new Box();
        b.v = o;
    }
}
"""


def main() -> None:
    # 1. Frontend: parse, type-check, lower to the structured IR.
    program = compile_program(SOURCE)
    print(f"compiled {program.stats()['methods']} methods,"
          f" {program.stats()['commands']} commands")

    # 2. The up-front flow-insensitive points-to analysis.
    pta = analyze(program)
    print("\nflow-insensitive heap edges:")
    for edge in pta.graph.heap_edges():
        print("  ", edge)

    # 3. On-demand refutation: the flow-insensitive graph claims Box.v may
    # hold the Object allocated in the dead branch; the backwards symbolic
    # execution refutes it (flag == 1 contradicts flag = 0), while the
    # String edge is witnessed.
    engine = Engine(pta, SearchConfig())
    for edge in pta.graph.heap_edges():
        result = engine.refute_edge(edge)
        print(f"\n{edge}: {result.status.upper()}"
              f" ({result.path_programs} path programs)")
        if result.witnessed:
            print(render_witness(program, result))


if __name__ == "__main__":
    main()
