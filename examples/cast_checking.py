"""Downcast safety via refutation — a second client for the same engine.

The paper's introduction lists cast checking among the analyses that
precise heap reachability improves. The flow-insensitive points-to sets
flag every cast whose operand *may* hold an incompatible object; the
witness-refutation search then separates the casts that are provably safe
(all paths to a bad state refuted) from the genuinely dangerous ones
(a path program witness to a ClassCastException).

Run:  python examples/cast_checking.py
"""

from repro.clients import check_casts
from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic.witness import witness_steps

SOURCE = """
class Shape { }
class Circle extends Shape { int radius; }
class Square extends Shape { int side; }

class Main {
    static void main() {
        // 1. Trivially safe: the points-to set is already compatible.
        Shape s1 = new Circle();
        Circle c1 = (Circle) s1;

        // 2. Safe only path-sensitively: the tag never becomes 1, so the
        //    Square branch is dead; the refuter proves it.
        int tag = 0;
        Shape s2 = new Circle();
        if (tag == 1) { s2 = new Square(); }
        Circle c2 = (Circle) s2;

        // 3. Safe because of the instanceof guard.
        Shape s3 = new Circle();
        if (nondet()) { s3 = new Square(); }
        if (s3 instanceof Circle) {
            Circle c3 = (Circle) s3;
        }

        // 4. Genuinely dangerous: both shapes reach the cast unguarded.
        Shape s4 = new Circle();
        if (nondet()) { s4 = new Square(); }
        Circle c4 = (Circle) s4;
    }
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    pta = analyze(program)
    reports = check_casts(pta)
    print(f"checked {len(reports)} casts\n")
    for report in reports:
        line = program.commands[report.label].pos.line
        suspects = ", ".join(sorted(str(l) for l in report.suspects)) or "none"
        print(f"L{line}: ({report.cast.class_name}) {report.cast.src}"
              f" -> {report.status.upper()}   [suspect sites: {suspects}]")
        if report.witness_trace:
            steps = witness_steps(program, report.witness_trace)
            print("      failure path program:")
            for step in steps[-4:]:
                print(f"        L{step.line}: {step.text}")


if __name__ == "__main__":
    main()
