"""Section 4 ablation (hypothesis 2): query simplification off.

The paper re-ran Thresher without any query simplification (no subsumption
joins, no query history) on the annotated library and saw large slowdowns
on the computation-heavy apps (PulsePoint 102.4X, K9Mail 3.2X, SMSPopUp
4.3X; StandupTimer exhausted memory) with no change in the alarms refuted.

We reproduce the direction: same precision, substantial slowdown on the
heavyweight apps (K9Mail is ours), and more path programs explored.
"""

import time

import pytest

from repro.android.leaks import LeakChecker
from repro.bench import APPS, app_by_name
from repro.symbolic import SearchConfig

HEAVY = ["K9Mail", "aMetro", "StandupTimer"]
LIGHT = ["DroidLife", "OpenSudoku"]

_RESULTS = {}


def _run(app_name, simplify):
    app = app_by_name(app_name)
    config = SearchConfig(simplify_queries=simplify, path_budget=5_000)
    start = time.perf_counter()
    report = LeakChecker(app.source, app.name, annotated=True, config=config).run()
    elapsed = time.perf_counter() - start
    _RESULTS[(app_name, simplify)] = (report, elapsed)
    return report, elapsed


@pytest.mark.parametrize("simplify", [True, False], ids=["simplify", "no-simplify"])
@pytest.mark.parametrize("app_name", HEAVY + LIGHT)
def test_ablation_cell(benchmark, app_name, simplify):
    report, _ = benchmark.pedantic(
        _run, args=(app_name, simplify), rounds=1, iterations=1
    )
    assert report is not None


def test_simplification_preserves_precision(benchmark, tables):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: query simplification (Ann?=Y, budget 5k)"]
    for app_name in HEAVY + LIGHT:
        if (app_name, True) not in _RESULTS or (app_name, False) not in _RESULTS:
            pytest.skip("run the per-cell benchmarks first")
        on, t_on = _RESULTS[(app_name, True)]
        off, t_off = _RESULTS[(app_name, False)]
        slowdown = t_off / max(t_on, 1e-6)
        lines.append(
            f"  {app_name:13s} T {t_on:6.2f}s -> {t_off:7.2f}s ({slowdown:5.1f}X)"
            f"  RefA {on.refuted_alarms} -> {off.refuted_alarms}"
            f"  TO {on.edge_timeouts} -> {off.edge_timeouts}"
        )
        # Hypothesis (2): performance-only feature — precision unchanged
        # except where removing it causes extra timeouts.
        assert off.refuted_alarms <= on.refuted_alarms
        if off.edge_timeouts == on.edge_timeouts:
            assert off.refuted_alarms == on.refuted_alarms
    tables.extra_sections.append(("ablation_simplification", "\n".join(lines)))


def test_simplification_speeds_up_heavy_apps(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    slowdowns = []
    for app_name in HEAVY:
        if (app_name, True) not in _RESULTS:
            pytest.skip("run the per-cell benchmarks first")
        _, t_on = _RESULTS[(app_name, True)]
        _, t_off = _RESULTS[(app_name, False)]
        slowdowns.append(t_off / max(t_on, 1e-6))
    # The paper saw 3.2X-102X on the heavy apps; require a clear effect on
    # at least one of ours.
    assert max(slowdowns) >= 2.0
