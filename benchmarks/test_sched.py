"""The adaptive-scheduling perf artifact: fixed schedule vs cost-model
priorities + cheap-first portfolio (+ work stealing), emitting
``BENCH_sched.json``.

The workload is ``repro.bench.workloads.layered_app``: two-edge heap
paths whose *expensive* refutable edge comes first and whose cheap
refutable edge comes second. The fixed Section 2 walk pays the
expensive edge on every path; the portfolio's path-level rung ladder
refutes the cheap edge at the small budget rung and never escalates the
expensive one. Every verdict is REFUTED by construction, so client
outcomes are schedule-independent and asserted identical across the
whole grid.

Deterministic axes (asserted always, smoke and full alike): verdict
parity, actual decision-procedure runs (the portfolio must cut them by
the same >= 1.3x bar), and rung-0 resolutions in the report's schedule
section. Wall-clock ratios are recorded always but asserted only under
``REPRO_BENCH_STRICT=1`` at full size — timings need an idle machine to
mean anything. The work-stealing config reports wall clock only (its
shared budget makes the counters scheduling-dependent), so the CI
comparison guard never treats its counters as deterministic.
"""

import json
import os
import time

from repro.api import AnalysisRequest, analyze
from repro.bench.workloads import layered_app
from repro.obs import metrics
from repro.perf.memo import SOLVER_MEMO

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Opt-in wall-clock assertions (idle machine only); see module docstring.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")

#: The acceptance bar: the portfolio at --jobs 4 must beat the fixed
#: config by at least this factor (deterministically on decision runs,
#: and under STRICT on wall clock too).
SPEEDUP_BAR = 1.3


def _solver_checks() -> int:
    instrument = metrics.REGISTRY.get("solver.checks")
    return instrument.value if instrument is not None else 0


def _run(source: str, deterministic: bool = True, **knobs) -> dict:
    """One cold reachability analysis; counters, wall, and schedule."""
    SOLVER_MEMO.clear()  # cold memo: runs must not feed each other
    checks_before = _solver_checks()
    started = time.perf_counter()
    result = analyze(
        AnalysisRequest(
            source=source,
            client="reachability",
            root_class="Registry",
            root_field="hold",
            target_class="Item",
            include_library=False,
            **knobs,
        )
    )
    wall = time.perf_counter() - started
    stats = result.stats
    report = result.report
    entry = {
        "wall_seconds": round(wall, 4),
        "verdict": {
            "verified": result.verified,
            "status": result.status,
            "items": stats.items,
            "verified_items": stats.verified_items,
            "violated_items": stats.violated_items,
            "inconclusive_items": stats.inconclusive_items,
        },
        "schedule": report.schedule if report is not None else {},
        "knobs": knobs,
    }
    if deterministic:
        # solver.checks counts *actual* decision-procedure runs — a
        # deterministic axis for serial and (steal-free) pool configs,
        # so the CI comparison guard can enforce it; the steal config
        # omits it (shared budgets make exploration order-dependent).
        entry["solver_calls"] = _solver_checks() - checks_before
    return entry


def test_adaptive_scheduling_emits_bench_sched():
    # hard_branches stays 10 even in smoke: the expensive edge must
    # exceed the first rung's budget (path_budget // 16 = 625 path
    # programs) or there is nothing for the ladder to truncate; smoke
    # shrinks the number of jobs instead.
    n, hard_branches = (2, 10) if SMOKE else (8, 10)
    source = layered_app(n, hard_branches=hard_branches)

    grid = {
        "fixed_serial": dict(deterministic=True),
        "portfolio_serial": dict(deterministic=True, portfolio=True),
        "adaptive_jobs4": dict(
            deterministic=True, portfolio=True, schedule="priority", jobs=4
        ),
        "adaptive_steal_jobs4": dict(
            deterministic=False,
            portfolio=True,
            schedule="priority",
            steal=True,
            jobs=4,
        ),
    }
    results = {
        name: _run(source, **knobs) for name, knobs in grid.items()
    }

    # Verdict parity across the whole grid: scheduling reorders and
    # stages work, never answers (every edge here is refutable well
    # under budget, so even stealing cannot move a verdict).
    verdicts = {json.dumps(r["verdict"], sort_keys=True) for r in results.values()}
    assert len(verdicts) == 1, results
    assert results["fixed_serial"]["verdict"]["status"] == "verified"

    fixed = results["fixed_serial"]
    ladder = results["portfolio_serial"]
    adaptive = results["adaptive_jobs4"]

    # The deterministic acceptance bar: the path-level rung ladder must
    # cut actual decision-procedure runs by the same factor the wall
    # bar demands — the expensive first edges are never escalated.
    call_reduction = fixed["solver_calls"] / max(1, ladder["solver_calls"])
    adaptive_reduction = fixed["solver_calls"] / max(1, adaptive["solver_calls"])
    assert call_reduction >= SPEEDUP_BAR, (
        f"portfolio must cut decision runs >= {SPEEDUP_BAR}x, got"
        f" {call_reduction:.2f}x ({fixed['solver_calls']} ->"
        f" {ladder['solver_calls']})"
    )
    assert adaptive_reduction >= SPEEDUP_BAR, (
        f"adaptive --jobs 4 must cut decision runs >= {SPEEDUP_BAR}x, got"
        f" {adaptive_reduction:.2f}x"
    )

    # The rung ladder must actually run: rung 0 resolves the cheap
    # edges, and some expensive edge is carried over, never escalated.
    rungs = {row["rung"]: row for row in ladder["schedule"]["rungs"]}
    assert rungs[0]["resolved"] >= n, rungs
    assert rungs[0]["carryover"] >= 1, rungs

    speedup = fixed["wall_seconds"] / max(1e-9, adaptive["wall_seconds"])
    serial_speedup = fixed["wall_seconds"] / max(
        1e-9, ladder["wall_seconds"]
    )
    if STRICT and not SMOKE:
        # The full-size fixed run is ~10s, so the ratio is far above
        # timer noise — but only on an idle machine, hence the gate.
        assert speedup >= SPEEDUP_BAR, (
            f"adaptive --jobs 4 wall-clock win below bar: {speedup:.2f}x"
            f" (fixed {fixed['wall_seconds']}s, adaptive"
            f" {adaptive['wall_seconds']}s)"
        )

    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "benchmark": "adaptive_scheduling",
        "workload": f"layered_app({n}, hard_branches={hard_branches})",
        "smoke": SMOKE,
        "configs": results,
        "summary": {
            "portfolio_decision_reduction": round(call_reduction, 2),
            "adaptive_decision_reduction": round(adaptive_reduction, 2),
            "portfolio_serial_wall_speedup": round(serial_speedup, 2),
            "adaptive_jobs4_wall_speedup": round(speedup, 2),
            "steals": results["adaptive_steal_jobs4"]["schedule"].get(
                "steals", 0
            ),
        },
        "schema_version": 1,
    }
    targets = [os.path.join(OUT_DIR, "BENCH_sched.json")]
    if not SMOKE:
        # Full-size runs refresh the committed trajectory file at the
        # repo root (benchmarks/out/ is ephemeral and gitignored).
        targets.append(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_sched.json")
        )
    for target in targets:
        with open(target, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
