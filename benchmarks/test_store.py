"""Cold-vs-warm benchmark for the persistent verdict store.

The scaling ablation (``test_scaling.py``) characterizes the *in-process*
cache tiers; this file characterizes the tier underneath them: the
disk-backed verdict store (``repro.perf.store``). One workload, run twice
against the same ``--cache-dir``:

* **cold** — empty store: every solver verdict is decided and written;
* **warm** — the store is closed and reopened (mirrors reloaded from
  sqlite, in-memory memo cleared), so every answer the warm run gets
  without deciding came off disk.

Decision counts (``solver.checks``) are deterministic for a fixed
workload, so the warm-skips-half bar is asserted unconditionally; the
wall-clock ratio is recorded always and asserted only under
``REPRO_BENCH_STRICT=1`` (idle machines only). The measurements are
merged into ``benchmarks/out/BENCH_refute.json`` as a ``store`` section
for the ``compare_bench.py`` guard.
"""

import json
import os
import time

from repro.android.leaks import LeakChecker
from repro.bench.workloads import branchy_app, entailed_app, lattice_app
from repro.obs import metrics
from repro.perf import store as perf_store
from repro.perf.memo import SOLVER_MEMO
from repro.symbolic import SearchConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")

_METRICS = ("solver.checks", "store.hits", "store.misses", "store.writes")


def _snapshot() -> dict:
    out = {}
    for name in _METRICS:
        instrument = metrics.REGISTRY.get(name)
        out[name] = instrument.value if instrument is not None else 0
    return out


def _store_run(source: str, name: str, budget: int, cache_dir: str) -> dict:
    """One leak-check run against ``cache_dir``, with cold in-process
    state: the memo is cleared and the store is detached first, so the
    only carried-over state is what sqlite holds."""
    SOLVER_MEMO.clear()
    perf_store.deactivate()
    before = _snapshot()
    started = time.perf_counter()
    report = LeakChecker(
        source,
        name,
        config=SearchConfig(path_budget=budget, cache_dir=cache_dir),
    ).run()
    wall = time.perf_counter() - started
    assert perf_store.ACTIVE is not None, "store never attached"
    perf_store.ACTIVE.flush()
    delta = {k: v - before[k] for k, v in _snapshot().items()}
    return {
        "wall_seconds": round(wall, 4),
        "solver_calls": delta["solver.checks"],
        "store_hits": delta["store.hits"],
        "store_misses": delta["store.misses"],
        "store_writes": delta["store.writes"],
        "alarms": report.num_alarms,
        "refuted": report.refuted_alarms,
    }


def test_store_cold_vs_warm_emits_bench_section(tmp_path):
    """The acceptance bar for the persistent store: a warm re-run of the
    full ablation workload needs at most half the decision-procedure
    runs of the cold run, with bit-identical verdicts."""
    branches, budget = (8, 20_000) if SMOKE else (12, 40_000)
    lattice = branches // 2 + 1
    # The same workload the scaling ablation uses, so the two BENCH
    # sections describe one corpus.
    source = (
        branchy_app(branches, leaky=False)
        + entailed_app(branches)
        + lattice_app(lattice)
    )
    cache_dir = str(tmp_path / "store")

    try:
        cold = _store_run(source, "store-cold", budget, cache_dir)
        warm = _store_run(source, "store-warm", budget, cache_dir)
    finally:
        perf_store.deactivate()

    # Verdict parity: persistence prunes work, never changes answers.
    assert (warm["alarms"], warm["refuted"]) == (
        cold["alarms"],
        cold["refuted"],
    )
    # The cold run populated the store (it may also hit its own fresh
    # writes intra-run when the bounded in-memory memo misses); the warm
    # run must answer from disk far more than the cold run did.
    assert cold["store_writes"] > 0
    assert warm["store_hits"] > cold["store_hits"]
    assert warm["store_writes"] < cold["store_writes"]

    # Deterministic bar: the warm run skips >= 50% of decisions.
    skip = 1.0 - warm["solver_calls"] / max(1, cold["solver_calls"])
    assert skip >= 0.5, (
        f"warm run skipped only {skip:.0%} of decisions"
        f" ({cold['solver_calls']} -> {warm['solver_calls']})"
    )
    wall_ratio = warm["wall_seconds"] / max(1e-9, cold["wall_seconds"])
    if STRICT and not SMOKE:
        assert wall_ratio < 1.0, (
            f"warm run not faster than cold: {wall_ratio:.2f}x"
        )

    section = {
        "cache_dir": "tmp",
        "cold": cold,
        "warm": warm,
        "decision_skip_ratio": round(skip, 4),
        "warm_wall_ratio": round(wall_ratio, 4),
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    targets = [os.path.join(OUT_DIR, "BENCH_refute.json")]
    if not SMOKE:
        targets.append(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_refute.json")
        )
    for target in targets:
        # Merge into the scaling-ablation payload when it exists (the
        # usual full-benchmarks order); otherwise write a skeleton so a
        # standalone run still produces a comparable artifact.
        try:
            with open(target) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {
                "benchmark": "scaling_ablation",
                "smoke": SMOKE,
                "configs": {},
                "schema_version": 2,
            }
        payload["store"] = section
        with open(target, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
