"""Section 4 ablation (hypothesis 3): loop-invariant inference.

The paper compared the full on-the-fly inference of Section 3.3 against a
trivial one that "simply drops all possibly-affected constraints at any
loop", and found the trivial variant "could never distinguish the contents
of different HashMap objects", failing refutations "even on small,
hand-written test cases".

We reproduce both findings: the hand-written two-HashMap case below is
fully refuted with the full inference and not with DROP_ALL, and DROP_ALL
loses refutations on the benchmark apps.
"""

import pytest

from repro.android.leaks import LeakChecker
from repro.bench import APPS, app_by_name
from repro.symbolic import LoopInference, SearchConfig

# The paper's hand-written multi-HashMap scenario: one map holds the
# Activity, a different (clean) map is published through a static field.
MULTI_MAP = """
class TwoMapsActivity extends Activity {
    void onCreate() {
        HashMap holds = new HashMap();
        holds.put("act", this);
        HashMap clean = new HashMap();
        clean.put("str", "value");
        Registry.publish(clean);
    }
}
class Registry {
    static HashMap published;
    static void publish(HashMap m) { Registry.published = m; }
}
"""

_RESULTS = {}


def _run_multimap(mode):
    config = SearchConfig(loop_inference=mode)
    report = LeakChecker(MULTI_MAP, "multimap", False, config).run()
    _RESULTS[mode] = report
    return report


@pytest.mark.parametrize(
    "mode", [LoopInference.FULL, LoopInference.DROP_ALL], ids=["full", "drop-all"]
)
def test_multimap_cell(benchmark, mode):
    report = benchmark.pedantic(_run_multimap, args=(mode,), rounds=1, iterations=1)
    assert report.num_alarms >= 2


def test_full_inference_distinguishes_hashmaps(benchmark, tables):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if LoopInference.FULL not in _RESULTS or LoopInference.DROP_ALL not in _RESULTS:
        pytest.skip("run the per-mode benchmarks first")
    full = _RESULTS[LoopInference.FULL]
    drop = _RESULTS[LoopInference.DROP_ALL]

    def published_alarm(report):
        return next(a for a in report.alarms if str(a.root) == "Registry.published")

    # Full inference: the clean map provably never holds the Activity.
    assert published_alarm(full).refuted
    # Trivial inference: the contents of the two maps are conflated.
    assert not published_alarm(drop).refuted
    tables.extra_sections.append(
        (
            "ablation_loops",
            "Ablation: loop-invariant inference (multi-HashMap case)\n"
            f"  full:     Registry.published alarm {published_alarm(full).status}\n"
            f"  drop-all: Registry.published alarm {published_alarm(drop).status}\n",
        )
    )


@pytest.mark.parametrize("app_name", ["PulsePoint", "aMetro"])
def test_drop_all_loses_refutations_on_apps(benchmark, app_name):
    app = app_by_name(app_name)

    def run():
        full = LeakChecker(
            app.source, app.name, False, SearchConfig(loop_inference=LoopInference.FULL)
        ).run()
        drop = LeakChecker(
            app.source,
            app.name,
            False,
            SearchConfig(loop_inference=LoopInference.DROP_ALL),
        ).run()
        return full, drop

    full, drop = benchmark.pedantic(run, rounds=1, iterations=1)
    # Weakening the invariants can only lose refutations...
    assert drop.edges_refuted <= full.edges_refuted
    assert drop.refuted_alarms <= full.refuted_alarms
    # ...and on these apps it demonstrably does.
    assert (drop.edges_refuted, drop.refuted_alarms) != (
        full.edges_refuted,
        full.refuted_alarms,
    )
