"""The serve daemon's perf artifact: edit-level incremental re-analysis
vs a cold start, on the lifecycle-leak workload (``BENCH_serve.json``).

The claim the daemon exists to make true: after a one-method edit, the
time to a fresh full verdict set is the cost of the *changed* screen's
refutation plus the diff/delta-solve plumbing — not the whole program.
Cold = construct a session (pipeline front half) + first analyze. Warm =
apply the edit to the live session + re-analyze. The workload's screens
are search-heavy (``branches`` nondeterministic splits each), so the
retained-verdict win dominates the fixed per-update costs.

Wall-clock ratios are asserted only under ``REPRO_BENCH_STRICT=1`` at
full size — both the smoke run (CI, ``REPRO_BENCH_SMOKE``) and default
full runs record them but assert just the deterministic counts
(invalidation scope, reuse, byte-identical parity), since a loaded
machine makes the timings meaningless.
"""

import json
import os
import time

from repro.bench.workloads import lifecycle_app, lifecycle_edit
from repro.serve.session import ProgramSession

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Opt-in wall-clock assertions (idle machine only); see module docstring.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")

REACH_PARAMS = {
    "client": "reachability",
    "root_class": "Registry",
    "root_field": "hold",
    "target_class": "Item",
}


def test_incremental_reanalysis_emits_bench_serve():
    n_screens, branches = (6, 4) if SMOKE else (16, 6)
    edited_screen = n_screens // 2
    source = lifecycle_app(n_screens, leaky=1, branches=branches)
    edited = lifecycle_edit(source, screen=edited_screen)

    # Cold: a fresh session (frontend → IR → Andersen) plus the first
    # full analyze — what a CLI one-shot on the edited source would pay.
    started = time.perf_counter()
    session = ProgramSession(source, include_library=False)
    cold_result, cold_meta = session.analyze(REACH_PARAMS)
    cold_seconds = time.perf_counter() - started

    # Warm: the live session absorbs the edit and re-analyzes.
    started = time.perf_counter()
    update, update_meta = session.update({"source": edited})
    warm_result, warm_meta = session.analyze(REACH_PARAMS)
    warm_seconds = time.perf_counter() - started
    session.close()

    # Parity: the warm payload is byte-identical to a cold session built
    # directly on the edited source.
    reference = ProgramSession(edited, include_library=False)
    ref_result, ref_meta = reference.analyze(REACH_PARAMS)
    reference.close()
    warm_bytes = json.dumps(warm_result["verdicts"], sort_keys=True)
    ref_bytes = json.dumps(ref_result["verdicts"], sort_keys=True)
    assert warm_bytes == ref_bytes, "warm verdicts diverge from cold build"

    # Deterministic scope assertions, smoke and full alike.
    assert update["mode"] == "incremental"
    assert update["changed_methods"] == [f"Screen{edited_screen}.onStart"]
    assert cold_meta["jobs_run"] == n_screens
    assert 1 <= update_meta["invalidated_edges"] < n_screens
    assert warm_meta["jobs_run"] == update_meta["invalidated_edges"]
    assert warm_meta["verdicts_reused"] == update_meta["retained_verdicts"]
    assert warm_meta["verdicts_reused"] > 0

    speedup = cold_seconds / max(1e-9, warm_seconds)
    if STRICT and not SMOKE:
        # The acceptance bar: edit-level re-analysis at least halves the
        # time to fresh verdicts. (Full size is ~600ms cold, so the ratio
        # is well above timer noise on an idle machine.)
        assert speedup >= 2.0, (
            f"incremental must be >= 2x faster than cold, got {speedup:.2f}x"
            f" (cold {cold_seconds * 1000:.0f}ms, warm"
            f" {warm_seconds * 1000:.0f}ms)"
        )

    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "benchmark": "serve_incremental",
        "workload": (
            f"lifecycle_app({n_screens}, leaky=1, branches={branches})"
            f" edited at screen {edited_screen}"
        ),
        "smoke": SMOKE,
        "cold": {
            "seconds": round(cold_seconds, 4),
            "jobs_run": cold_meta["jobs_run"],
            "status": cold_result["status"],
        },
        "update": {
            "seconds": round(update_meta["seconds"], 4),
            "mode": update["mode"],
            "changed_methods": update["changed_methods"],
            "invalidated_edges": update_meta["invalidated_edges"],
            "retained_verdicts": update_meta["retained_verdicts"],
        },
        "warm": {
            "seconds": round(warm_seconds, 4),
            "jobs_run": warm_meta["jobs_run"],
            "verdicts_reused": warm_meta["verdicts_reused"],
        },
        "summary": {
            "speedup": round(speedup, 2),
            "verdicts_byte_identical": warm_bytes == ref_bytes,
        },
        "schema_version": 1,
    }
    targets = [os.path.join(OUT_DIR, "BENCH_serve.json")]
    if not SMOKE:
        # Full-size runs refresh the committed trajectory file at the repo
        # root (benchmarks/out/ is ephemeral and gitignored).
        targets.append(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")
        )
    for target in targets:
        with open(target, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
