"""Shared fixtures for the evaluation benchmarks.

Rows produced by the Table 1 / Table 2 benchmarks are collected in
session-scoped accumulators and rendered into ``benchmarks/out/*.txt`` at
the end of the session, so a single ``pytest benchmarks/ --benchmark-only``
run regenerates every table of the paper.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


class TableCollector:
    def __init__(self) -> None:
        self.table1_rows = []
        self.table2_rows = []
        self.extra_sections: list[tuple[str, str]] = []

    def emit(self) -> None:
        from repro.reporting import render_table1, render_table2

        os.makedirs(OUT_DIR, exist_ok=True)
        if self.table1_rows:
            rows = sorted(self.table1_rows, key=lambda r: (r.app, r.annotated))
            with open(os.path.join(OUT_DIR, "table1.txt"), "w") as fh:
                fh.write(render_table1(rows) + "\n")
        if self.table2_rows:
            with open(os.path.join(OUT_DIR, "table2.txt"), "w") as fh:
                fh.write(render_table2(self.table2_rows) + "\n")
        for name, text in self.extra_sections:
            with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
                fh.write(text + "\n")


@pytest.fixture(scope="session")
def tables():
    collector = TableCollector()
    yield collector
    collector.emit()
