"""Table 1: filtering effectiveness and computational effort per app.

One benchmark per (app, annotation) pair runs the full pipeline — points-to
analysis, alarm enumeration, witness-refutation — and asserts the paper's
shape: refutation soundness (true alarm pairs never refuted), annotation
improving the filtered fraction, and RefEdg ≥ RefA in aggregate. The
rendered table lands in ``benchmarks/out/table1.txt``.
"""

import pytest

from repro.bench import APPS
from repro.reporting import table1_row

_ROWS = {}


def _run(app, annotated):
    row, report = table1_row(app, annotated)
    _ROWS[(app.name, annotated)] = row
    return row


@pytest.mark.parametrize("annotated", [False, True], ids=["annN", "annY"])
@pytest.mark.parametrize("app", APPS, ids=[a.name for a in APPS])
def test_table1_cell(benchmark, tables, app, annotated):
    row = benchmark.pedantic(_run, args=(app, annotated), rounds=1, iterations=1)
    tables.table1_rows.append(row)
    # Soundness: the refuter must never filter a real leak.
    assert row.unsound_refutations == 0
    # Every column is internally consistent.
    assert row.refuted_alarms + row.true_alarms + row.false_alarms == row.alarms
    assert row.refuted_fields <= row.fields


def test_table1_totals_shape(benchmark, tables):
    """Aggregate shape of the paper's Total rows (runs after the cells)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = list(_ROWS.values())
    assert len(rows) == 2 * len(APPS), "run the per-cell benchmarks first"
    rows_n = [r for r in rows if not r.annotated]
    rows_y = [r for r in rows if r.annotated]

    def rate(rows):
        false_total = sum(r.refuted_alarms + r.false_alarms for r in rows)
        return sum(r.refuted_alarms for r in rows) / false_total if false_total else 1.0

    # Annotation removes alarms and filters a (weakly) larger fraction of
    # the remaining false ones — 28% vs 87% in the paper.
    assert sum(r.alarms for r in rows_y) <= sum(r.alarms for r in rows_n)
    assert rate(rows_y) >= rate(rows_n)
    # Refuting an alarm usually requires refuting several edges.
    assert sum(r.edges_refuted for r in rows) >= sum(r.refuted_alarms for r in rows_y)
    # True alarms are identical across configurations (soundness again).
    assert sum(r.true_alarms for r in rows_n) == sum(r.true_alarms for r in rows_y)
