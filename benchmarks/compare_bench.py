"""Compare a fresh BENCH_refute.json against the committed baseline.

CI regenerates the scaling-ablation payload in smoke mode and hands it to
this script together with ``benchmarks/baselines/BENCH_refute_smoke.json``.
The job fails when any config regresses by more than the tolerance on
either guarded axis:

* **wall-clock** — per-config ``wall_seconds`` (with a small absolute
  grace so sub-second timer noise on shared CI runners cannot fail the
  build on its own). Wall-clock regressions are *reported* always but
  only *fatal* under ``REPRO_BENCH_STRICT=1`` — timings need an idle
  machine to mean anything;
* **solver calls** — per-config ``solver_calls``, the count of *actual*
  decision-procedure runs. This one is deterministic for a fixed
  workload, so any growth is a real change in caching behavior, not
  noise; it is fatal unconditionally.

Configs present in only one of the two files are reported (a renamed or
added config should update the baseline in the same PR) but only missing
*baseline coverage of a fresh config* is fatal when ``--strict-configs``
is set; by default the comparison covers the intersection.

Usage::

    python benchmarks/compare_bench.py \
        --fresh benchmarks/out/BENCH_refute.json \
        --baseline benchmarks/baselines/BENCH_refute_smoke.json \
        --output benchmarks/out/BENCH_compare.json

Exit code 0 when every config is within tolerance, 1 on regression,
2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: A config fails when it exceeds baseline * (1 + TOLERANCE) on a guarded
#: axis. 20% is wide enough for runner-to-runner CPU variance and narrow
#: enough to catch a lost cache tier (those show up as 2-10x).
TOLERANCE = 0.20

#: Absolute wall-clock grace (seconds). Smoke-mode configs finish in a few
#: seconds; without a floor, a 0.4s run that jitters to 0.5s would "regress
#: 25%" on scheduler noise alone.
WALL_GRACE_SECONDS = 0.5

#: Wall-clock assertions are opt-in (idle machines only): without
#: ``REPRO_BENCH_STRICT=1`` the wall axis is compared and reported but a
#: regression on it is advisory, never fatal.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")

#: (payload key, label, absolute grace, fatal-without-STRICT)
GUARDED = (
    ("wall_seconds", "wall-clock", WALL_GRACE_SECONDS, False),
    ("solver_calls", "solver calls", 0.0, True),
)

#: The persistent-store bar (``benchmarks/test_store.py``): a warm re-run
#: against a populated store must skip at least this fraction of the cold
#: run's decision-procedure calls. Deterministic, so unconditionally fatal.
STORE_MIN_SKIP = 0.50


def load(path: str) -> dict:
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if "configs" not in payload:
        sys.exit(f"error: {path} has no 'configs' section")
    return payload


def compare(fresh: dict, baseline: dict, strict_configs: bool = False) -> dict:
    fresh_cfgs, base_cfgs = fresh["configs"], baseline["configs"]
    shared = sorted(set(fresh_cfgs) & set(base_cfgs))
    only_fresh = sorted(set(fresh_cfgs) - set(base_cfgs))
    only_base = sorted(set(base_cfgs) - set(fresh_cfgs))

    rows = []
    failures = []
    advisories = []
    for name in shared:
        f_cfg, b_cfg = fresh_cfgs[name], base_cfgs[name]
        row = {"config": name}
        for key, label, grace, always_fatal in GUARDED:
            f_val, b_val = f_cfg.get(key), b_cfg.get(key)
            if f_val is None or b_val is None:
                continue
            limit = b_val * (1.0 + TOLERANCE) + grace
            ratio = f_val / b_val if b_val else float("inf") if f_val else 1.0
            regressed = f_val > limit
            row[key] = {
                "fresh": f_val,
                "baseline": b_val,
                "ratio": round(ratio, 3),
                "limit": round(limit, 4),
                "regressed": regressed,
            }
            if regressed:
                message = (
                    f"{name}: {label} regressed {ratio:.2f}x"
                    f" ({b_val} -> {f_val}, limit {limit:.4g})"
                )
                if always_fatal or STRICT:
                    failures.append(message)
                else:
                    advisories.append(message + " [advisory: set"
                                      " REPRO_BENCH_STRICT=1 to enforce]")
        rows.append(row)

    # The cold-vs-warm store section needs no baseline: the cold run of
    # the same payload *is* the baseline, and the skip ratio is
    # deterministic for a fixed workload.
    store = fresh.get("store")
    store_row = None
    if store and "decision_skip_ratio" in store:
        skip = store["decision_skip_ratio"]
        store_row = {
            "decision_skip_ratio": skip,
            "minimum": STORE_MIN_SKIP,
            "cold_solver_calls": (store.get("cold") or {}).get("solver_calls"),
            "warm_solver_calls": (store.get("warm") or {}).get("solver_calls"),
            "warm_wall_ratio": store.get("warm_wall_ratio"),
            "regressed": skip < STORE_MIN_SKIP,
        }
        if store_row["regressed"]:
            failures.append(
                f"store: warm run skipped only {skip:.0%} of decisions"
                f" (minimum {STORE_MIN_SKIP:.0%})"
            )

    if strict_configs and only_fresh:
        failures.append(
            "configs missing from baseline (refresh"
            f" benchmarks/baselines/): {', '.join(only_fresh)}"
        )

    return {
        "tolerance": TOLERANCE,
        "wall_grace_seconds": WALL_GRACE_SECONDS,
        "strict_wall": STRICT,
        "compared_configs": shared,
        "only_in_fresh": only_fresh,
        "only_in_baseline": only_base,
        "rows": rows,
        "store": store_row,
        "failures": failures,
        "advisories": advisories,
        "ok": not failures,
    }


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="freshly generated payload")
    parser.add_argument("--baseline", required=True, help="committed baseline")
    parser.add_argument(
        "--output", help="write the structured comparison as JSON here"
    )
    parser.add_argument(
        "--strict-configs",
        action="store_true",
        help="fail when a fresh config has no baseline entry",
    )
    args = parser.parse_args(argv)

    fresh, baseline = load(args.fresh), load(args.baseline)
    result = compare(fresh, baseline, strict_configs=args.strict_configs)

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")

    wall_mode = "strict" if STRICT else "advisory"
    print(f"bench comparison: {len(result['compared_configs'])} configs,"
          f" tolerance {TOLERANCE:.0%} (+{WALL_GRACE_SECONDS}s wall grace,"
          f" wall axis {wall_mode})")
    for row in result["rows"]:
        parts = []
        for key, label, _grace, _fatal in GUARDED:
            cell = row.get(key)
            if cell:
                mark = "REGRESSED" if cell["regressed"] else "ok"
                parts.append(
                    f"{label} {cell['baseline']} -> {cell['fresh']}"
                    f" ({cell['ratio']:.2f}x, {mark})"
                )
        print(f"  {row['config']}: " + "; ".join(parts))
    store_row = result.get("store")
    if store_row:
        mark = "REGRESSED" if store_row["regressed"] else "ok"
        print(
            f"  store: warm skipped"
            f" {store_row['decision_skip_ratio']:.0%} of decisions"
            f" (minimum {store_row['minimum']:.0%}, {mark})"
        )
    for name in result["only_in_fresh"]:
        print(f"  {name}: no baseline entry (skipped)")
    for name in result["only_in_baseline"]:
        print(f"  {name}: baseline-only (config removed?)")
    for advisory in result["advisories"]:
        print(f"  advisory: {advisory}")

    if result["failures"]:
        print("\nFAIL:", file=sys.stderr)
        for failure in result["failures"]:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("ok: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
