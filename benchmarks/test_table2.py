"""Table 2: the mixed symbolic-explicit representation vs fully symbolic.

For each app the witness-refutation search runs twice, with the paper's
mixed representation and with the PSE-style fully-symbolic one (points-to
facts only for alias/allocation checks). The paper's findings to
reproduce: the fully-symbolic run is slower and/or times out more, and
never refutes more alarms. A reduced path budget keeps the (deliberately
slow) symbolic runs CI-sized; ``benchmarks/out/table2.txt`` has the table.
"""

import pytest

from repro.bench import APPS
from repro.reporting import table2_row
from repro.symbolic import SearchConfig

BUDGET = SearchConfig(path_budget=1_000)

_ROWS = {}


def _run(app):
    row = table2_row(app, annotated=False, config=BUDGET)
    _ROWS[app.name] = row
    return row


@pytest.mark.parametrize("app", APPS, ids=[a.name for a in APPS])
def test_table2_cell(benchmark, tables, app):
    row = benchmark.pedantic(_run, args=(app,), rounds=1, iterations=1)
    tables.table2_rows.append(row)
    # Dropping the `from` constraints never *gains* precision.
    assert row.symbolic_refuted_alarms <= row.mixed_refuted_alarms
    # ... and never removes timeouts.
    assert row.symbolic_timeouts >= row.mixed_timeouts


def test_table2_aggregate_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = list(_ROWS.values())
    assert len(rows) == len(APPS), "run the per-app benchmarks first"
    total_mixed = sum(r.mixed_seconds for r in rows)
    total_symbolic = sum(r.symbolic_seconds for r in rows)
    # The headline of Table 2: the fully-symbolic representation is
    # substantially slower overall (>= 1.6X on most apps in the paper).
    assert total_symbolic > total_mixed
    slowdowns = [r.slowdown for r in rows if r.mixed_seconds > 0.05]
    assert slowdowns and max(slowdowns) >= 1.6
