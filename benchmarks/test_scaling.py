"""Scaling micro-benchmarks for the core engine.

Not a table in the paper, but the paper's Section 4 discusses where effort
goes (call-stack depth bounding, path-program budgets, the per-edge cost of
refutation vs witnessing). These sweeps characterize our reproduction the
same way:

* call-chain depth: sound callee-skipping keeps deep chains cheap;
* branch count: path programs grow with choices, the budget bounds them;
* container replication: the Figure 1 refutation, N times over.
"""

import pytest

from repro.android.leaks import LeakChecker
from repro.bench.workloads import branchy_app, chain_app, container_app
from repro.symbolic import SearchConfig


@pytest.mark.parametrize("depth", [1, 4, 8])
def test_call_chain_scaling(benchmark, depth):
    source = chain_app(depth)

    def run():
        return LeakChecker(source, f"chain{depth}").run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    chain_alarms = [a for a in report.alarms if str(a.root) == "Chain.hold"]
    assert chain_alarms
    # The leak is real at every depth; beyond the stack bound the callee
    # skipping must degrade to witnessed, never to refuted.
    assert all(not a.refuted for a in chain_alarms)


@pytest.mark.parametrize("branches", [2, 5, 8])
@pytest.mark.parametrize("leaky", [True, False], ids=["leaky", "guarded"])
def test_branching_scaling(benchmark, branches, leaky):
    source = branchy_app(branches, leaky)

    def run():
        return LeakChecker(
            source, f"branchy{branches}", config=SearchConfig(path_budget=20_000)
        ).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    alarms = [a for a in report.alarms if str(a.root) == "Sink.hold"]
    assert alarms
    if leaky:
        assert all(not a.refuted for a in alarms)
    else:
        # x can never exceed 3*branches (each branch adds at most 2):
        # path-sensitive reasoning refutes the guarded store... unless the
        # path-constraint cap makes the bound unprovable, in which case the
        # alarm must be (soundly) witnessed or timed out — never unsound.
        assert all(a.status in ("refuted", "confirmed") for a in alarms)


@pytest.mark.parametrize("n", [1, 3, 6])
def test_container_replication_scaling(benchmark, tables, n):
    source = container_app(n)

    def run():
        return LeakChecker(source, f"containers{n}").run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every alarm is Figure 1 pollution: all refutable.
    assert report.num_alarms >= n
    assert report.refuted_alarms == report.num_alarms
    tables.extra_sections.append(
        (
            f"scaling_containers_{n}",
            f"containers={n}: alarms={report.num_alarms}"
            f" refuted={report.refuted_alarms}"
            f" edgesR={report.edges_refuted} T={report.seconds:.2f}s",
        )
    )


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_parallel_driver_scaling(benchmark, tables, jobs):
    """The parallel refutation driver: same verdicts at every worker
    count, wall-clock characterized per ``jobs`` (edge refutations are
    independent, so the work units schedule freely)."""
    source = container_app(4)

    def run():
        return LeakChecker(source, f"par{jobs}", jobs=jobs).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.refuted_alarms == report.num_alarms
    assert report.run_report is not None
    tables.extra_sections.append(
        (
            f"scaling_jobs_{jobs}",
            f"jobs={jobs}: edges={len(report.run_report.records)}"
            f" busy={report.run_report.busy_seconds:.2f}s"
            f" wall={report.seconds:.2f}s",
        )
    )
