"""Scaling micro-benchmarks for the core engine.

Not a table in the paper, but the paper's Section 4 discusses where effort
goes (call-stack depth bounding, path-program budgets, the per-edge cost of
refutation vs witnessing). These sweeps characterize our reproduction the
same way:

* call-chain depth: sound callee-skipping keeps deep chains cheap;
* branch count: path programs grow with choices, the budget bounds them;
* container replication: the Figure 1 refutation, N times over.
"""

import json
import os
import time

import pytest

from repro.android.leaks import LeakChecker
from repro.bench.workloads import (
    branchy_app,
    chain_app,
    container_app,
    entailed_app,
    lattice_app,
)
from repro.obs import metrics
from repro.perf.memo import SOLVER_MEMO
from repro.symbolic import SearchConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Smoke mode (CI): the same ablation grid on a smaller workload so the
#: artifact is produced in seconds instead of a minute.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Strict mode: also *assert* wall-clock ratios. Wall-clock is only
#: meaningful on an otherwise-idle machine — under concurrent load the
#: ratios fail spuriously — so timing assertions are opt-in; the
#: deterministic counters (solver calls, states, hit rates) are asserted
#: unconditionally, and wall-clock is always still *recorded*.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")


@pytest.mark.parametrize("depth", [1, 4, 8])
def test_call_chain_scaling(benchmark, depth):
    source = chain_app(depth)

    def run():
        return LeakChecker(source, f"chain{depth}").run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    chain_alarms = [a for a in report.alarms if str(a.root) == "Chain.hold"]
    assert chain_alarms
    # The leak is real at every depth; beyond the stack bound the callee
    # skipping must degrade to witnessed, never to refuted.
    assert all(not a.refuted for a in chain_alarms)


@pytest.mark.parametrize("branches", [2, 5, 8])
@pytest.mark.parametrize("leaky", [True, False], ids=["leaky", "guarded"])
def test_branching_scaling(benchmark, branches, leaky):
    source = branchy_app(branches, leaky)

    def run():
        return LeakChecker(
            source, f"branchy{branches}", config=SearchConfig(path_budget=20_000)
        ).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    alarms = [a for a in report.alarms if str(a.root) == "Sink.hold"]
    assert alarms
    if leaky:
        assert all(not a.refuted for a in alarms)
    else:
        # x can never exceed 3*branches (each branch adds at most 2):
        # path-sensitive reasoning refutes the guarded store... unless the
        # path-constraint cap makes the bound unprovable, in which case the
        # alarm must be (soundly) witnessed or timed out — never unsound.
        assert all(a.status in ("refuted", "confirmed") for a in alarms)


@pytest.mark.parametrize("n", [1, 3, 6])
def test_container_replication_scaling(benchmark, tables, n):
    source = container_app(n)

    def run():
        return LeakChecker(source, f"containers{n}").run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every alarm is Figure 1 pollution: all refutable.
    assert report.num_alarms >= n
    assert report.refuted_alarms == report.num_alarms
    tables.extra_sections.append(
        (
            f"scaling_containers_{n}",
            f"containers={n}: alarms={report.num_alarms}"
            f" refuted={report.refuted_alarms}"
            f" edgesR={report.edges_refuted} T={report.seconds:.2f}s",
        )
    )


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_parallel_driver_scaling(benchmark, tables, jobs):
    """The parallel refutation driver: same verdicts at every worker
    count, wall-clock characterized per ``jobs`` (edge refutations are
    independent, so the work units schedule freely)."""
    source = container_app(4)

    def run():
        return LeakChecker(source, f"par{jobs}", jobs=jobs).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.refuted_alarms == report.num_alarms
    assert report.run_report is not None
    tables.extra_sections.append(
        (
            f"scaling_jobs_{jobs}",
            f"jobs={jobs}: edges={len(report.run_report.records)}"
            f" busy={report.run_report.busy_seconds:.2f}s"
            f" wall={report.seconds:.2f}s",
        )
    )


# -- memoization & subsumption ablation (emits BENCH_refute.json) -------------

_ABLATION_METRICS = (
    "solver.checks",
    "solver.entails",
    "executor.entails_calls",
    "executor.states_explored",
    "solver.memo_hits",
    "solver.memo_misses",
    "solver.context_hits",
    "solver.component_memo_hits",
    "solver.component_memo_misses",
    "solver.fastpath_unsat",
    "executor.refuted_cache_hits",
    "executor.refuted_cache_misses",
    "executor.worklist_subsumed",
)


def _registry_snapshot() -> dict:
    out = {}
    for name in _ABLATION_METRICS:
        instrument = metrics.REGISTRY.get(name)
        out[name] = instrument.value if instrument is not None else 0
    return out


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def _ablation_run(source: str, name: str, budget: int, **toggles) -> dict:
    """One cold leak-check run; counter deltas + wall clock."""
    SOLVER_MEMO.clear()  # cold memo: runs must not feed each other
    before = _registry_snapshot()
    started = time.perf_counter()
    report = LeakChecker(
        source, name, config=SearchConfig(path_budget=budget, **toggles)
    ).run()
    wall = time.perf_counter() - started
    delta = {k: v - before[k] for k, v in _registry_snapshot().items()}
    return {
        "wall_seconds": round(wall, 4),
        # solver.checks counts *actual* decision-procedure runs (whole
        # queries on the monolithic path, components on the partitioned
        # path); every cache tier answers without incrementing it.
        "solver_calls": delta["solver.checks"],
        # Structural query-entailment checks (worklist subsumption +
        # refuted-state cache), not the dead solver.entails atom check.
        "entails_calls": delta["executor.entails_calls"],
        "states_explored": delta["executor.states_explored"],
        "memo_hit_rate": round(
            _rate(delta["solver.memo_hits"], delta["solver.memo_misses"]), 4
        ),
        "component_memo_hit_rate": round(
            _rate(
                delta["solver.component_memo_hits"],
                delta["solver.component_memo_misses"],
            ),
            4,
        ),
        "context_hits": delta["solver.context_hits"],
        "fastpath_unsat": delta["solver.fastpath_unsat"],
        "refuted_cache_hit_rate": round(
            _rate(
                delta["executor.refuted_cache_hits"],
                delta["executor.refuted_cache_misses"],
            ),
            4,
        ),
        "worklist_subsumed": delta["executor.worklist_subsumed"],
        "alarms": report.num_alarms,
        "refuted": report.refuted_alarms,
        "toggles": toggles,
    }


def test_memoization_ablation_emits_bench_refute():
    """The canonical perf artifact: the largest scaling configuration run
    under the full toggle grid, written to ``benchmarks/out/BENCH_refute.json``
    so the trajectory (solver calls, states, wall clock, hit rates) is
    comparable across PRs.

    The acceptance bar for the repro.perf layer: caches-on must need at
    most half the solver calls of ``--no-memo --no-subsumption``."""
    branches, budget = (8, 20_000) if SMOKE else (12, 40_000)
    lattice = branches // 2 + 1
    # The largest workload: the branchy path-enumeration stress, the
    # entailed-siblings app whose redundant disjunctive guards make the
    # worklist-subsumption pruner demonstrably fire, and the two-counter
    # lattice whose product-shaped path constraints are where relevance
    # partitioning collapses the verdict key space.
    source = (
        branchy_app(branches, leaky=False)
        + entailed_app(branches)
        + lattice_app(lattice)
    )
    name = f"ablation-branchy{branches}"

    grid = {
        "cached": dict(
            memoize_solver=True, state_subsumption=True, partition_solver=False
        ),
        "memo_only": dict(
            memoize_solver=True, state_subsumption=False, partition_solver=False
        ),
        "subsumption_only": dict(
            memoize_solver=False, state_subsumption=True, partition_solver=False
        ),
        "no_caches": dict(
            memoize_solver=False, state_subsumption=False, partition_solver=False
        ),
        "partitioned": dict(
            memoize_solver=True, state_subsumption=True, partition_solver=True
        ),
    }
    results = {
        label: _ablation_run(source, f"{name}-{label}", budget, **toggles)
        for label, toggles in grid.items()
    }

    cached, baseline = results["cached"], results["no_caches"]
    partitioned = results["partitioned"]
    # Verdict parity across the whole grid (the caches prune work, never
    # change answers).
    assert len({(r["alarms"], r["refuted"]) for r in results.values()}) == 1
    reduction = baseline["solver_calls"] / max(1, cached["solver_calls"])
    speedup = baseline["wall_seconds"] / max(1e-9, cached["wall_seconds"])
    assert reduction >= 2.0, (
        f"memoization+subsumption must at least halve solver calls, got"
        f" {reduction:.2f}x ({baseline['solver_calls']} ->"
        f" {cached['solver_calls']})"
    )
    # Relevance partitioning: at least 2x fewer actual decision-procedure
    # runs than whole-query caching alone.
    partition_reduction = cached["solver_calls"] / max(1, partitioned["solver_calls"])
    partition_speedup = cached["wall_seconds"] / max(
        1e-9, partitioned["wall_seconds"]
    )
    assert partition_reduction >= 2.0, (
        f"partitioning must at least halve actual decisions vs cached, got"
        f" {partition_reduction:.2f}x ({cached['solver_calls']} ->"
        f" {partitioned['solver_calls']})"
    )
    # The entailed-siblings workload makes subsumption observable: the
    # subsumption_only config must show the pruner actually running.
    subs = results["subsumption_only"]
    assert subs["entails_calls"] > 0, "subsumption ran no entailment checks"
    assert subs["worklist_subsumed"] > 0, "worklist subsumption never fired"
    if STRICT and not SMOKE:
        # The full-size run is seconds long, so the wall-clock win is well
        # above timer noise — but only on an idle machine, hence the
        # REPRO_BENCH_STRICT gate.
        assert speedup > 1.0, f"no wall-clock win: {speedup:.2f}x"
        assert partition_speedup >= 1.3, (
            f"partitioning wall-clock win below bar: {partition_speedup:.2f}x"
        )

    os.makedirs(OUT_DIR, exist_ok=True)
    payload = {
        "benchmark": "scaling_ablation",
        "workload": (
            f"branchy_app({branches}, leaky=False) + entailed_app({branches})"
            f" + lattice_app({lattice})"
        ),
        "path_budget": budget,
        "smoke": SMOKE,
        "configs": results,
        "summary": {
            "solver_call_reduction": round(reduction, 2),
            "wall_clock_speedup": round(speedup, 2),
            "partition_decision_reduction": round(partition_reduction, 2),
            "partition_wall_speedup": round(partition_speedup, 2),
        },
        "schema_version": 2,
    }
    targets = [os.path.join(OUT_DIR, "BENCH_refute.json")]
    if not SMOKE:
        # The full-size run refreshes the committed trajectory file at the
        # repo root (benchmarks/out/ is ephemeral and gitignored).
        targets.append(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_refute.json")
        )
    for target in targets:
        with open(target, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
