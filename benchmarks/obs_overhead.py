#!/usr/bin/env python
"""Guard: disabled tracing AND journaling must stay near-zero-cost.

The observability layer (:mod:`repro.obs`) promises that when no tracer is
installed, every instrumentation point costs one function call returning a
shared no-op span — and that when no search journal is installed
(:mod:`repro.obs.provenance`), every journaling hook in the executor and
solver is a guard check that falls through. This script keeps both
promises honest, and CI runs it:

1. microbenchmark the no-op ``trace.span(...)`` call itself;
2. run a real refutation workload with tracing disabled and time it;
3. run it again with a tracer installed to count how many spans the
   workload actually opens;
4. estimate the disabled-mode overhead as (span count x no-op cost) and
   assert it is below ``--threshold`` (default 5%) of the disabled-mode
   wall time;
5. repeat the same count-times-unit-cost estimate for journaling: count
   the journal events the workload records when a journal is installed,
   microbenchmark the disabled ``provenance.enabled()`` guard (the
   costliest disabled-path hook — it runs once per solver check), and
   assert that estimate is under the same threshold;
6. repeat it once more for the always-on slow-query flight recorder:
   count the per-search summaries the workload records, microbenchmark
   one ``FlightRecorder.record`` call (summary-dict build + bounded
   deque append under a lock), and assert that estimate is under the
   same threshold. Unlike tracing/journaling there is no disabled mode
   to compare against — the recorder is on by default, so its hot path
   must itself be within budget.

Exit status 0 = within budget, 1 = overhead budget blown.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py [--threshold 0.05]
"""

from __future__ import annotations

import argparse
import sys
import time


def noop_span_cost(calls: int = 200_000) -> float:
    """Seconds per disabled ``trace.span(...)`` enter/exit round trip."""
    from repro.obs import trace

    assert not trace.enabled(), "tracing must be disabled for the microbench"
    span = trace.span
    start = time.perf_counter()
    for _ in range(calls):
        with span("overhead.probe"):
            pass
    return (time.perf_counter() - start) / calls


def workload_seconds(repeats: int = 3) -> float:
    """Best-of-N wall time of the reference workload, tracing disabled."""
    from repro.android.leaks import LeakChecker
    from repro.bench.workloads import container_app

    source = container_app(3)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        LeakChecker(source, "obs-overhead").run()
        best = min(best, time.perf_counter() - start)
    return best


def workload_span_count() -> int:
    """How many spans the reference workload opens when tracing is on."""
    from repro.android.leaks import LeakChecker
    from repro.bench.workloads import container_app
    from repro.obs import trace

    tracer = trace.install()
    try:
        LeakChecker(container_app(3), "obs-overhead").run()
    finally:
        trace.disable()
    return len(tracer.spans()) + tracer.dropped_spans


def noop_journal_guard_cost(calls: int = 200_000) -> float:
    """Seconds per disabled journaling guard check.

    The executor's per-state hooks reduce to an ``is None`` attribute
    test; the solver's unsat-detail hook calls ``provenance.enabled()``
    once per ``check_sat``. We benchmark the latter — the most expensive
    shape a disabled journaling hook takes."""
    from repro.obs import provenance

    assert (
        not provenance.enabled()
    ), "journaling must be disabled for the microbench"
    enabled = provenance.enabled
    start = time.perf_counter()
    for _ in range(calls):
        if enabled():
            raise AssertionError("journal unexpectedly installed")
    return (time.perf_counter() - start) / calls


def workload_journal_events() -> int:
    """How many journal events the workload records when one is attached."""
    from repro.android.leaks import LeakChecker
    from repro.bench.workloads import container_app
    from repro.obs import provenance

    book = provenance.install()
    try:
        LeakChecker(container_app(3), "obs-overhead").run()
    finally:
        provenance.disable()
    return sum(
        len(journal.events) + journal.dropped_events
        for journal in book.searches
    )


def flight_record_cost(calls: int = 200_000) -> float:
    """Seconds per flight-recorder record: the summary-dict construction
    plus the ring append — everything the driver's per-search hook does
    beyond reading fields the result already holds."""
    from repro.obs.telemetry import FlightRecorder

    recorder = FlightRecorder(size=256)
    record = recorder.record
    start = time.perf_counter()
    for i in range(calls):
        record(
            {
                "kind": "edge",
                "description": "overhead.probe",
                "status": "refuted",
                "seconds": 0.001,
                "path_programs": 3,
                "kill_reasons": {"refuted": 2},
                "footprint_size": 4,
                "rung": 0,
                "worker": "serial",
                "estimate": i,
                "ts": 0.0,
            }
        )
    return (time.perf_counter() - start) / calls


def workload_flight_records() -> int:
    """How many summaries the workload pushes into the flight recorder."""
    from repro.android.leaks import LeakChecker
    from repro.bench.workloads import container_app
    from repro.obs.telemetry import RECORDER

    RECORDER.reset()
    try:
        LeakChecker(container_app(3), "obs-overhead").run()
        return len(RECORDER.recent())
    finally:
        RECORDER.reset()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max tolerated disabled-tracing overhead fraction (default 0.05)",
    )
    args = parser.parse_args(argv)

    per_span = noop_span_cost()
    base = workload_seconds()
    spans = workload_span_count()
    estimate = spans * per_span
    fraction = estimate / base if base > 0 else 0.0

    per_guard = noop_journal_guard_cost()
    events = workload_journal_events()
    journal_estimate = events * per_guard
    journal_fraction = journal_estimate / base if base > 0 else 0.0

    per_record = flight_record_cost()
    records = workload_flight_records()
    flight_estimate = records * per_record
    flight_fraction = flight_estimate / base if base > 0 else 0.0

    print(f"no-op span cost:           {per_span * 1e9:8.1f} ns/span")
    print(f"workload (disabled):       {base * 1e3:8.1f} ms")
    print(f"spans opened (enabled):    {spans:8d}")
    print(
        f"estimated trace overhead:  {estimate * 1e3:8.3f} ms"
        f" ({fraction * 100:.2f}% of the workload)"
    )
    print(f"journal guard cost:        {per_guard * 1e9:8.1f} ns/check")
    print(f"journal events (enabled):  {events:8d}")
    print(
        f"estimated journal overhead:{journal_estimate * 1e3:8.3f} ms"
        f" ({journal_fraction * 100:.2f}% of the workload)"
    )
    print(f"flight record cost:        {per_record * 1e9:8.1f} ns/record")
    print(f"flight records (workload): {records:8d}")
    print(
        f"estimated flight overhead: {flight_estimate * 1e3:8.3f} ms"
        f" ({flight_fraction * 100:.2f}% of the workload)"
    )
    failed = False
    if fraction >= args.threshold:
        print(
            f"FAIL: disabled-tracing overhead {fraction * 100:.2f}%"
            f" >= {args.threshold * 100:.1f}% budget",
            file=sys.stderr,
        )
        failed = True
    if journal_fraction >= args.threshold:
        print(
            f"FAIL: disabled-journaling overhead {journal_fraction * 100:.2f}%"
            f" >= {args.threshold * 100:.1f}% budget",
            file=sys.stderr,
        )
        failed = True
    if flight_fraction >= args.threshold:
        print(
            f"FAIL: flight-recorder overhead {flight_fraction * 100:.2f}%"
            f" >= {args.threshold * 100:.1f}% budget",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(f"OK: within the {args.threshold * 100:.1f}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
