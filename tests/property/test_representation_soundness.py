"""Refutation soundness must hold in every state representation.

Table 2 and the Section 4 ablations run the engine with the
fully-symbolic and fully-explicit representations; both may be slower or
less precise than the mixed one, but *never* unsound. Same harness as
``test_refutation_soundness``, swept over representations (and the
drop-all loop-inference ablation for good measure)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine, LoopInference, Representation, SearchConfig
from repro.symbolic.stats import REFUTED

from .test_refutation_soundness import concrete_edge_keys, graph_edge_key, programs

CONFIGS = [
    SearchConfig(representation=Representation.FULLY_SYMBOLIC, path_budget=2_000),
    SearchConfig(representation=Representation.FULLY_EXPLICIT, path_budget=2_000),
    SearchConfig(loop_inference=LoopInference.DROP_ALL, path_budget=2_000),
    SearchConfig(simplify_queries=False, path_budget=2_000),
    SearchConfig(max_call_depth=1, path_budget=2_000),
    SearchConfig(max_path_constraints=0, path_budget=2_000),
]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_all_configurations_sound(source):
    program = compile_program(source)
    produced = concrete_edge_keys(program)
    pta = analyze(program)
    all_edges = list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
    for config in CONFIGS:
        engine = Engine(pta, config)
        for edge in all_edges:
            result = engine.refute_edge(edge)
            if result.status == REFUTED:
                assert graph_edge_key(edge) not in produced, (
                    f"UNSOUND under {config}: {edge}\n{source}"
                )
