"""Refutation soundness (Theorem 1), tested against executable ground truth.

Hypothesis generates small mini-Java programs over a fixed class universe;
the bounded concrete interpreter enumerates their executions and records
every heap points-to edge actually produced. The witness-refutation engine
must never refute an edge that some concrete run produced.

(The converse — refuting every absent edge — is *precision*, not soundness,
and is intentionally not asserted here.)
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir import Interpreter, Limits, compile_program
from repro.pointsto import analyze
from repro.pointsto.graph import HeapEdge, StaticFieldNode
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.stats import REFUTED

HEADER = """
class Box { Object v; Box next; int n; }
class M {
    static Box s;
    static Object o;
    static void main() {
        Box b0 = null; Box b1 = null; Box b2 = null;
        Object o0 = null; Object o1 = null;
        int i0 = 0; int i1 = 0;
"""
FOOTER = """
    }
}
"""

BOX_VARS = ["b0", "b1", "b2"]
OBJ_VARS = ["o0", "o1"]
INT_VARS = ["i0", "i1"]


@st.composite
def simple_stmt(draw):
    # Weighted toward allocations and stores so most generated programs
    # actually create heap edges for the refuter to examine.
    kind = draw(
        st.sampled_from(
            [
                "new_box",
                "new_box",
                "new_box",
                "new_obj",
                "new_obj",
                "copy_box",
                "null_box",
                "store_v",
                "store_v",
                "store_v",
                "store_next",
                "store_next",
                "store_n",
                "load_v",
                "load_next",
                "static_store_s",
                "static_store_s",
                "static_store_o",
                "static_load",
                "int_set",
                "int_inc",
                "recipe_store",
                "recipe_store",
                "recipe_chain",
                "recipe_static",
                "cast",
                "obj_from_box",
            ]
        )
    )
    b = draw(st.sampled_from(BOX_VARS))
    b2 = draw(st.sampled_from(BOX_VARS))
    o = draw(st.sampled_from(OBJ_VARS))
    i = draw(st.sampled_from(INT_VARS))
    k = draw(st.integers(0, 3))
    return {
        # Multi-statement recipes that guarantee heap edges exist.
        "recipe_store": f"{b} = new Box(); {o} = new Object(); {b}.v = {o};",
        "recipe_chain": f"{b} = new Box(); {b2}.next = {b}; M.s = {b2};",
        "recipe_static": f"{b} = new Box(); M.s = {b}; {b2} = M.s;",
        **{
        "new_box": f"{b} = new Box();",
        "new_obj": f"{o} = new Object();",
        "copy_box": f"{b} = {b2};",
        "null_box": f"{b} = null;",
        "store_v": f"{b}.v = {o};",
        "store_next": f"{b}.next = {b2};",
        "store_n": f"{b}.n = {k};",
        "load_v": f"{o} = {b2}.v;",
        "load_next": f"{b} = {b2}.next;",
        "static_store_s": f"M.s = {b};",
        "static_store_o": f"M.o = {o};",
        "static_load": f"{b} = M.s;",
        "int_set": f"{i} = {k};",
        "int_inc": f"{i} = {i} + 1;",
        "cast": f"{b} = (Box) {o};",
        "obj_from_box": f"{o} = {b2};",
        },
    }[kind]


@st.composite
def block(draw, depth):
    n = draw(st.integers(1, 4))
    stmts = []
    for _ in range(n):
        if depth > 0 and draw(st.booleans()) and draw(st.booleans()):
            stmts.append(draw(compound_stmt(depth - 1)))
        else:
            stmts.append(draw(simple_stmt()))
    return " ".join(stmts)


@st.composite
def compound_stmt(draw, depth):
    kind = draw(
        st.sampled_from(
            ["if_nondet", "if_null", "if_cmp", "if_refeq", "if_instanceof", "loop"]
        )
    )
    body = draw(block(depth))
    if kind == "if_nondet":
        orelse = draw(block(depth))
        return f"if (nondet()) {{ {body} }} else {{ {orelse} }}"
    if kind == "if_null":
        b = draw(st.sampled_from(BOX_VARS))
        return f"if ({b} == null) {{ {body} }}"
    if kind == "if_refeq":
        b1, b2 = draw(st.sampled_from(BOX_VARS)), draw(st.sampled_from(BOX_VARS))
        return f"if ({b1} == {b2}) {{ {body} }}"
    if kind == "if_instanceof":
        o = draw(st.sampled_from(OBJ_VARS))
        return f"if ({o} instanceof Box) {{ {body} }}"
    if kind == "if_cmp":
        i = draw(st.sampled_from(INT_VARS))
        k = draw(st.integers(0, 3))
        op = draw(st.sampled_from(["<", "<=", "==", ">="]))
        return f"if ({i} {op} {k}) {{ {body} }}"
    # Bounded loop with a guaranteed increment.
    i = draw(st.sampled_from(INT_VARS))
    k = draw(st.integers(1, 3))
    return f"{i} = 0; while ({i} < {k}) {{ {body} {i} = {i} + 1; }}"


@st.composite
def programs(draw):
    return HEADER + draw(block(2)) + FOOTER


def concrete_edge_keys(program):
    """(src-site-or-static, field, dst-site) triples over all bounded runs."""
    interp = Interpreter(
        program,
        Limits(max_loop_iterations=4, max_steps=6_000, max_paths=400),
    )
    keys = set()
    for edge in interp.produced_edges():
        keys.add((edge.src, edge.field_name, edge.dst))
    return keys


def graph_edge_key(edge: HeapEdge):
    if edge.is_static_root:
        src = edge.src
        assert isinstance(src, StaticFieldNode)
        return (("static", src.class_name, src.field), edge.field, edge.dst.site)
    return (edge.src.site, edge.field, edge.dst.site)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_concretely_produced_edges_never_refuted(source):
    program = compile_program(source)
    produced = concrete_edge_keys(program)
    pta = analyze(program)
    engine = Engine(pta, SearchConfig(path_budget=3_000))
    all_edges = list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
    for edge in all_edges:
        result = engine.refute_edge(edge)
        if result.status == REFUTED:
            assert graph_edge_key(edge) not in produced, (
                f"UNSOUND: refuted edge {edge} is produced concretely\n"
                f"program:\n{source}"
            )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_flow_insensitive_graph_covers_concrete_edges(source):
    """Sanity of the substrate itself: the Andersen graph must contain every
    concretely produced edge (its own soundness)."""
    program = compile_program(source)
    produced = concrete_edge_keys(program)
    pta = analyze(program)
    graph_keys = {
        graph_edge_key(e)
        for e in list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
    }
    missing = produced - graph_keys
    assert not missing, f"points-to analysis missed edges {missing}\n{source}"
