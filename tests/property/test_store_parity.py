"""Warm-store vs cold parity (the persistent store's soundness contract).

The disk-backed verdict store (:mod:`repro.perf.store`) may only skip
decision-procedure runs whose outcome an earlier run already proved —
never change an answer. Three layers of evidence:

* a Hypothesis sweep over generated mini-Java programs: every edge is
  refuted cold (no store), then against a freshly populated store after
  the in-memory caches are wiped — verdicts and witness traces must be
  bit-identical;
* the same claim through :func:`repro.api.analyze` for all four clients
  (their wire renderings must match, and the warm run must actually hit
  the store);
* the process-pool backend: workers attach the same store directory and
  their hits surface in the merged run report.

Budgets are generous for the same reason as ``test_memo_parity``: a
tight budget could flip a TIMEOUT to a verdict across runs and fake a
mismatch that is really a budget artifact.
"""

import tempfile

import pytest
from hypothesis import HealthCheck, given, seed, settings

from repro.api import CLIENTS, analyze
from repro.ir import compile_program
from repro.perf import store as perf_store
from repro.perf.memo import SOLVER_MEMO
from repro.pointsto import analyze as pointsto_analyze
from repro.symbolic import Engine, SearchConfig

from .test_refutation_soundness import programs

CONFIG = SearchConfig(path_budget=4_000)


@pytest.fixture(autouse=True)
def detached_store():
    perf_store.deactivate()
    yield
    perf_store.deactivate()


def refute_all(pta, config):
    """(status, witness trace) per edge, in deterministic edge order,
    from cold in-memory caches."""
    SOLVER_MEMO.clear()
    engine = Engine(pta, config)
    out = {}
    edges = list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
    for edge in edges:
        result = engine.refute_edge(edge)
        trace = tuple(result.witness_trace) if result.witness_trace else None
        out[str(edge)] = (result.status, trace)
    return out


@seed(20130613)  # PLDI'13 — fixed so CI failures reproduce locally
@settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_warm_store_verdicts_and_witnesses_identical_to_cold(source):
    pta = pointsto_analyze(compile_program(source))
    perf_store.deactivate()
    cold = refute_all(pta, CONFIG)
    with tempfile.TemporaryDirectory() as cache_dir:
        stored = CONFIG.copy(cache_dir=cache_dir)
        try:
            populating = refute_all(pta, stored)
            # Close the store (flushing the write-behind queue) and run
            # again: every reused verdict now provably came off disk.
            perf_store.deactivate()
            warm = refute_all(pta, stored)
        finally:
            perf_store.deactivate()
    assert populating == cold, (
        "populating the store changed an answer\nprogram:\n" + source
    )
    assert warm == cold, (
        "a warm store changed an answer\nprogram:\n" + source
    )


# -- client-level parity ------------------------------------------------------

CLIENT_REQUESTS = {
    "casts": dict(
        source=(
            "class A { } class B { } class M { static void main() {"
            " int tag = 0;"
            " Object o = new B();"
            " if (tag == 1) { o = new A(); }"
            " A a = (A) o; } }"
        ),
    ),
    "immutability": dict(
        source=(
            "class Point { int x; Point(int x) { this.x = x; } }"
            " class M { static void main() {"
            " Point p = new Point(1);"
            " int debug = 0;"
            " if (debug == 1) { p.x = 9; } } }"
        ),
        class_name="Point",
    ),
    "encapsulation": dict(
        source=(
            "class Rep { } class Owner { Rep rep;"
            "   Owner() { this.rep = new Rep(); }"
            "   Rep expose() { return this.rep; } }"
            " class M { static Rep stolen; static void main() {"
            " Owner o = new Owner(); M.stolen = o.expose(); } }"
        ),
        owner_class="Owner",
        field_name="rep",
    ),
    "reachability": dict(
        source=(
            "class Secret { } class M { static Object pub;"
            " static void main() {"
            " Object o = new Object();"
            " int k = 0;"
            " if (k == 5) { o = new Secret(); }"
            " M.pub = o; } }"
        ),
        root_class="M",
        root_field="pub",
        target_class="Secret",
    ),
}


def canon(result) -> dict:
    """The result's wire rendering minus everything timing- or
    cache-shaped: what "bit-identical verdicts" means on the wire."""
    d = result.to_dict()
    d["stats"].pop("seconds", None)
    report = d.pop("report") or {}
    d["records"] = sorted(
        (r["kind"], r["description"], r["status"])
        for r in report.get("records", [])
    )
    return d


class TestClientParity:
    @pytest.mark.parametrize("client", CLIENTS)
    def test_warm_equals_cold_for_every_client(self, client, tmp_path):
        kwargs = CLIENT_REQUESTS[client]
        SOLVER_MEMO.clear()
        cold = canon(analyze(client=client, **kwargs))
        cache_dir = str(tmp_path)

        SOLVER_MEMO.clear()
        populating = canon(analyze(client=client, cache_dir=cache_dir, **kwargs))
        perf_store.deactivate()

        SOLVER_MEMO.clear()
        warm = canon(analyze(client=client, cache_dir=cache_dir, **kwargs))
        assert perf_store.ACTIVE is not None
        assert perf_store.ACTIVE.hits > 0, "warm run never touched the store"

        assert populating == cold, f"{client}: populating changed the answer"
        assert warm == cold, f"{client}: a warm store changed the answer"

    def test_process_backend_shares_the_store(self, tmp_path):
        """``--backend process`` parity: workers attach the same store
        directory, and their hits surface in the merged run report."""
        kwargs = CLIENT_REQUESTS["reachability"]
        cache_dir = str(tmp_path)
        SOLVER_MEMO.clear()
        cold = canon(analyze(client="reachability", jobs=2, **kwargs))

        SOLVER_MEMO.clear()
        analyze(client="reachability", cache_dir=cache_dir, **kwargs)
        perf_store.deactivate()

        SOLVER_MEMO.clear()
        warm_result = analyze(
            client="reachability",
            cache_dir=cache_dir,
            jobs=2,
            backend="process",
            **kwargs,
        )
        assert canon(warm_result) == cold
        store_section = warm_result.report.cache["store"]
        assert store_section["enabled"]
        assert store_section["hits"] > 0, "no worker ever hit the store"
