"""Cached vs uncached parity (the repro.perf soundness contract).

Hypothesis generates small mini-Java programs (same universe as the
refutation-soundness suite); every heap/static edge is refuted twice —
once with all caches on (solver memoization + refuted-state cache +
worklist subsumption), once with everything ablated — and the verdicts
and witness traces must be identical. The caches may only skip work whose
outcome is already proven, never change an answer.

Budgets are generous on purpose: with caches on, the same path budget
stretches further, so a tight budget could flip a TIMEOUT to a verdict
and produce a spurious "mismatch" that is really a budget artifact.
"""

from hypothesis import HealthCheck, given, seed, settings

from repro.ir import compile_program
from repro.perf.memo import SOLVER_MEMO
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig

from .test_refutation_soundness import programs

CACHED = SearchConfig(
    path_budget=4_000, memoize_solver=True, state_subsumption=True
)
UNCACHED = SearchConfig(
    path_budget=4_000, memoize_solver=False, state_subsumption=False
)


def refute_all(pta, config):
    """(status, witness trace) per edge, in deterministic edge order."""
    SOLVER_MEMO.clear()
    engine = Engine(pta, config)
    out = {}
    edges = list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
    for edge in edges:
        result = engine.refute_edge(edge)
        trace = tuple(result.witness_trace) if result.witness_trace else None
        out[str(edge)] = (result.status, trace)
    return out


@seed(20130613)  # PLDI'13 — fixed so CI failures reproduce locally
@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_verdicts_and_witnesses_identical_with_and_without_caches(source):
    pta = analyze(compile_program(source))
    with_caches = refute_all(pta, CACHED)
    without_caches = refute_all(pta, UNCACHED)
    assert with_caches == without_caches, (
        "memoization changed an answer\nprogram:\n" + source
    )


@seed(20130613)
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_each_ablation_is_independently_neutral(source):
    """Each cache is neutral on its own, not just in combination."""
    pta = analyze(compile_program(source))
    baseline = refute_all(pta, UNCACHED)
    memo_only = refute_all(
        pta, UNCACHED.copy(memoize_solver=True)
    )
    subsumption_only = refute_all(
        pta, UNCACHED.copy(state_subsumption=True)
    )
    assert memo_only == baseline, "solver memo changed an answer\n" + source
    assert subsumption_only == baseline, (
        "state subsumption changed an answer\n" + source
    )
