"""Frontend property tests: pretty-printing round-trips, checker
idempotence, and interpreter determinism over random programs."""

from hypothesis import HealthCheck, given, settings

from repro.ir import Interpreter, Limits, compile_program
from repro.lang import check_program, parse_program
from repro.lang.pretty import pretty_program

from .test_refutation_soundness import programs

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**_SETTINGS)
@given(programs())
def test_pretty_print_round_trip(source):
    """pretty ∘ parse is a fixed point after one iteration."""
    unit1 = parse_program(source)
    printed1 = pretty_program(unit1)
    unit2 = parse_program(printed1)
    printed2 = pretty_program(unit2)
    assert printed1 == printed2


@settings(**_SETTINGS)
@given(programs())
def test_checker_idempotent(source):
    unit = parse_program(source)
    check_program(unit)
    check_program(unit)  # re-checking the resolved tree must succeed


@settings(**_SETTINGS)
@given(programs())
def test_round_tripped_program_has_same_ir_size(source):
    """Lowering the pretty-printed program yields the same command count —
    the desugarings are syntax-directed."""
    direct = compile_program(source)
    round_tripped = compile_program(pretty_program(parse_program(source)))
    assert sum(1 for _ in direct.all_commands()) == sum(
        1 for _ in round_tripped.all_commands()
    )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(programs())
def test_interpreter_deterministic(source):
    """Exploration is deterministic: two runs enumerate identical traces."""
    program = compile_program(source)
    limits = Limits(max_loop_iterations=3, max_steps=4_000, max_paths=200)

    def snapshot():
        return [
            (run.status, tuple(run.produced))
            for run in Interpreter(program, limits).explore()
        ]

    assert snapshot() == snapshot()
