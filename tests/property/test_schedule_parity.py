"""Scheduling vs verdict parity (the repro.engine.schedule contract).

The scheduling layer reorders and re-budgets *work*, never answers:

* **priority vs LIFO** — the cost-model dispatch order and best-first
  worklist change which state is expanded next, but on budget-ample runs
  every search still converges to the same verdict;
* **portfolio vs single rung** — cheap-first budget rungs re-run only
  survivors, and the final rung is the full configured budget, so every
  job ends with exactly the single-rung verdict.

Hypothesis generates small mini-Java programs (same universe as the
refutation-soundness suite) and all four analysis clients run end to end
under each policy pair; verdicts and per-item outcomes must match, and
for priority-vs-LIFO the per-job record statuses too. Effort counters
(path programs, wall clock) are deliberately *not* compared —
reordering and re-running legitimately change them. The portfolio's
path-level ladder may resolve a *different set* of edges than the
serial Section 2 walk (a cheap path-mate can break the path before an
expensive edge is escalated — the same latitude the jobs>1 contract
already grants), so for the portfolio the record check is agreement:
any job recorded by both runs must carry the same status. Work
stealing is excluded: its shared budget can resolve searches that
would otherwise time out (strictly more precise, not bit-identical
near the budget boundary), which is why it has its own toggle.
"""

from hypothesis import HealthCheck, given, seed, settings

from repro.api import AnalysisRequest, analyze
from repro.perf.memo import SOLVER_MEMO

from .test_refutation_soundness import programs

#: The four clients with the selectors matching the generated program
#: universe (classes Box and M, statics M.s / M.o).
CLIENT_REQUESTS = (
    dict(client="reachability", root_class="M", root_field="s", target_class="Box"),
    dict(client="casts"),
    dict(client="immutability", class_name="Box"),
    dict(client="encapsulation", owner_class="M", field_name="s"),
)


def _verdicts(source: str, **knobs) -> list:
    """Deterministic verdict fingerprint of all four clients' results —
    statuses and per-record verdicts only, no effort counters."""
    out = []
    for req in CLIENT_REQUESTS:
        SOLVER_MEMO.clear()
        result = analyze(
            AnalysisRequest(source=source, budget=3_000, **req, **knobs)
        )
        records = (
            tuple(
                (record.description, record.status)
                for record in result.report.records
            )
            if result.report is not None
            else None
        )
        stats = result.stats
        out.append(
            (
                result.client,
                result.verified,
                result.status,
                stats.items,
                stats.verified_items,
                stats.violated_items,
                stats.inconclusive_items,
                records,
            )
        )
    return out


@seed(20130613)  # PLDI'13 — fixed so CI failures reproduce locally
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_priority_schedule_matches_lifo_for_all_four_clients(source):
    assert _verdicts(source, schedule="priority") == _verdicts(
        source, schedule="lifo"
    ), "priority scheduling changed a client outcome\nprogram:\n" + source


def _strip_records(fingerprint: list) -> list:
    return [entry[:-1] for entry in fingerprint]


def _record_maps(fingerprint: list) -> list:
    return [dict(entry[-1] or ()) for entry in fingerprint]


@seed(20130613)
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_portfolio_matches_single_rung_for_all_four_clients(source):
    ladder = _verdicts(source, portfolio=True)
    single = _verdicts(source)
    assert _strip_records(ladder) == _strip_records(single), (
        "the budget portfolio changed a client outcome\nprogram:\n" + source
    )
    # The ladder may resolve a different *set* of jobs (a cheap path-mate
    # can break a path before an expensive edge escalates), but any job
    # both runs recorded must agree on its status.
    for ladder_records, single_records in zip(
        _record_maps(ladder), _record_maps(single)
    ):
        for description in ladder_records.keys() & single_records.keys():
            assert ladder_records[description] == single_records[description], (
                f"portfolio flipped {description!r}\nprogram:\n" + source
            )
