"""Partitioned vs monolithic solver parity (the repro.solver.partition
soundness contract).

Two layers of evidence that relevance partitioning never changes an
answer, only skips work:

* **atom-level** — Hypothesis generates random mixed ``RefAtom`` /
  ``LinAtom`` conjunctions (shared variables, NULL operands, nonnull
  facts, ground contradictions); ``check_sat`` must agree between the
  monolithic path and every partitioned flavor (cold, memo-warmed,
  context-warmed, memo-disabled);
* **client-level** — Hypothesis generates small mini-Java programs (same
  universe as the refutation-soundness suite) and all four analysis
  clients run end to end with partitioning on and off; verdicts, per-item
  outcomes, and per-job record statuses must be bit-identical
  (``--no-partition`` restores the exact pre-partitioning solver path).
"""

from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.api import AnalysisRequest, analyze
from repro.perf.memo import SOLVER_MEMO, SOLVER_PARTITION
from repro.solver import (
    NULL,
    LinAtom,
    LinExpr,
    SolverContext,
    check_sat,
)

from .test_refutation_soundness import programs

REF_VARS = ["r0", "r1", "r2", "r3"]
INT_VARS = ["x0", "x1", "x2", "x3", "x4"]


@st.composite
def lin_atoms(draw):
    n = draw(st.integers(0, 3))
    vs = draw(
        st.lists(st.sampled_from(INT_VARS), min_size=n, max_size=n, unique=True)
    )
    coeffs = {
        v: draw(st.integers(-3, 3).filter(lambda c: c != 0)) for v in vs
    }
    const = draw(st.integers(-8, 8))
    op = draw(st.sampled_from(["<=", "==", "!="]))
    return LinAtom(op, LinExpr.of(coeffs, const))


@st.composite
def ref_atoms(draw):
    from repro.solver import ref_eq, ref_ne

    sides = REF_VARS + [NULL]
    a = draw(st.sampled_from(sides))
    b = draw(st.sampled_from(sides))
    return draw(st.sampled_from([ref_eq, ref_ne]))(a, b)


@st.composite
def conjunctions(draw):
    atoms = draw(
        st.lists(st.one_of(lin_atoms(), ref_atoms()), min_size=0, max_size=10)
    )
    nonnull = frozenset(
        draw(st.lists(st.sampled_from(REF_VARS), max_size=3, unique=True))
    )
    return atoms, nonnull


@seed(20130613)  # PLDI'13 — fixed so CI failures reproduce locally
@settings(
    max_examples=250,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(conjunctions())
def test_partitioned_check_sat_agrees_with_monolithic(case):
    atoms, nonnull = case
    memo_was, part_was = SOLVER_MEMO.enabled, SOLVER_PARTITION.enabled
    try:
        SOLVER_MEMO.set_enabled(True)
        SOLVER_MEMO.clear()
        SOLVER_PARTITION.set_enabled(False)
        mono = check_sat(atoms, nonnull=nonnull)

        SOLVER_PARTITION.set_enabled(True)
        SOLVER_MEMO.clear()
        cold = check_sat(atoms, nonnull=nonnull)
        warm = check_sat(atoms, nonnull=nonnull)  # whole-query memo hit
        ctx = SolverContext()
        with_ctx = check_sat(atoms, nonnull=nonnull, context=ctx)
        from_ctx = check_sat(atoms, nonnull=nonnull, context=ctx)

        SOLVER_MEMO.set_enabled(False)
        no_memo = check_sat(atoms, nonnull=nonnull)

        got = (cold, warm, with_ctx, from_ctx, no_memo)
        assert all(v == mono for v in got), (
            f"partitioned solver diverged: monolithic={mono} got={got}\n"
            f"atoms={atoms}\nnonnull={set(nonnull)}"
        )
    finally:
        SOLVER_MEMO.set_enabled(memo_was)
        SOLVER_PARTITION.set_enabled(part_was)
        SOLVER_MEMO.clear()


# -- client-level parity -------------------------------------------------------

#: The four clients with the selectors matching the generated program
#: universe (classes Box and M, statics M.s / M.o).
CLIENT_REQUESTS = (
    dict(client="reachability", root_class="M", root_field="s", target_class="Box"),
    dict(client="casts"),
    dict(client="immutability", class_name="Box"),
    dict(client="encapsulation", owner_class="M", field_name="s"),
)


def _outcome(source: str, partition: bool) -> list:
    """Deterministic fingerprint of all four clients' results."""
    out = []
    for req in CLIENT_REQUESTS:
        SOLVER_MEMO.clear()
        result = analyze(
            AnalysisRequest(
                source=source, budget=3_000, partition=partition, **req
            )
        )
        records = (
            tuple(
                (record.description, record.status)
                for record in result.report.records
            )
            if result.report is not None
            else None
        )
        stats = result.stats
        out.append(
            (
                result.client,
                result.verified,
                result.status,
                stats.items,
                stats.verified_items,
                stats.violated_items,
                stats.inconclusive_items,
                stats.path_programs,
                records,
            )
        )
    return out


@seed(20130613)
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_all_four_clients_identical_with_and_without_partition(source):
    assert _outcome(source, partition=True) == _outcome(
        source, partition=False
    ), "partitioning changed a client outcome\nprogram:\n" + source
