"""Integration test: the paper's Figure 1 running example.

The `Vec` class uses the null-object pattern: every empty Vec shares the
static `EMPTY` array. The code never writes into `EMPTY` (push always
grows first, because the constructor establishes sz=0 > cap=-1, i.e.
sz >= cap at the first push), but a flow-insensitive points-to analysis
pollutes `arr0.contents` with `act0`, producing the false leak alarm

    Act.objs ↪ vec0, vec0.tbl ↪ arr0, arr0.contents ↪ act0

Thresher refutes the `arr0.contents ↪ act0` edge: the path through the
grow-branch dies at the `new Object[cap]` allocation (WIT-NEW), and the
bypass path carries `sz < cap` back to the constructor, where sz=0,
cap=-1 contradicts it. The copy-loop producer additionally requires the
loop-invariant inference of Section 3.3.
"""

import pytest

from repro.ir import compile_program
from repro.pointsto import ELEMS, ContainerSensitive, analyze, find_alarms
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.stats import REFUTED, WITNESSED

FIGURE1 = """
class Activity { }

class Main {
    static void main() {
        Act a = new Act();
        a.onCreate();
    }
}

class Act extends Activity {
    static Vec objs = new Vec();
    void onCreate() {
        Vec acts = new Vec();
        acts.push(this);
        Act.objs.push("hello");
    }
}

class Vec {
    static Object[] EMPTY = new Object[1];
    int sz;
    int cap;
    Object[] tbl;
    Vec() {
        this.sz = 0;
        this.cap = 0 - 1;
        this.tbl = Vec.EMPTY;
    }
    void push(Object val) {
        Object[] oldtbl = this.tbl;
        if (this.sz >= this.cap) {
            this.cap = this.tbl.length * 2;
            this.tbl = new Object[this.cap];
            for (int i = 0; i < this.sz; i++) {
                this.tbl[i] = oldtbl[i];
            }
        }
        this.tbl[this.sz] = val;
        this.sz = this.sz + 1;
    }
}
"""


@pytest.fixture(scope="module")
def fig1():
    prog = compile_program(FIGURE1)
    pta = analyze(prog, policy=ContainerSensitive(containers={"Vec"}))
    engine = Engine(pta, SearchConfig(path_budget=50_000))
    return prog, pta, engine


def empty_array_loc(pta):
    (loc,) = pta.pt_static("Vec", "EMPTY")
    return loc


class TestFlowInsensitiveImprecision:
    def test_graph_pollutes_empty_array(self, fig1):
        """Figure 2: the flow-insensitive graph claims EMPTY holds act0."""
        _, pta, _ = fig1
        empty = empty_array_loc(pta)
        contents = {str(l) for l in pta.pt_field(empty, ELEMS)}
        assert "act0" in contents

    def test_alarm_reported_by_points_to_alone(self, fig1):
        prog, pta, _ = fig1
        alarms = find_alarms(pta.graph, prog.class_table, "Activity")
        roots = {str(root) for root, _ in alarms}
        # Both static roots reach the Activity in the polluted graph.
        assert "Vec.EMPTY" in roots
        assert "Act.objs" in roots

    def test_activity_never_in_empty_concretely(self, fig1):
        """Ground truth via the concrete interpreter: no run ever stores
        anything into the shared EMPTY array."""
        from repro.ir import Interpreter

        prog, _, _ = fig1
        for run in Interpreter(prog).explore():
            empty = run.statics.get(("Vec", "EMPTY"))
            if empty is not None:
                assert empty.elems == {}


class TestRefutation:
    def _contents_edges(self, pta):
        empty = empty_array_loc(pta)
        return [
            e
            for e in pta.graph.heap_edges()
            if e.src == empty and e.field == ELEMS and e.dst.class_name == "Act"
        ]

    def test_empty_contents_act_edge_refuted(self, fig1):
        """The core result of Section 2: arr0.contents ↪ act0 is refuted
        at every producing statement (both line 20 and the copy loop)."""
        _, pta, engine = fig1
        edges = self._contents_edges(pta)
        assert edges, "expected the polluted edge to exist"
        for edge in edges:
            result = engine.refute_edge(edge)
            assert result.status == REFUTED, f"{edge}: {result.status}"

    def test_edge_has_multiple_producers(self, fig1):
        """Both the push-write (line 20) and the copy loop (line 17) are
        candidate producers of the polluted edge."""
        _, pta, engine = fig1
        edge = self._contents_edges(pta)[0]
        producers = pta.producers_of(edge)
        assert len(producers) == 2

    def test_string_into_empty_also_refuted(self, fig1):
        """The "hello" string is also never stored into EMPTY (it goes into
        objs' freshly grown array)."""
        _, pta, engine = fig1
        empty = empty_array_loc(pta)
        edges = [
            e
            for e in pta.graph.heap_edges()
            if e.src == empty and e.field == ELEMS and e.dst.class_name == "String"
        ]
        assert edges
        for edge in edges:
            assert engine.refute_edge(edge).status == REFUTED

    def test_string_push_into_grown_array_witnessed(self, fig1):
        """The real flow — the string pushed into objs' own grown array —
        must be witnessed, not refuted."""
        _, pta, engine = fig1
        empty = empty_array_loc(pta)
        edges = [
            e
            for e in pta.graph.heap_edges()
            if e.field == ELEMS
            and e.dst.class_name == "String"
            and e.src != empty
        ]
        assert edges
        statuses = {engine.refute_edge(e).status for e in edges}
        assert WITNESSED in statuses

    def test_act_into_grown_array_witnessed(self, fig1):
        """acts.push(this) legitimately stores the Act into acts' grown
        array: witnessed."""
        _, pta, engine = fig1
        empty = empty_array_loc(pta)
        edges = [
            e
            for e in pta.graph.heap_edges()
            if e.field == ELEMS and e.dst.class_name == "Act" and e.src != empty
        ]
        assert edges
        statuses = {engine.refute_edge(e).status for e in edges}
        assert WITNESSED in statuses
