"""Integration tests for the serve daemon: a full analyze → edit →
update → analyze lifecycle against :class:`ProgramSession`, plus the
stdio transport end to end.

The central claims of the incremental re-analysis design, as tested here:

* an edit to one screen of the lifecycle workload invalidates *only* the
  verdicts whose recorded search footprint intersects the changed method
  (``invalidated_edges`` ≥ 1 but strictly less than the total edge count);
* the warm re-analysis answers every untouched edge from retained state
  (``verdicts_reused`` > 0, ``jobs_run`` equals the invalidated count);
* the warm session's verdict payload is byte-identical to a cold session
  built directly on the edited source.
"""

import io
import json

import pytest

from repro.bench.workloads import lifecycle_app, lifecycle_edit
from repro.serve.server import handle_request, serve_stdio
from repro.serve.protocol import Request
from repro.serve.session import ProgramSession

N_SCREENS = 6
EDITED = 2  # the screen the canonical edit touches

REACH_PARAMS = {
    "client": "reachability",
    "root_class": "Registry",
    "root_field": "hold",
    "target_class": "Item",
}


@pytest.fixture(scope="module")
def lifecycle_source():
    return lifecycle_app(N_SCREENS, leaky=1)


class TestLifecycle:
    def test_analyze_edit_update_analyze(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            cold, cold_meta = session.analyze(REACH_PARAMS)
            assert cold["status"] == "violated"  # screen 0 really leaks
            total_edges = len(cold["verdicts"])
            assert total_edges == N_SCREENS
            assert cold_meta["jobs_run"] == N_SCREENS
            assert cold_meta["verdicts_reused"] == 0

            # A repeated identical request re-runs nothing.
            again, again_meta = session.analyze(REACH_PARAMS)
            assert again_meta["jobs_run"] == 0
            assert again_meta["verdicts_reused"] == N_SCREENS
            assert again["verdicts"] == cold["verdicts"]

            # The canonical one-method edit: incremental, footprint-scoped.
            edited = lifecycle_edit(lifecycle_source, screen=EDITED)
            update, update_meta = session.update({"source": edited})
            assert update["mode"] == "incremental"
            assert update["changed_methods"] == [f"Screen{EDITED}.onStart"]
            assert 1 <= update_meta["invalidated_edges"] < total_edges
            assert (
                update_meta["retained_verdicts"]
                == total_edges - update_meta["invalidated_edges"]
            )

            # Warm re-analysis: only the invalidated footprint re-runs.
            warm, warm_meta = session.analyze(REACH_PARAMS)
            assert warm_meta["jobs_run"] == update_meta["invalidated_edges"]
            assert warm_meta["verdicts_reused"] == update_meta["retained_verdicts"]
            assert warm_meta["verdicts_reused"] > 0
            assert warm["status"] == "violated"

            # Byte-identical parity with a cold session on the edited source.
            cold_session = ProgramSession(edited, include_library=False)
            try:
                cold_edited, _ = cold_session.analyze(REACH_PARAMS)
            finally:
                cold_session.close()
            assert json.dumps(warm["verdicts"], sort_keys=True) == json.dumps(
                cold_edited["verdicts"], sort_keys=True
            )
        finally:
            session.close()

    def test_noop_and_classes_update_flavors(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            # Re-sending the loaded source changes nothing.
            noop, noop_meta = session.update({"source": lifecycle_source})
            assert noop["mode"] == "noop"
            assert noop_meta["invalidated_edges"] == 0

            # The classes= flavor splices one class body.
            from repro.serve.session import split_classes

            name = f"Screen{EDITED}"
            edited_cls = split_classes(
                lifecycle_edit(lifecycle_source, screen=EDITED)
            )[name]
            update, meta = session.update({"classes": {name: edited_cls}})
            assert update["mode"] == "incremental"
            assert update["changed_methods"] == [f"{name}.onStart"]
            assert meta["invalidated_edges"] >= 1
        finally:
            session.close()

    def test_declaration_edit_takes_rebuild_path(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            edited = lifecycle_source.replace(
                "class Registry { static Item hold; }",
                "class Registry { static Item hold; static Item spare; }",
            )
            update, meta = session.update({"source": edited})
            assert update["mode"] == "rebuild"
            assert update["reason"] == "declarations"
            assert meta["retained_verdicts"] == 0
            # The session still answers correctly after the rebuild.
            warm, warm_meta = session.analyze(REACH_PARAMS)
            assert warm["status"] == "violated"
            assert warm_meta["verdicts_reused"] == 0
        finally:
            session.close()

    def test_non_additive_edit_takes_rebuild_path(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            # Deleting a statement cannot ride the monotone solver.
            edited = lifecycle_source.replace(
                f"this.pad = this.pad + 1; /*edit-{EDITED}*/", f"/*edit-{EDITED}*/"
            )
            update, _ = session.update({"source": edited})
            assert update["mode"] == "rebuild"
            assert update["reason"] == "non-additive edit"
        finally:
            session.close()

    def test_error_paths(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            with pytest.raises(ValueError, match="use the update op"):
                session.analyze({"client": "casts", "source": "class A { }"})
            with pytest.raises(ValueError, match="unknown analyze param"):
                session.analyze({"client": "casts", "sauce": 1})
            with pytest.raises(ValueError, match="unknown client"):
                session.analyze({"client": "nonsense"})
            with pytest.raises(ValueError, match="takes no selectors"):
                session.analyze({"client": "casts", "class_name": "Item"})
            with pytest.raises(ValueError, match="exactly one of source="):
                session.update({})
            with pytest.raises(ValueError, match="exactly one of source="):
                session.update({"source": "x", "classes": {}})
            with pytest.raises(ValueError, match="--journal"):
                session.explain({"description": "whatever"})
        finally:
            session.close()

    def test_explain_with_journal(self, lifecycle_source):
        session = ProgramSession(
            lifecycle_source, include_library=False, journal=True
        )
        try:
            result, _ = session.analyze(REACH_PARAMS)
            refuted = next(
                desc
                for desc, r in (
                    (rec["description"], rec)
                    for rec in result["report"]["records"]
                )
                if r["status"] == "refuted"
            )
            explained, _ = session.explain({"description": refuted})
            assert explained["status"] == "refuted"
            assert explained["certificate"]
        finally:
            session.close()


class TestStdioTransport:
    def _drive(self, session, requests):
        stdin = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests)
        )
        stdout = io.StringIO()
        assert serve_stdio(session, stdin=stdin, stdout=stdout) == 0
        lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
        ready, responses = lines[0], lines[1:]
        assert ready["ready"] and ready["ok"]
        return responses

    def test_full_round_trip(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        edited = lifecycle_edit(lifecycle_source, screen=EDITED)
        try:
            responses = self._drive(
                session,
                [
                    {"id": 1, "op": "analyze", "params": REACH_PARAMS},
                    {"id": 2, "op": "update", "params": {"source": edited}},
                    {"id": 3, "op": "analyze", "params": REACH_PARAMS},
                    {"id": 4, "op": "status"},
                    {"id": 5, "op": "not-an-op"},
                    {"id": 6, "op": "shutdown"},
                ],
            )
            by_id = {r["id"]: r for r in responses}
            assert by_id[1]["ok"] and by_id[1]["result"]["status"] == "violated"
            assert by_id[2]["ok"]
            assert by_id[2]["result"]["mode"] == "incremental"
            assert by_id[3]["ok"]
            assert by_id[3]["meta"]["verdicts_reused"] > 0
            assert by_id[3]["meta"]["jobs_run"] == (
                by_id[2]["meta"]["invalidated_edges"]
            )
            status = by_id[4]["result"]
            assert status["updates_applied"] == 1
            assert status["metrics"]["serve.requests"] >= 4
            assert not by_id[5]["ok"]
            assert by_id[5]["error"]["type"] == "ProtocolError"
            assert by_id[6]["ok"] and by_id[6]["result"]["stopping"]
        finally:
            session.close()

    def test_errors_keep_the_daemon_alive(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            stdin = io.StringIO(
                "{bad json\n"
                + json.dumps(
                    {"id": 2, "op": "analyze", "params": {"client": "nope"}}
                )
                + "\n"
                + json.dumps({"id": 3, "op": "status"})
                + "\n"
            )
            stdout = io.StringIO()
            serve_stdio(session, stdin=stdin, stdout=stdout)
            lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
            responses = lines[1:]
            assert [r["ok"] for r in responses] == [False, False, True]
            assert responses[0]["error"]["type"] == "ProtocolError"
            assert "unknown client" in responses[1]["error"]["message"]
        finally:
            session.close()

    def test_handle_request_wraps_session_errors(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            response = handle_request(
                session, Request(op="update", id=9, params={})
            )
            assert not response["ok"]
            assert response["id"] == 9
            assert "exactly one of source=" in response["error"]["message"]
        finally:
            session.close()


class TestTelemetryOps:
    """The observability verbs: ``metrics``, ``watch``, and the status
    payload's scheduling/telemetry sections."""

    def test_metrics_op_prometheus_and_json(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            response = handle_request(session, Request(op="metrics", id=1))
            assert response["ok"]
            result = response["result"]
            assert result["format"] == "prometheus"
            assert result["content_type"].startswith("text/plain")
            text = result["exposition"]
            assert text.startswith("# repro-exposition-version")
            assert "repro_serve_requests_total" in text
            assert 'repro_solver_answers_total{tier="decision"}' in text

            as_json = handle_request(
                session, Request(op="metrics", id=2, params={"format": "json"})
            )
            assert as_json["ok"]
            metrics_dump = as_json["result"]["metrics"]
            assert metrics_dump["serve.requests"]["type"] == "counter"

            bad = handle_request(
                session, Request(op="metrics", id=3, params={"format": "xml"})
            )
            assert not bad["ok"]
            assert "unknown metrics format" in bad["error"]["message"]
        finally:
            session.close()

    def test_watch_op_streams_lifecycle_with_cursor(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            first = handle_request(
                session, Request(op="watch", id=1, params={"snapshot": True})
            )
            assert first["ok"]
            assert first["result"]["events"] == []
            assert first["result"]["snapshot"]["totals"]["scheduled"] == 0

            session.analyze(REACH_PARAMS)
            response = handle_request(session, Request(op="watch", id=2))
            assert response["ok"]
            events = response["result"]["events"]
            kinds = [e["event"] for e in events]
            assert kinds[0] == "RunStarted"
            assert "EdgeFinished" in kinds
            assert kinds[-1] == "RunFinished"
            finished = [e for e in events if e["event"] == "EdgeFinished"]
            assert len(finished) == N_SCREENS
            assert all(e["seq"] > 0 and "ts" in e for e in events)

            # Resuming from the returned cursor yields nothing new.
            cursor = response["result"]["cursor"]
            again = handle_request(
                session, Request(op="watch", id=3, params={"since": cursor})
            )
            assert again["result"]["events"] == []
            assert again["result"]["cursor"] == cursor
        finally:
            session.close()

    def test_hub_survives_driver_rebuild(self, lifecycle_source):
        """The hub is session-lifetime: a declaration edit rebuilds the
        driver, and events from the new driver keep arriving."""
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            cursor = session.hub.events_since(0)[0]
            edited = lifecycle_source.replace(
                "class Item { }", "class Item { int tag; }"
            )
            session.update({"source": edited})
            session.analyze(REACH_PARAMS)
            _, rows = session.hub.events_since(cursor)
            assert any(r["event"] == "RunFinished" for r in rows)
        finally:
            session.close()

    def test_status_carries_schedule_and_telemetry(self, lifecycle_source):
        session = ProgramSession(lifecycle_source, include_library=False)
        try:
            session.analyze(REACH_PARAMS)
            result, _ = session.status()
            assert "steals" in result["schedule"]
            assert "priority_inversions" in result["schedule"]
            assert "rungs" in result["schedule"]
            assert "driver.steals" in result["metrics"]
            assert "driver.priority_inversions" in result["metrics"]
            assert "decisions" in result["cache_tiers"]
            telemetry_snap = result["telemetry"]
            assert telemetry_snap["totals"]["scheduled"] >= 0
            assert telemetry_snap["run"] is not None
            assert telemetry_snap["in_flight"] == []
        finally:
            session.close()


class TestSharedStore:
    """Persistent verdict store across serve sessions: restarts resume
    from disk, and concurrent sessions share one store."""

    def test_sessions_share_one_store_across_restart_and_concurrently(
        self, lifecycle_source, tmp_path
    ):
        import threading

        from repro.perf import store as perf_store
        from repro.symbolic import SearchConfig

        config = SearchConfig(cache_dir=str(tmp_path))
        try:
            first = ProgramSession(
                lifecycle_source, include_library=False, config=config
            )
            try:
                baseline, _ = first.analyze(REACH_PARAMS)
                status, _ = first.status()
                assert status["store"]["enabled"], status["store"]
                assert perf_store.ACTIVE is not None
                perf_store.ACTIVE.flush()
                assert perf_store.ACTIVE.stats()["entries"] > 0
            finally:
                first.close()

            # "Restart": drop the process-wide store (closing the file),
            # then two fresh client sessions attach the same directory
            # and analyze concurrently, sharing one reopened store.
            perf_store.deactivate()
            sessions = [
                ProgramSession(
                    lifecycle_source, include_library=False, config=config
                )
                for _ in range(2)
            ]
            results = {}

            def run(index: int) -> None:
                results[index] = sessions[index].analyze(REACH_PARAMS)[0]

            try:
                threads = [
                    threading.Thread(target=run, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                for session in sessions:
                    session.close()

            # Both clients saw the cold session's verdicts, unchanged.
            assert results[0]["verdicts"] == baseline["verdicts"]
            assert results[1]["verdicts"] == baseline["verdicts"]
            assert results[0]["status"] == baseline["status"]
            # And they really answered from the shared store.
            assert perf_store.ACTIVE is not None
            assert perf_store.ACTIVE.hits > 0, "no session hit the store"
        finally:
            perf_store.deactivate()
