"""Whole-pipeline stress: one larger app exercising every language and
library feature at once — multiple components, containers, casts,
instanceof, asserts, throws, fragments, services, async tasks — checked
end-to-end for soundness against interpreter ground truth."""

import pytest

from repro.android.harness import build_full_source
from repro.android.leaks import LeakChecker
from repro.clients import check_casts, check_immutable
from repro.ir import Interpreter, Limits, build_program, heap_reaches
from repro.lang import frontend

MEGA_APP = """
class Session {
    Activity owner;
    int token;
    Session(Activity a, int t) { this.owner = a; this.token = t; }
}

class SessionStore {
    static HashMap live = new HashMap();
    static Session current;
    static boolean pinSessions = false;

    static void open(Activity a, int t) {
        Session s = new Session(a, t);
        SessionStore.live.put("session", s);
        if (SessionStore.pinSessions) {
            SessionStore.current = s;
        }
    }
}

class Router {
    static Object lastScreen;
    static void navigate(Object screen, int commit) {
        if (!(screen instanceof Activity)) {
            throw new Object();
        }
        Activity a = (Activity) screen;
        if (commit == 1) {
            Router.lastScreen = a;
        }
    }
}

class InboxActivity extends Activity {
    void onCreate() {
        SessionStore.open(this, 7);
        Vec drafts = new Vec();
        drafts.push(this);
        drafts.push("draft");
        assert drafts.size() == 2;
    }
    void onResume() {
        Router.navigate(this, 1);
    }
}

class SettingsActivity extends Activity {
    void onCreate() {
        ArrayList prefs = new ArrayList();
        prefs.add("dark-mode");
        prefs.add(this);
        Router.navigate(this, 0);
    }
}

class InboxFragment extends Fragment {
    static InboxFragment shown;
    void onAttach(Activity a) {
        this.attach(a);
        if (nondet()) { InboxFragment.shown = this; }
    }
}

class RefreshTask extends AsyncTask {
    Object doInBackground(Object p) { return p; }
    void onPostExecute(Object r) { }
}

class MailService extends Service {
    void onStartCommand() {
        RefreshTask t = new RefreshTask();
        t.execute(this);
    }
}
"""


@pytest.fixture(scope="module")
def mega():
    checker = LeakChecker(MEGA_APP, "mega")
    return checker, checker.run()


def concrete_truth():
    program = build_program(frontend(build_full_source(MEGA_APP)))
    interp = Interpreter(
        program, Limits(max_loop_iterations=4, max_steps=80_000, max_paths=800)
    )
    truth = set()
    for run in interp.explore():
        for key, site in heap_reaches(run.statics, program.class_table, {"Activity"}):
            truth.add((key, site))
    return truth


class TestMegaApp:
    def test_pipeline_runs(self, mega):
        _, report = mega
        assert report.num_alarms > 0
        assert report.seconds < 120

    def test_soundness_against_ground_truth(self, mega):
        checker, report = mega
        truth = concrete_truth()
        reported = {
            ((a.root.class_name, a.root.field), a.target.site)
            for a in report.reported_alarms
        }
        refuted = {
            ((a.root.class_name, a.root.field), a.target.site)
            for a in report.alarms
            if a.refuted
        }
        assert truth <= reported, f"missed true leaks: {truth - reported}"
        assert not (truth & refuted), f"unsoundly refuted: {truth & refuted}"

    def test_pinned_session_flag_refuted(self, mega):
        # pinSessions is never true: SessionStore.current alarms refute.
        _, report = mega
        flagged = [a for a in report.alarms if a.root.field == "current"]
        assert flagged and all(a.refuted for a in flagged)

    def test_uncommitted_navigation_refuted(self, mega):
        # SettingsActivity navigates with commit=0; only the Inbox commit=1
        # flow can reach Router.lastScreen.
        _, report = mega
        by_target = {
            str(a.target): a for a in report.alarms if a.root.field == "lastScreen"
        }
        assert by_target, "router alarms expected"
        settings = [a for t, a in by_target.items() if "settings" in t.lower()]
        inbox = [a for t, a in by_target.items() if "inbox" in t.lower()]
        assert settings and all(a.refuted for a in settings)
        assert inbox and all(not a.refuted for a in inbox)

    def test_fragment_pin_is_reported(self, mega):
        _, report = mega
        flagged = [
            a for a in report.alarms if a.root.field == "shown" and not a.refuted
        ]
        assert flagged  # nondet() guard: genuinely reachable

    def test_live_hashmap_session_leak_reported(self, mega):
        _, report = mega
        flagged = [a for a in report.alarms if a.root.field == "live"]
        assert flagged and any(not a.refuted for a in flagged)

    def test_casts_all_safe(self, mega):
        # The only cast is guarded by instanceof (+ throw on failure).
        checker, _ = mega
        reports = check_casts(checker.pta, engine=checker.engine)
        assert reports
        assert all(r.status == "safe" for r in reports)

    def test_session_immutable_after_construction(self, mega):
        checker, _ = mega
        report = check_immutable(checker.pta, "Session", engine=checker.engine)
        assert report.verified
