"""Integration tests over the synthetic benchmark applications.

These encode the *shape* requirements of the paper's Table 1:

* refutation soundness at the client level — an alarm pair that is
  concretely realizable is never refuted;
* the annotated configuration (Ann?=Y) filters at least as large a
  fraction of false alarms as the unannotated one;
* per-app expectations (DroidLife: all alarms true; OpenSudoku: all alarms
  are container pollution, gone under annotation; StandupTimer: the latent
  flag leak is refuted).
"""

import pytest

from repro.android.leaks import LeakChecker
from repro.bench import APPS, app_by_name
from repro.bench.workloads import concrete_leak_pairs, concrete_leaks
from repro.reporting import table1_row


@pytest.fixture(scope="module")
def results():
    out = {}
    for app in APPS:
        for annotated in (False, True):
            row, report = table1_row(app, annotated)
            out[(app.name, annotated)] = (app, row, report)
    return out


class TestGroundTruth:
    @pytest.mark.parametrize("app", APPS, ids=lambda a: a.name)
    def test_declared_truth_matches_interpreter(self, app):
        assert concrete_leaks(app) == set(app.true_leak_fields)


class TestSoundness:
    def test_no_true_alarm_ever_refuted(self, results):
        for (name, annotated), (app, row, report) in results.items():
            assert row.unsound_refutations == 0, (
                f"{name} Ann={annotated}: true alarm refuted"
            )

    def test_true_leaks_always_reported(self, results):
        for (name, annotated), (app, row, report) in results.items():
            truth = concrete_leak_pairs(app)
            reported = {
                ((a.root.class_name, a.root.field), a.target.site)
                for a in report.reported_alarms
            }
            missing = truth - reported
            assert not missing, f"{name} Ann={annotated} missed true leaks {missing}"


class TestFilteringShape:
    def test_annotation_reduces_alarms(self, results):
        for app in APPS:
            _, row_n, _ = results[(app.name, False)]
            _, row_y, _ = results[(app.name, True)]
            assert row_y.alarms <= row_n.alarms

    def test_annotation_filters_fraction_at_least_as_well(self, results):
        """Paper: 28% of false alarms refuted un-annotated vs 87% annotated."""

        def false_refutation_rate(rows):
            false_total = sum(r.refuted_alarms + r.false_alarms for r in rows)
            refuted = sum(r.refuted_alarms for r in rows)
            return refuted / false_total if false_total else 1.0

        rows_n = [results[(a.name, False)][1] for a in APPS]
        rows_y = [results[(a.name, True)][1] for a in APPS]
        assert false_refutation_rate(rows_y) >= false_refutation_rate(rows_n)

    def test_refuted_edges_at_least_refuted_alarms(self, results):
        """Refuting one alarm often requires refuting several edges
        (RefEdg >= RefA in the paper's totals)."""
        total_edges = sum(r.edges_refuted for (_, r, _) in results.values())
        total_alarms = sum(r.refuted_alarms for (_, r, _) in results.values())
        assert total_edges >= total_alarms

    def test_remaining_false_alarms_drop_under_annotation(self, results):
        false_n = sum(results[(a.name, False)][1].false_alarms for a in APPS)
        false_y = sum(results[(a.name, True)][1].false_alarms for a in APPS)
        assert false_y <= false_n


class TestWitnessReplay:
    """Path program witnesses for *true* alarms must replay concretely:
    they are real executions, not abstraction artifacts. (Witnesses for
    unrefuted-but-false alarms are allowed to fail replay — they are
    exactly the imprecision the paper's timeout/HashMap discussion covers.)
    """

    def test_true_alarm_witnesses_mostly_replay(self, results):
        # Not every witness trace is executable: the path-constraint cap
        # (2, per the paper) can drop a guard on a *secondary* container
        # operation, letting the witnessed path thread an infeasible
        # branch even though the edge itself is real. Require a strong
        # majority rather than perfection.
        from repro.symbolic.replay import replay_witness

        checked = validated = 0
        for app in APPS:
            truth = concrete_leak_pairs(app)
            checker = LeakChecker(app.source, app.name)
            report = checker.run()
            for alarm in report.reported_alarms:
                key = ((alarm.root.class_name, alarm.root.field), alarm.target.site)
                if key not in truth:
                    continue
                for edge in alarm.witnessed_path or []:
                    result = checker.engine.refute_edge(edge)
                    if not (result.witnessed and result.witness_trace):
                        continue
                    checked += 1
                    if replay_witness(checker.program, result.witness_trace).validated:
                        validated += 1
        assert checked >= 10
        assert validated / checked >= 0.7, f"only {validated}/{checked} replayed"


class TestPerAppExpectations:
    def test_droidlife_alarms_all_true_when_annotated(self, results):
        _, row, _ = results[("DroidLife", True)]
        assert row.alarms == row.true_alarms > 0

    def test_opensudoku_fully_filtered(self, results):
        # Un-annotated: every alarm refutable; annotated: no alarms at all.
        _, row_n, _ = results[("OpenSudoku", False)]
        _, row_y, _ = results[("OpenSudoku", True)]
        assert row_n.true_alarms == 0
        assert row_n.refuted_alarms + row_n.edge_timeouts >= row_n.alarms - row_n.false_alarms
        assert row_y.alarms == 0

    def test_standuptimer_latent_leak_refuted(self, results):
        _, row, report = results[("StandupTimer", False)]
        assert row.true_alarms == 0
        flagged = [
            a
            for a in report.alarms
            if (a.root.class_name, a.root.field) == ("DAOFactory", "cachedTeamDAO")
        ]
        assert all(a.refuted for a in flagged)

    def test_standuptimer_latent_leak_manifests_when_enabled(self):
        app = app_by_name("StandupTimer")
        enabled = app.source.replace(
            "static boolean cacheDAOInstances = false",
            "static boolean cacheDAOInstances = true",
        )
        report = LeakChecker(enabled, "StandupTimer-enabled").run()
        flagged = [
            a
            for a in report.alarms
            if (a.root.class_name, a.root.field) == ("DAOFactory", "cachedTeamDAO")
        ]
        assert flagged and all(not a.refuted for a in flagged)

    def test_k9mail_singleton_confirmed(self, results):
        _, _, report = results[("K9Mail", False)]
        singleton = [
            a
            for a in report.alarms
            if (a.root.class_name, a.root.field)
            == ("EmailAddressAdapter", "sInstance")
        ]
        assert singleton and all(not a.refuted for a in singleton)

    def test_smspopup_caches_confirmed(self, results):
        _, _, report = results[("SMSPopUp", False)]
        for field in ("lastPopup", "history"):
            hits = [a for a in report.alarms if a.root.field == field]
            assert hits and all(not a.refuted for a in hits)

    def test_ametro_correlation_refuted(self, results):
        """setOwner(this, 0) from CityListActivity can never store: the
        keep==1 guard refutes the (owner, cityList) pair."""
        _, _, report = results[("aMetro", False)]
        pair = [
            a
            for a in report.alarms
            if a.root.field == "owner" and "cityList" in str(a.target)
        ]
        assert pair and all(a.refuted for a in pair)

    def test_pulsepoint_vec_pollution_refuted(self, results):
        _, _, report = results[("PulsePoint", False)]
        empty_alarms = [a for a in report.alarms if a.root.field == "EMPTY"]
        assert empty_alarms and all(a.refuted for a in empty_alarms)


class TestFullyExplicitEndToEnd:
    """The fully-explicit representation (Section 2.2's case-splitting
    alternative) must run the whole client pipeline with the same
    refutation soundness, though possibly more case splits."""

    @pytest.mark.parametrize("name", ["DroidLife", "OpenSudoku"])
    def test_fully_explicit_pipeline(self, name):
        from repro.symbolic import Representation, SearchConfig

        app = app_by_name(name)
        truth = concrete_leak_pairs(app)
        report = LeakChecker(
            app.source,
            app.name,
            False,
            SearchConfig(
                representation=Representation.FULLY_EXPLICIT, path_budget=5_000
            ),
        ).run()
        refuted = {
            ((a.root.class_name, a.root.field), a.target.site)
            for a in report.alarms
            if a.refuted
        }
        assert not (truth & refuted), f"unsound under fully-explicit: {truth & refuted}"
        reported = {
            ((a.root.class_name, a.root.field), a.target.site)
            for a in report.reported_alarms
        }
        assert truth <= reported
