"""Integration test: the paper's Figure 5 — the K9Mail singleton leak.

`EmailAddressAdapter.getInstance(context)` stores the Activity (passed as
the context) through two super-constructors into `CursorAdapter.mContext`,
reachable forever from the static `sInstance`. Thresher must *confirm*
this alarm (witness every edge on the heap path), and the witness trace
must pass through the singleton constructor chain.
"""

import pytest

from repro.android.leaks import ALARM_CONFIRMED, LeakChecker
from repro.symbolic.witness import render_witness, witness_steps

FIGURE5_APP = """
class MainActivity extends Activity {
    void onCreate() {
        EmailAddressAdapter a = EmailAddressAdapter.getInstance(this);
    }
}
class EmailAddressAdapter extends ResourceCursorAdapter {
    static EmailAddressAdapter sInstance;
    static EmailAddressAdapter getInstance(Context context) {
        if (EmailAddressAdapter.sInstance == null) {
            EmailAddressAdapter.sInstance = new EmailAddressAdapter(context);
        }
        return EmailAddressAdapter.sInstance;
    }
    EmailAddressAdapter(Context context) { super(context); }
}
"""


@pytest.fixture(scope="module")
def fig5():
    checker = LeakChecker(FIGURE5_APP, "k9mail-fig5")
    return checker, checker.run()


class TestFigure5:
    def test_flow_insensitive_alarm_exists(self, fig5):
        _, report = fig5
        roots = {str(a.root) for a in report.alarms}
        assert "EmailAddressAdapter.sInstance" in roots

    def test_leak_confirmed_not_refuted(self, fig5):
        _, report = fig5
        alarm = next(
            a for a in report.alarms if str(a.root) == "EmailAddressAdapter.sInstance"
        )
        assert alarm.status == ALARM_CONFIRMED

    def test_witnessed_path_matches_paper(self, fig5):
        """The paper's heap path:
        EmailAddressAdapter.sInstance ↪ adr0, adr0.mContext ↪ act0."""
        _, report = fig5
        alarm = next(
            a for a in report.alarms if str(a.root) == "EmailAddressAdapter.sInstance"
        )
        assert alarm.witnessed_path is not None
        fields = [edge.field for edge in alarm.witnessed_path]
        assert fields == ["sInstance", "mContext"]

    def test_witness_trace_goes_through_super_ctor_chain(self, fig5):
        checker, report = fig5
        alarm = next(
            a for a in report.alarms if str(a.root) == "EmailAddressAdapter.sInstance"
        )
        mcontext_edge = alarm.witnessed_path[1]
        result = checker.engine.refute_edge(mcontext_edge)
        assert result.witnessed
        methods = {
            step.method for step in witness_steps(checker.program, result.witness_trace)
        }
        assert "CursorAdapter.<init>" in methods
        assert "EmailAddressAdapter.getInstance" in methods

    def test_render_witness_is_readable(self, fig5):
        checker, report = fig5
        alarm = next(a for a in report.alarms if not a.refuted)
        result = checker.engine.refute_edge(alarm.witnessed_path[0])
        text = render_witness(checker.program, result)
        assert "witness for" in text
        assert "getInstance" in text

    def test_concrete_ground_truth_agrees(self, fig5):
        from repro.android.harness import build_full_source
        from repro.ir import Interpreter, build_program, heap_reaches
        from repro.lang import frontend

        program = build_program(frontend(build_full_source(FIGURE5_APP)))
        leaks = set()
        for run in Interpreter(program).explore():
            for key, _ in heap_reaches(run.statics, program.class_table, {"Activity"}):
                leaks.add(key)
        assert ("EmailAddressAdapter", "sInstance") in leaks


class TestFixedVersion:
    """The K9Mail developers later removed the singleton (confirmed fix);
    without the static, no alarm remains."""

    FIXED = """
    class MainActivity extends Activity {
        void onCreate() {
            EmailAddressAdapter a = new EmailAddressAdapter(this);
        }
    }
    class EmailAddressAdapter extends ResourceCursorAdapter {
        EmailAddressAdapter(Context context) { super(context); }
    }
    """

    def test_no_alarm_after_fix(self):
        report = LeakChecker(self.FIXED, "k9mail-fixed").run()
        assert all(a.refuted for a in report.alarms)
