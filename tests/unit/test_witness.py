"""Unit tests for path-program witness rendering."""

from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine
from repro.symbolic.stats import EdgeResult
from repro.symbolic.witness import render_witness, witness_steps


def witnessed_result():
    prog = compile_program(
        "class Box { Object v; } class M {"
        " static void put(Box b, Object o) { b.v = o; }"
        " static void main() { M.put(new Box(), new Object()); } }"
    )
    pta = analyze(prog)
    engine = Engine(pta)
    edge = next(e for e in pta.graph.heap_edges() if e.field == "v")
    return prog, engine.refute_edge(edge)


class TestWitnessSteps:
    def test_steps_cover_producing_write(self):
        prog, result = witnessed_result()
        assert result.witnessed
        steps = witness_steps(prog, result.witness_trace)
        assert steps
        assert "b.v := o" in steps[-1].text

    def test_steps_are_forward_ordered_across_methods(self):
        prog, result = witnessed_result()
        steps = witness_steps(prog, result.witness_trace)
        methods = [s.method for s in steps]
        # main's allocation happens before the callee's write.
        assert methods.index("M.main") < len(methods) - 1
        assert methods[-1] == "M.put"

    def test_unknown_labels_skipped(self):
        prog, result = witnessed_result()
        steps = witness_steps(prog, [999_999] + result.witness_trace)
        assert all(s.label != 999_999 for s in steps)


class TestRenderWitness:
    def test_render_includes_method_headers_and_lines(self):
        prog, result = witnessed_result()
        text = render_witness(prog, result)
        assert text.startswith("witness for")
        assert "in M.main:" in text
        assert "in M.put:" in text

    def test_render_without_trace(self):
        prog, result = witnessed_result()
        empty = EdgeResult(edge=result.edge, status="witnessed")
        text = render_witness(prog, empty)
        assert "no trace recorded" in text
