"""Dedicated tests for mod/ref summaries and context-policy mechanics."""

import pytest

from repro.ir import compile_program
from repro.ir.instructions import AllocSite
from repro.ir.stmts import Loop, walk_statements
from repro.pointsto import (
    CallSiteSensitive,
    ContainerSensitive,
    ContextInsensitive,
    ObjectSensitive,
    analyze,
)
from repro.pointsto.graph import AbsLoc


def pta_of(source):
    return analyze(compile_program(source))


class TestModRefDetails:
    def test_alloc_sites_tracked_transitively(self):
        pta = pta_of(
            "class M { static Object deep() { return new Object(); }"
            " static Object shallow() { return M.deep(); }"
            " static void main() { Object o = M.shallow(); } }"
        )
        mod = pta.modref.method_mod("M.shallow")
        assert any(site.class_name == "Object" for site in mod.alloc_sites)

    def test_string_literal_is_an_alloc_site(self):
        pta = pta_of(
            'class M { static Object s() { return "hi"; }'
            " static void main() { Object o = M.s(); } }"
        )
        mod = pta.modref.method_mod("M.s")
        assert any(site.kind == "string" for site in mod.alloc_sites)

    def test_statement_mod_of_loop_body(self):
        pta = pta_of(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        loop = next(
            s
            for s in walk_statements(pta.program.methods["M.main"].body)
            if isinstance(s, Loop)
        )
        mod = pta.modref.statement_mod(loop.body)
        assert mod.writes_field("v")
        assert "i" in mod.locals
        assert not mod.writes_static("M", "anything")

    def test_statement_mod_includes_callee_effects(self):
        pta = pta_of(
            "class Box { Object v; } class M {"
            " static void poke(Box b) { b.v = null; }"
            " static void main() { Box b = new Box(); int i = 0;"
            " while (i < 2) { M.poke(b); i = i + 1; } } }"
        )
        loop = next(
            s
            for s in walk_statements(pta.program.methods["M.main"].body)
            if isinstance(s, Loop)
        )
        assert pta.modref.statement_mod(loop.body).writes_field("v")

    def test_unknown_method_mod_is_top(self):
        pta = pta_of("class M { static void main() { } }")
        mod = pta.modref.method_mod("Ghost.method")
        assert mod.calls_unknown
        assert mod.writes_field("anything")
        assert mod.writes_static("Any", "thing")


class TestContextPolicies:
    def site(self, name="s"):
        return AllocSite(1, "Vec", "M.m", hint=name)

    def test_describe_strings(self):
        assert ContextInsensitive().describe() == "0-CFA"
        assert ObjectSensitive(2).describe() == "2-object-sensitive"
        assert CallSiteSensitive(2).describe() == "2-CFA"
        assert "Container" in ContainerSensitive({"Vec"}).describe()

    def test_object_sensitive_truncates_chain(self):
        policy = ObjectSensitive(1)
        inner = AbsLoc(self.site("inner"), (self.site("outer"),))
        ctx = policy.callee_context((), "Vec.push", "Vec", inner)
        assert ctx == (inner.site,)

    def test_object_sensitive_depth_two_keeps_chain(self):
        policy = ObjectSensitive(2)
        inner = AbsLoc(self.site("inner"), (self.site("outer"),))
        ctx = policy.callee_context((), "Vec.push", "Vec", inner)
        assert len(ctx) == 2

    def test_heap_context_truncation(self):
        policy = ObjectSensitive(1)
        long_ctx = (self.site("a"), self.site("b"), self.site("c"))
        assert policy.heap_context(long_ctx, self.site("x")) == (long_ctx[0],)

    def test_container_policy_static_methods_insensitive(self):
        policy = ContainerSensitive({"Vec"})
        assert policy.callee_context((), "Vec.helper", "Vec", None) == ()

    def test_kcfa_appends_and_truncates(self):
        policy = CallSiteSensitive(2)
        ctx = policy.callee_context((10, 20), "C.m", "C", None, call_label=30)
        assert ctx == (20, 30)

    def test_invalid_depths_rejected(self):
        with pytest.raises(ValueError):
            ObjectSensitive(0)
        with pytest.raises(ValueError):
            CallSiteSensitive(0)
