"""Tests for concrete replay of path program witnesses."""

import pytest

from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine
from repro.symbolic.replay import replay_witness


def witness_for(source, field="v", dst_hint=None):
    prog = compile_program(source)
    pta = analyze(prog)
    engine = Engine(pta)
    edges = [
        e
        for e in list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
        if e.field == field and (dst_hint is None or str(e.dst) == dst_hint)
    ]
    assert edges, f"no edge with field {field}"
    result = engine.refute_edge(edges[0])
    return prog, result


class TestReplay:
    def test_straightline_witness_replays(self):
        prog, result = witness_for(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        assert result.witnessed
        replay = replay_witness(prog, result.witness_trace)
        assert replay.validated, replay.reason

    def test_witness_through_branch_replays(self):
        prog, result = witness_for(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box();"
            " if (nondet()) { b.v = new Object(); } } }"
        )
        assert result.witnessed
        assert replay_witness(prog, result.witness_trace).validated

    def test_witness_through_call_replays(self):
        prog, result = witness_for(
            "class Box { Object v; } class M {"
            " static void put(Box b, Object o) { b.v = o; }"
            " static void main() { M.put(new Box(), new Object()); } }"
        )
        assert result.witnessed
        assert replay_witness(prog, result.witness_trace).validated

    def test_witness_through_loop_replays(self):
        prog, result = witness_for(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        assert result.witnessed
        assert replay_witness(prog, result.witness_trace).validated

    def test_static_witness_replays(self):
        prog, result = witness_for(
            "class M { static Object s; static void main() {"
            " M.s = new Object(); } }",
            field="s",
        )
        assert result.witnessed
        assert replay_witness(prog, result.witness_trace).validated

    def test_empty_trace_rejected(self):
        prog, _ = witness_for(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        assert not replay_witness(prog, None).validated
        assert not replay_witness(prog, []).validated

    def test_bogus_trace_fails(self):
        prog, result = witness_for(
            "class Box { Object v; } class M { static void main() {"
            " int x = 1;"
            " Box b = new Box();"
            " if (x == 2) { b.v = new Object(); } } }"
        )
        # The edge is refuted, so fabricate an infeasible trace: the labels
        # of the guarded store (the guard x == 2 can never pass).
        store = [
            label
            for label, cmd in prog.commands.items()
            if "b.v :=" in str(cmd) or str(cmd).endswith(":= new_object0 Object")
        ]
        bogus = sorted(store)
        replay = replay_witness(prog, bogus)
        assert not replay.validated

    def test_bench_app_witnesses_replay(self):
        """End-to-end: every witnessed alarm edge of DroidLife replays."""
        from repro.android.leaks import LeakChecker
        from repro.bench import app_by_name

        app = app_by_name("DroidLife")
        checker = LeakChecker(app.source, app.name)
        report = checker.run()
        replayed = 0
        for alarm in report.reported_alarms:
            for edge in alarm.witnessed_path or []:
                result = checker.engine.refute_edge(edge)
                if result.witnessed and result.witness_trace:
                    outcome = replay_witness(checker.program, result.witness_trace)
                    assert outcome.validated, f"{edge}: {outcome.reason}"
                    replayed += 1
        assert replayed >= 2
