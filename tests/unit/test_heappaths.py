"""Edge-case tests for heap-path enumeration (cycles, diamonds, removal)."""

import pytest

from repro.ir import compile_program
from repro.pointsto import (
    StaticFieldNode,
    analyze,
    find_heap_path,
    reaches,
    static_roots,
    target_locations,
)


def pta_of(source):
    return analyze(compile_program(source))


class TestCyclicHeaps:
    CYCLE = (
        "class Node { Node next; Object item; }"
        " class M { static Node head; static void main() {"
        "   Node a = new Node(); Node b = new Node();"
        "   a.next = b; b.next = a;"
        "   b.item = new Object();"
        "   M.head = a; } }"
    )

    def test_path_through_cycle_terminates(self):
        pta = pta_of(self.CYCLE)
        root = StaticFieldNode("M", "head")
        target = next(
            l for l in pta.graph.all_abs_locs() if l.class_name == "Object"
        )
        path = find_heap_path(pta.graph, root, target)
        assert path is not None
        assert path[0].is_static_root
        assert path[-1].field == "item"

    def test_self_loop(self):
        pta = pta_of(
            "class Node { Node self; } class M { static Node n;"
            " static void main() { Node x = new Node(); x.self = x; M.n = x; } }"
        )
        root = StaticFieldNode("M", "n")
        (node_loc,) = pta.pt_static("M", "n")
        assert reaches(pta.graph, root, node_loc)

    def test_removal_in_diamond_keeps_other_branch(self):
        pta = pta_of(
            "class D { Object a; Object b; } class M { static D d;"
            " static void main() {"
            "   D x = new D(); Object t = new Object();"
            "   x.a = t; x.b = t; M.d = x; } }"
        )
        root = StaticFieldNode("M", "d")
        (target,) = pta.pt_static("M", "d")
        obj = next(l for l in pta.graph.all_abs_locs() if l.class_name == "Object")
        first = find_heap_path(pta.graph, root, obj)
        assert first is not None
        second = find_heap_path(pta.graph, root, obj, removed={first[-1]})
        assert second is not None and second[-1] != first[-1]
        both_removed = find_heap_path(
            pta.graph, root, obj, removed={first[-1], second[-1]}
        )
        assert both_removed is None


class TestEnumerationHelpers:
    def test_static_roots_sorted_and_nonempty_only(self):
        pta = pta_of(
            "class M { static Object a; static Object b; static Object unused;"
            " static void main() { M.b = new Object(); M.a = new String(); } }"
        )
        roots = [str(r) for r in static_roots(pta.graph)]
        assert roots == ["M.a", "M.b"]  # `unused` holds nothing

    def test_target_locations_filters_arrays_and_strings(self):
        pta = pta_of(
            "class T { } class M { static void main() {"
            ' T t = new T(); Object[] xs = new Object[1]; Object s = "x"; } }'
        )
        locs = target_locations(pta.graph, pta.program.class_table, "T")
        assert [l.class_name for l in locs] == ["T"]

    def test_target_includes_subclasses(self):
        pta = pta_of(
            "class T { } class S extends T { } class M { static void main() {"
            " T a = new T(); S b = new S(); } }"
        )
        locs = target_locations(pta.graph, pta.program.class_table, "T")
        assert {l.class_name for l in locs} == {"T", "S"}

    def test_unconnected_target_unreachable(self):
        pta = pta_of(
            "class M { static Object a; static void main() {"
            " M.a = new Object(); Object island = new String(); } }"
        )
        root = StaticFieldNode("M", "a")
        island = next(
            l for l in pta.graph.all_abs_locs() if l.class_name == "String"
        )
        assert not reaches(pta.graph, root, island)
