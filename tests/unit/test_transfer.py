"""Direct unit tests of the backwards transfer functions (Figure 4).

Each test builds a small program (for the points-to context), constructs a
query by hand, applies one transfer, and inspects the pre-queries — the
WIT-rule behaviours, one by one.
"""

import pytest

from repro.ir import compile_program
from repro.ir import instructions as ins
from repro.ir.stmts import walk_commands
from repro.pointsto import ELEMS, analyze
from repro.solver import NULL, LinAtom
from repro.symbolic import Query, SearchConfig, TransferContext
from repro.symbolic.config import Representation
from repro.symbolic.transfer import apply_assume, transfer_command


def setup_ctx(source, representation=Representation.MIXED):
    program = compile_program(source)
    pta = analyze(program)
    ctx = TransferContext(pta, SearchConfig(representation=representation))
    return program, pta, ctx


def cmds_of(program, qname, cls):
    return [c for c in program.commands_of(qname) if isinstance(c, cls)]


TWO_SITES = (
    "class Box { Object v; } class M { static void main() {"
    " Object a = new Object();"
    " Object b = new String();"
    " Box x = new Box();"
    " x.v = a; x.v = b; } }"
)


class TestWitAssign:
    def test_unconstrained_lhs_is_noop(self):
        program, pta, ctx = setup_ctx(TWO_SITES)
        assign = cmds_of(program, "M.main", ins.Assign)[0]
        q = Query("M.main")
        (out,) = transfer_command(assign, q, ctx)
        assert out.is_memory_empty()

    def test_var_copy_transfers_constraint_and_narrows(self):
        program, pta, ctx = setup_ctx(TWO_SITES)
        # a := $t0 where $t0 is the new Object() temp.
        assign = next(
            c
            for c in cmds_of(program, "M.main", ins.Assign)
            if c.lhs == "a" and isinstance(c.rhs, ins.VarAtom)
        )
        q = Query("M.main")
        v = q.new_ref(pta.pt_local("M.main", "a") | pta.pt_local("M.main", "b"))
        q.set_local("a", v)
        (out,) = transfer_command(assign, q, ctx)
        assert out.get_local("a") is None
        rhs_var = out.get_local(assign.rhs.name)
        assert out.find(rhs_var) is out.find(v)
        # Narrowed by pt($t0) = {object0}.
        assert {str(l) for l in out.region_of(v)} == {"object0"}

    def test_const_binding_adds_equation(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() { int x = 7; } }"
        )
        assign = cmds_of(program, "M.main", ins.Assign)[0]
        q = Query("M.main")
        d = q.new_data()
        q.set_local("x", d)
        (out,) = transfer_command(assign, q, ctx)
        atoms = out.canonical_pure()
        assert any(isinstance(a, LinAtom) and a.op == "==" for a in atoms)

    def test_null_binding_refutes_nonnull(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() { Object x = null; } }"
        )
        assign = cmds_of(program, "M.main", ins.Assign)[0]
        q = Query("M.main")
        v = q.new_ref(frozenset(), maybe_null=False)  # will fail on creation
        assert q.failed


class TestWitNew:
    def test_matching_site_consumed(self):
        program, pta, ctx = setup_ctx(TWO_SITES)
        new_obj = next(
            c for c in cmds_of(program, "M.main", ins.New) if c.site.hint == "object0"
        )
        q = Query("M.main")
        site_locs = ctx.site_locs(new_obj.site)
        v = q.new_ref(site_locs)
        q.set_local(new_obj.lhs, v)
        (out,) = transfer_command(new_obj, q, ctx)
        assert out.is_memory_empty()
        assert not out.failed

    def test_conflicting_site_refutes(self):
        program, pta, ctx = setup_ctx(TWO_SITES)
        new_obj = next(
            c for c in cmds_of(program, "M.main", ins.New) if c.site.hint == "object0"
        )
        q = Query("M.main")
        other = next(
            c for c in cmds_of(program, "M.main", ins.New) if c.site.hint == "string0"
        )
        v = q.new_ref(ctx.site_locs(other.site))
        q.set_local(new_obj.lhs, v)
        assert transfer_command(new_obj, q, ctx) == []

    def test_pre_existing_instance_refutes(self):
        # The allocated instance cannot appear elsewhere in the pre-state.
        program, pta, ctx = setup_ctx(TWO_SITES)
        new_box = next(
            c for c in cmds_of(program, "M.main", ins.New) if c.site.hint == "box0"
        )
        q = Query("M.main")
        v = q.new_ref(ctx.site_locs(new_box.site))
        q.set_local(new_box.lhs, v)
        other = q.new_ref(None)
        q.set_field(other, "v", v)  # v also a field value before allocation
        assert transfer_command(new_box, q, ctx) == []


class TestWitReadWrite:
    def test_read_materializes_base_and_cell(self):
        program, pta, ctx = setup_ctx(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); Object x = b.v; } }"
        )
        read = cmds_of(program, "M.main", ins.FieldRead)[0]
        q = Query("M.main")
        v = q.new_ref(pta.pt_local("M.main", "x"))
        q.set_local(read.lhs, v)
        (out,) = transfer_command(read, q, ctx)
        base = out.get_local(read.base)
        assert base is not None
        assert out.get_field(base, "v") is not None
        assert not out.is_maybe_null(base)  # dereferenced

    def test_write_produced_and_not_produced_cases(self):
        program, pta, ctx = setup_ctx(TWO_SITES)
        write = cmds_of(program, "M.main", ins.FieldWrite)[0]  # x.v = a
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "x"))
        value = q.new_ref(pta.pt_local("M.main", "a") | pta.pt_local("M.main", "b"))
        q.set_field(base, "v", value)
        outs = transfer_command(write, q, ctx)
        # One produced case (cell consumed) + one not-produced (cell kept).
        consumed = [o for o in outs if o.get_field(base, "v") is None]
        kept = [o for o in outs if o.get_field(base, "v") is not None]
        assert len(consumed) == 1 and len(kept) == 1

    def test_write_same_base_local_refutes_not_produced(self):
        # If the query's cell base IS the written local's value, separation
        # kills the not-produced case.
        program, pta, ctx = setup_ctx(TWO_SITES)
        write = cmds_of(program, "M.main", ins.FieldWrite)[0]
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "x"))
        q.set_local(write.base, base)  # x ↦ base already
        value = q.new_ref(pta.pt_local("M.main", "a"))
        q.set_field(base, "v", value)
        outs = transfer_command(write, q, ctx)
        assert len(outs) == 1  # only the produced case survives
        assert outs[0].get_field(base, "v") is None

    def test_write_of_other_field_is_noop(self):
        program, pta, ctx = setup_ctx(
            "class Box { Object v; Object w; } class M { static void main() {"
            " Box b = new Box(); b.w = new Object(); } }"
        )
        write = cmds_of(program, "M.main", ins.FieldWrite)[0]  # b.w := ...
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "b"))
        value = q.new_ref(None)
        q.set_field(base, "v", value)
        (out,) = transfer_command(write, q, ctx)
        assert out.get_field(base, "v") is not None

    def test_null_store_cannot_produce(self):
        program, pta, ctx = setup_ctx(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = null; } }"
        )
        write = cmds_of(program, "M.main", ins.FieldWrite)[0]
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "b"))
        value = q.new_ref(None)  # non-null instance
        q.set_field(base, "v", value)
        outs = transfer_command(write, q, ctx)
        # Only the not-produced case remains, and it keeps the cell.
        assert all(o.get_field(base, "v") is not None for o in outs)


class TestWitStatics:
    def test_static_write_is_strong_update(self):
        program, pta, ctx = setup_ctx(
            "class M { static Object s; static void main() {"
            " M.s = new Object(); } }"
        )
        write = cmds_of(program, "M.main", ins.StaticWrite)[0]
        q = Query("M.main")
        v = q.new_ref(pta.pt_static("M", "s"))
        q.set_static("M", "s", v)
        (out,) = transfer_command(write, q, ctx)
        assert out.get_static("M", "s") is None  # always consumed
        # The written temp now carries the constraint.
        assert out.get_local(write.rhs.name) is not None

    def test_static_read_narrows(self):
        program, pta, ctx = setup_ctx(
            "class M { static Object s; static void main() {"
            " M.s = new Object(); Object x = M.s; } }"
        )
        read = cmds_of(program, "M.main", ins.StaticRead)[0]
        q = Query("M.main")
        v = q.new_ref(None)
        q.set_local(read.lhs, v)
        (out,) = transfer_command(read, q, ctx)
        assert out.get_static("M", "s") is not None
        assert out.region_of(v) is not None  # narrowed by pt(M.s)


class TestWitAssume:
    def prep(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() { int i = 0; if (i < 3) { i = 1; } } }"
        )
        return program, pta, ctx

    def test_comparison_polarity_true(self):
        _, _, ctx = self.prep()
        q = Query("M.main")
        outs = apply_assume(q, ctx, ins.PBin("<", ins.PVar("i"), ins.PInt(3)), True)
        assert len(outs) == 1
        assert outs[0].get_local("i") is not None
        assert len(outs[0].pure) == 1

    def test_comparison_polarity_false_negates(self):
        _, _, ctx = self.prep()
        q = Query("M.main")
        (out,) = apply_assume(q, ctx, ins.PBin("<", ins.PVar("i"), ins.PInt(3)), False)
        # i >= 3 as 3 - i <= 0
        (atom,) = [a for a, _ in out.pure]
        assert isinstance(atom, LinAtom) and atom.op == "<="

    def test_conjunction_true_single_disjunct(self):
        _, _, ctx = self.prep()
        expr = ins.PBin(
            "&&",
            ins.PBin("<", ins.PVar("i"), ins.PInt(3)),
            ins.PBin("<", ins.PInt(0), ins.PVar("i")),
        )
        outs = apply_assume(Query("M.main"), ctx, expr, True)
        assert len(outs) == 1
        assert len(outs[0].pure) == 2

    def test_conjunction_false_splits(self):
        _, _, ctx = self.prep()
        expr = ins.PBin(
            "&&",
            ins.PBin("<", ins.PVar("i"), ins.PInt(3)),
            ins.PBin("<", ins.PInt(0), ins.PVar("i")),
        )
        outs = apply_assume(Query("M.main"), ctx, expr, False)
        assert len(outs) == 2

    def test_contradictory_guard_refuted(self):
        _, _, ctx = self.prep()
        q = Query("M.main")
        (q1,) = apply_assume(q, ctx, ins.PBin("<", ins.PVar("i"), ins.PInt(0)), True)
        outs = apply_assume(q1, ctx, ins.PBin("<", ins.PInt(0), ins.PVar("i")), True)
        assert not outs or all(not o.check_sat() for o in outs)

    def test_false_literal_guard_kills_path(self):
        _, _, ctx = self.prep()
        assert apply_assume(Query("M.main"), ctx, ins.PBool(False), True) == []
        assert apply_assume(Query("M.main"), ctx, ins.PBool(True), False) == []

    def test_null_check_on_static(self):
        program, pta, ctx = setup_ctx(
            "class M { static Object s; static void main() {"
            " if (M.s == null) { M.s = new Object(); } } }"
        )
        expr = ins.PBin("==", ins.PStatic("M", "s"), ins.PNull(), ref_operands=True)
        q = Query("M.main")
        (out,) = apply_assume(q, ctx, expr, True)
        cell = out.get_static("M", "s")
        assert cell is not None
        assert out.is_maybe_null(cell)
        assert out.check_sat()

    def test_field_guard_materializes_cell(self):
        program, pta, ctx = setup_ctx(
            "class Vec { int sz; int cap; void m() {"
            " if (this.sz >= this.cap) { int x = 1; } } }"
            " class M { static void main() { new Vec().m(); } }"
        )
        expr = ins.PBin(
            ">=",
            ins.PField(ins.PVar("this"), "sz"),
            ins.PField(ins.PVar("this"), "cap"),
        )
        q = Query("Vec.m")
        (out,) = apply_assume(q, ctx, expr, True)
        this = out.get_local("this")
        assert this is not None
        assert out.get_field(this, "sz") is not None
        assert out.get_field(this, "cap") is not None

    def test_guard_cap_enforced(self):
        _, _, ctx = self.prep()
        ctx.config.max_path_constraints = 1
        q = Query("M.main")
        (q1,) = apply_assume(q, ctx, ins.PBin("<", ins.PVar("i"), ins.PInt(3)), True)
        (q2,) = apply_assume(q1, ctx, ins.PBin("<", ins.PVar("i"), ins.PInt(9)), True)
        assert sum(1 for _, g in q2.pure if g) == 1


class TestFullySymbolic:
    def test_no_narrowing_on_materialization(self):
        program, pta, ctx = setup_ctx(
            TWO_SITES, representation=Representation.FULLY_SYMBOLIC
        )
        read_like = cmds_of(program, "M.main", ins.FieldWrite)[0]
        q = Query("M.main")
        base = q.new_ref(None)
        value = q.new_ref(None)
        q.set_field(base, "v", value)
        outs = transfer_command(read_like, q, ctx)
        for out in outs:
            written = out.get_local(read_like.base)
            if written is not None:
                assert out.region_of(written) is None  # no pt() narrowing


class TestComparisonsBackwards:
    def test_determined_bool_applies_relation(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() { int i = 0; boolean t = i < 3; } }"
        )
        binop = cmds_of(program, "M.main", ins.BinOpCmd)[0]
        from repro.solver import LinExpr, eq

        q = Query("M.main")
        t = q.new_data()
        q.set_local(binop.lhs, t)
        q.add_pure(eq(LinExpr.var(t), LinExpr.constant(1)))  # t is true
        outs = transfer_command(binop, q, ctx)
        assert len(outs) == 1  # no case split needed

    def test_undetermined_bool_splits(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() { int i = 0; boolean t = i < 3; } }"
        )
        binop = cmds_of(program, "M.main", ins.BinOpCmd)[0]
        q = Query("M.main")
        t = q.new_data()
        q.set_local(binop.lhs, t)
        outs = transfer_command(binop, q, ctx)
        assert len(outs) == 2

    def test_ref_equality_unifies(self):
        program, pta, ctx = setup_ctx(
            "class M { static void main() {"
            " Object a = new Object(); Object b = a; boolean t = a == b; } }"
        )
        binop = cmds_of(program, "M.main", ins.BinOpCmd)[0]
        from repro.solver import LinExpr, eq

        q = Query("M.main")
        t = q.new_data()
        q.set_local(binop.lhs, t)
        q.add_pure(eq(LinExpr.var(t), LinExpr.constant(1)))
        (out,) = transfer_command(binop, q, ctx)
        va, vb = out.get_local("a"), out.get_local("b")
        assert out.find(va) is out.find(vb)
