"""Unit tests for benchmarks/compare_bench.py (the CI regression guard)."""

import importlib.util
import json
import os

import pytest

_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "compare_bench.py"
)
_spec = importlib.util.spec_from_file_location("compare_bench", _PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def payload(**configs) -> dict:
    return {"configs": configs, "schema_version": 2}


def cfg(wall: float, calls: int) -> dict:
    return {"wall_seconds": wall, "solver_calls": calls}


class TestCompare:
    def test_identical_payloads_pass(self):
        base = payload(cached=cfg(2.0, 100), partitioned=cfg(1.0, 40))
        result = compare_bench.compare(base, base)
        assert result["ok"]
        assert result["failures"] == []
        assert result["compared_configs"] == ["cached", "partitioned"]

    def test_within_tolerance_passes(self):
        fresh = payload(cached=cfg(2.3, 115))  # +15% on both axes
        base = payload(cached=cfg(2.0, 100))
        assert compare_bench.compare(fresh, base)["ok"]

    def test_solver_call_regression_fails(self):
        fresh = payload(cached=cfg(2.0, 130))  # +30% calls
        base = payload(cached=cfg(2.0, 100))
        result = compare_bench.compare(fresh, base)
        assert not result["ok"]
        assert any("solver calls" in f for f in result["failures"])

    def test_wall_clock_regression_advisory_by_default(self, monkeypatch):
        # Wall-clock needs an idle machine to mean anything: without
        # REPRO_BENCH_STRICT the regression is reported, not fatal.
        monkeypatch.setattr(compare_bench, "STRICT", False)
        fresh = payload(cached=cfg(40.0, 100))
        base = payload(cached=cfg(10.0, 100))
        result = compare_bench.compare(fresh, base)
        assert result["ok"]
        assert any("wall-clock" in a for a in result["advisories"])

    def test_wall_clock_regression_fails_under_strict(self, monkeypatch):
        monkeypatch.setattr(compare_bench, "STRICT", True)
        fresh = payload(cached=cfg(40.0, 100))
        base = payload(cached=cfg(10.0, 100))
        result = compare_bench.compare(fresh, base)
        assert not result["ok"]
        assert any("wall-clock" in f for f in result["failures"])

    def test_absolute_grace_absorbs_subsecond_noise(self):
        # 0.4s -> 0.55s is +37% relative but within the 0.5s grace floor:
        # timer noise on a tiny smoke config must not fail the build.
        fresh = payload(cached=cfg(0.55, 100))
        base = payload(cached=cfg(0.4, 100))
        assert compare_bench.compare(fresh, base)["ok"]

    def test_fresh_only_config_skipped_unless_strict(self):
        fresh = payload(cached=cfg(2.0, 100), brand_new=cfg(9.9, 999))
        base = payload(cached=cfg(2.0, 100))
        assert compare_bench.compare(fresh, base)["ok"]
        strict = compare_bench.compare(fresh, base, strict_configs=True)
        assert not strict["ok"]
        assert any("brand_new" in f for f in strict["failures"])

    def test_baseline_only_config_reported_not_fatal(self):
        fresh = payload(cached=cfg(2.0, 100))
        base = payload(cached=cfg(2.0, 100), retired=cfg(1.0, 10))
        result = compare_bench.compare(fresh, base, strict_configs=True)
        assert result["ok"]
        assert result["only_in_baseline"] == ["retired"]


class TestMain:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_main_ok_and_writes_output(self, tmp_path, capsys):
        base = payload(cached=cfg(2.0, 100))
        fresh = self._write(tmp_path, "fresh.json", base)
        baseline = self._write(tmp_path, "base.json", base)
        out = str(tmp_path / "compare.json")
        rc = compare_bench.main(
            ["--fresh", fresh, "--baseline", baseline, "--output", out]
        )
        assert rc == 0
        assert "no regression" in capsys.readouterr().out
        written = json.loads(open(out).read())
        assert written["ok"] and written["rows"]

    def test_main_regression_exit_code(self, tmp_path, capsys):
        fresh = self._write(
            tmp_path, "fresh.json", payload(cached=cfg(2.0, 300))
        )
        baseline = self._write(
            tmp_path, "base.json", payload(cached=cfg(2.0, 100))
        )
        rc = compare_bench.main(["--fresh", fresh, "--baseline", baseline])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_main_malformed_input_exits(self, tmp_path):
        bogus = self._write(tmp_path, "bogus.json", {"not_configs": {}})
        with pytest.raises(SystemExit):
            compare_bench.main(["--fresh", bogus, "--baseline", bogus])
