"""Unit tests for the adaptive scheduling layer (``repro.engine.schedule``):
cost-model priorities, cheap-first portfolio rungs, path-level work
stealing, and the cooperative per-rung deadlines that tie them together."""

import pytest

from repro.bench.workloads import layered_app, mixed_app
from repro.engine import RefutationDriver, RunReport
from repro.engine.schedule import (
    CostModel,
    InversionMeter,
    SharedWorklist,
    StealRegistry,
    rung_ladder,
)
from repro.ir import compile_program
from repro.obs import provenance
from repro.pointsto import analyze
from repro.pointsto.graph import StaticFieldNode
from repro.pointsto.heappaths import find_heap_path
from repro.pointsto.producers import edge_key
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.stats import REFUTED, TIMEOUT


@pytest.fixture(scope="module")
def pta():
    # 3 cheap jobs + 1 expensive one, every edge refutable, hard job last
    # (the FIFO worst case the scheduler exists to fix).
    return analyze(compile_program(mixed_app(3, 1, easy_branches=1, hard_branches=6)))


@pytest.fixture(scope="module")
def edges(pta):
    return sorted(pta.graph.static_edges(), key=str)


@pytest.fixture(scope="module")
def baseline(pta, edges):
    driver = RefutationDriver(pta, SearchConfig(), jobs=1)
    return {str(e): driver.refute_edge(e).status for e in edges}


def _statuses(results, edges):
    return {str(e): results[edge_key(e)].status for e in edges}


# ---------------------------------------------------------------------------
# CostModel
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_hard_edge_costs_more_than_easy(self, pta, edges):
        model = CostModel(pta)
        costs = {str(e): model.edge_cost(e) for e in edges}
        # mix30 is produced by the 6-branch job; every other edge by a
        # 1-branch job — the choice-count term must dominate.
        hard = costs["Registry.hold -> mix30"]
        assert all(hard > c for name, c in costs.items() if "mix30" not in name)

    def test_costs_are_positive_and_cached(self, pta, edges):
        model = CostModel(pta)
        first = [model.edge_cost(e) for e in edges]
        assert all(c >= 1 for c in first)
        assert [model.edge_cost(e) for e in edges] == first

    def test_unknown_method_costs_one(self, pta):
        assert CostModel(pta).method_cost("NoSuch.method") == 1

    def test_fact_cost_positive(self, pta):
        label = next(iter(pta.program.commands))
        loc = next(iter(pta.graph.all_abs_locs()))
        assert CostModel(pta).fact_cost(label, [("b", frozenset({loc}))]) >= 1


# ---------------------------------------------------------------------------
# rung_ladder
# ---------------------------------------------------------------------------


class TestRungLadder:
    def test_default_ladder(self):
        config = SearchConfig(path_budget=10_000)
        assert rung_ladder(config) == [(625, None), (2500, None), (None, None)]

    def test_divisors_at_most_one_ignored(self):
        config = SearchConfig(path_budget=800, portfolio_rungs=(1, 0, 8))
        assert rung_ladder(config) == [(100, None), (None, None)]

    def test_deadline_divided_alongside_budget(self):
        config = SearchConfig(
            path_budget=1600, deadline_seconds=8.0, portfolio_rungs=(4,)
        )
        assert rung_ladder(config) == [(400, 2.0), (None, None)]

    def test_empty_rungs_degenerate_to_single_full_rung(self):
        config = SearchConfig(portfolio_rungs=())
        assert rung_ladder(config) == [(None, None)]


# ---------------------------------------------------------------------------
# InversionMeter
# ---------------------------------------------------------------------------


class TestInversionMeter:
    def test_counts_expensive_before_cheap(self):
        meter = InversionMeter({"a": 1, "b": 5, "c": 10})
        meter.complete("b")  # "a" (cheaper) still pending -> inversion
        meter.complete("a")  # cheapest remaining -> fine
        meter.complete("c")
        assert meter.inversions == 1

    def test_in_order_completion_counts_none(self):
        meter = InversionMeter({"a": 1, "b": 5})
        meter.complete("a")
        meter.complete("b")
        assert meter.inversions == 0


# ---------------------------------------------------------------------------
# SharedWorklist / StealRegistry
# ---------------------------------------------------------------------------


class TestSharedWorklist:
    def test_owner_pops_newest_helper_steals_oldest(self):
        shard = SharedWorklist(["s0", "s1", "s2"], budget=100, deadline_at=None)
        assert shard.get(owner=True) == "s2"  # owner: LIFO
        shard.put_results([])
        assert shard.get(owner=False) == "s0"  # helper: steals the tail
        assert shard.steals == 1
        shard.put_results([])
        assert shard.get(owner=True) == "s1"
        shard.put_results([])
        # Worklist empty, nothing in flight: both sides see completion.
        assert shard.get(owner=True) is None
        assert shard.get(owner=False) is None
        assert shard.refuted

    def test_witness_ends_the_search_unrefuted(self):
        shard = SharedWorklist(["s0"], budget=100, deadline_at=None)
        assert shard.get(owner=True) == "s0"
        shard.found_witness("s0")
        assert shard.witness == "s0"
        assert not shard.refuted

    def test_shared_budget_exhaustion(self):
        shard = SharedWorklist(["s0"], budget=3, deadline_at=None)
        assert shard.spend(2)
        assert not shard.spend(2)  # 4 > 3: the shared budget ran dry

    def test_registry_picks_heaviest_and_closes(self):
        registry = StealRegistry()
        light = SharedWorklist(["a"], budget=10, deadline_at=None)
        heavy = SharedWorklist(["a", "b", "c"], budget=10, deadline_at=None)
        registry.register(light)
        registry.register(heavy)
        assert registry.pick() is heavy
        registry.close()
        assert registry.pick() is None
        registry.unregister(light)
        registry.unregister(heavy)


# ---------------------------------------------------------------------------
# Priority scheduling
# ---------------------------------------------------------------------------


class TestPrioritySchedule:
    def test_serial_verdicts_match_lifo(self, pta, edges, baseline):
        driver = RefutationDriver(pta, SearchConfig(schedule="priority"), jobs=1)
        assert _statuses(driver.refute_edges(edges), edges) == baseline

    def test_thread_verdicts_match_lifo(self, pta, edges, baseline):
        config = SearchConfig(schedule="priority")
        with RefutationDriver(pta, config, jobs=3) as driver:
            statuses = _statuses(driver.refute_edges(edges), edges)
            report = driver.build_report(command="check")
        assert statuses == baseline
        assert report.schedule["policy"] == "priority"
        assert report.schedule["priority_inversions"] >= 0

    def test_report_records_policy(self, pta, edges):
        driver = RefutationDriver(pta, SearchConfig(schedule="priority"), jobs=1)
        driver.refute_edges(edges)
        section = driver.build_report(command="check").schedule
        assert section["policy"] == "priority"
        assert not section["portfolio"]


# ---------------------------------------------------------------------------
# Portfolio rungs
# ---------------------------------------------------------------------------

#: A ladder whose first rung (path_budget // 1000 = 10 paths) is too small
#: for the 6-branch job but ample for the 1-branch ones.
PORTFOLIO = dict(path_budget=10_000, portfolio=True, portfolio_rungs=(1000,))


class TestPortfolio:
    def test_serial_verdicts_match_single_rung(self, pta, edges, baseline):
        driver = RefutationDriver(pta, SearchConfig(**PORTFOLIO), jobs=1)
        assert _statuses(driver.refute_edges(edges), edges) == baseline

    def test_hard_edge_resolves_at_higher_rung(self, pta, edges):
        driver = RefutationDriver(pta, SearchConfig(**PORTFOLIO), jobs=1)
        driver.refute_edges(edges)
        report = driver.build_report(command="check")
        rungs = {r.description: r.rung for r in report.records}
        assert rungs["Registry.hold -> mix30"] == 1
        assert all(r == 0 for d, r in rungs.items() if "mix30" not in d)
        section = report.schedule
        assert section["resolved_at_rung"] == {"0": 3, "1": 1}
        assert section["rungs"][0]["carryover"] == 1
        assert section["rungs"][0]["scheduled"] == 4
        assert section["rungs"][1]["scheduled"] == 1

    def test_thread_backend_verdicts_match(self, pta, edges, baseline):
        with RefutationDriver(pta, SearchConfig(**PORTFOLIO), jobs=3) as driver:
            statuses = _statuses(driver.refute_edges(edges), edges)
        assert statuses == baseline

    def test_process_backend_verdicts_match(self, pta, edges, baseline):
        config = SearchConfig(**PORTFOLIO)
        with RefutationDriver(pta, config, jobs=2, backend="process") as driver:
            statuses = _statuses(driver.refute_edges(edges), edges)
        assert statuses == baseline

    def test_facts_run_the_same_ladder(self, pta):
        # mixed_app's leak sink is a static store; ask about its rhs var.
        cmd = next(
            c
            for c in pta.program.commands.values()
            if type(c).__name__ == "StaticWrite"
        )
        loc = next(iter(pta.graph.all_abs_locs()))
        request = (cmd.label, [(cmd.rhs.name, frozenset({loc}))], "fact@test")
        fixed = RefutationDriver(pta, SearchConfig(), jobs=1).refute_facts(
            [request]
        )
        ladder = RefutationDriver(
            pta, SearchConfig(**PORTFOLIO), jobs=1
        ).refute_facts([request])
        assert [r.status for r in fixed] == [r.status for r in ladder]

    def test_round_trips_through_report_json(self, pta, edges):
        driver = RefutationDriver(pta, SearchConfig(**PORTFOLIO), jobs=1)
        driver.refute_edges(edges)
        report = driver.build_report(command="check")
        clone = RunReport.from_json(report.to_json())
        assert clone.schedule == report.schedule
        assert [r.rung for r in clone.records] == [r.rung for r in report.records]


# ---------------------------------------------------------------------------
# Path-level portfolio (the rung ladder across one path's edges)
# ---------------------------------------------------------------------------


class TestPathPortfolio:
    @pytest.fixture(scope="class")
    def layered(self):
        # One two-edge path whose expensive refutable edge comes first and
        # whose cheap refutable edge comes second — the shape where the
        # path-level ladder wins.
        pta = analyze(compile_program(layered_app(1, hard_branches=8)))
        table = pta.program.class_table
        target = next(
            loc
            for loc in pta.graph.all_abs_locs()
            if not loc.is_array
            and loc.site.kind == "object"
            and table.site_is_instance(loc.site, "Item")
        )
        path = find_heap_path(
            pta.graph, StaticFieldNode("Registry", "hold"), target
        )
        assert path is not None and len(path) == 2
        return pta, path

    def test_cheap_path_mate_stops_escalation(self, layered):
        pta, path = layered
        expensive, cheap = path
        driver = RefutationDriver(pta, SearchConfig(**PORTFOLIO), jobs=1)
        pairs = dict(driver.refute_path(path))
        assert pairs[cheap].status == REFUTED
        assert pairs[cheap].rung == 0
        # The expensive first edge timed out at rung 0 and was never
        # escalated: its provisional TIMEOUT is neither cached nor
        # recorded, so a later path can still resolve it for real.
        assert pairs[expensive].status == TIMEOUT
        assert driver._cached(edge_key(expensive)) is None
        assert driver._cached(edge_key(cheap)) is not None
        report = driver.build_report(command="check")
        assert {r.description for r in report.records} == {str(cheap)}
        rung0 = report.schedule["rungs"][0]
        assert rung0["scheduled"] == 2
        assert rung0["resolved"] == 1
        assert rung0["carryover"] == 1

    def test_fixed_walk_refutes_the_expensive_edge_instead(self, layered):
        # The serial Section 2 walk stops at the first refuted edge, so
        # it pays the expensive search in full — the record-set latitude
        # the parity suite documents.
        pta, path = layered
        driver = RefutationDriver(pta, SearchConfig(path_budget=10_000), jobs=1)
        pairs = driver.refute_path(path)
        assert len(pairs) == 1
        assert pairs[0][0] == path[0]
        assert pairs[0][1].status == REFUTED


# ---------------------------------------------------------------------------
# Work stealing
# ---------------------------------------------------------------------------


class TestWorkStealing:
    def test_thread_backend_steals_and_verdicts_hold(self, pta, edges, baseline):
        config = SearchConfig(work_stealing=True)
        with RefutationDriver(pta, config, jobs=4) as driver:
            statuses = _statuses(driver.refute_edges(edges), edges)
            report = driver.build_report(command="check")
        # All edges refutable well under budget: the shared budget cannot
        # flip a verdict here, so stealing must agree with the baseline.
        assert statuses == baseline
        assert report.schedule["work_stealing"]
        # The hard tail job is in flight while three workers drain: at
        # least one subtree must actually get stolen.
        assert report.schedule["steals"] > 0

    def test_serial_and_process_ignore_the_toggle(self, pta, edges, baseline):
        serial = RefutationDriver(pta, SearchConfig(work_stealing=True), jobs=1)
        assert serial._steal_registry is None
        assert _statuses(serial.refute_edges(edges), edges) == baseline
        config = SearchConfig(work_stealing=True)
        with RefutationDriver(pta, config, jobs=2, backend="process") as driver:
            assert driver._steal_registry is None
            assert _statuses(driver.refute_edges(edges), edges) == baseline


# ---------------------------------------------------------------------------
# Cooperative deadlines x scheduling (satellite: both backends)
# ---------------------------------------------------------------------------


class TestCooperativeDeadlines:
    def test_deadline_timeout_kill_reason_and_pool_survives_thread(
        self, pta, edges
    ):
        """An edge blowing its deadline is TIMEOUT with budget-timeout
        kills in the journal, and the pool keeps serving later batches."""
        book = provenance.install()
        try:
            config = SearchConfig(deadline_seconds=0.0)
            with RefutationDriver(pta, config, jobs=2) as driver:
                results = driver.refute_edges(edges)
                assert {r.status for r in results.values()} == {TIMEOUT}
                report = driver.build_report(command="check")
                assert all(
                    r.kill_reasons.get(provenance.BUDGET_TIMEOUT, 0) > 0
                    for r in report.records
                )
                # The pool is not poisoned: a second batch on the same
                # driver still completes (served from the result cache).
                again = driver.refute_edges(edges)
                assert {r.status for r in again.values()} == {TIMEOUT}
        finally:
            provenance.disable()

    def test_deadline_timeout_and_pool_survives_process(self, pta, edges):
        config = SearchConfig(deadline_seconds=0.0)
        with RefutationDriver(pta, config, jobs=2, backend="process") as driver:
            results = driver.refute_edges(edges)
            assert {r.status for r in results.values()} == {TIMEOUT}
            again = driver.refute_edges(edges)
            assert {r.status for r in again.values()} == {TIMEOUT}

    def test_rung_deadline_timeout_is_provisional(self, pta, edges):
        """A deadline-capped rung attempt (the portfolio's cheap rung)
        times out WITHOUT being cached or recorded, so the full-budget
        re-run still refutes — the rescue the escalation ladder exists
        for."""
        engine = Engine(pta, SearchConfig())
        edge = edges[-1]
        capped = engine.refute_edge(edge, deadline=0.0)
        assert capped.status == TIMEOUT
        assert edge_key(edge) not in engine._edge_cache
        full = engine.refute_edge(edge)
        assert full.status == REFUTED

    def test_driver_portfolio_rescues_deadline_timeouts(self, pta, edges):
        """End to end under the thread pool: a ladder whose cheap rung
        deadline is instant still converges to the single-rung verdicts
        at the final (full-deadline) rung."""
        config = SearchConfig(
            path_budget=10_000,
            deadline_seconds=60.0,
            portfolio=True,
            portfolio_rungs=(10 ** 9,),  # rung 0: ~0s deadline, 1-path budget
        )
        with RefutationDriver(pta, config, jobs=2) as driver:
            results = driver.refute_edges(edges)
            report = driver.build_report(command="check")
        assert {r.status for r in results.values()} == {REFUTED}
        assert report.schedule["rungs"][0]["carryover"] == len(edges)
        assert report.schedule["resolved_at_rung"]["1"] == len(edges)
