"""Unit tests for the mini-Java lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)][:-1]  # drop EOF


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"


def test_identifiers_and_keywords():
    assert kinds("class Foo extends Bar") == [
        ("keyword", "class"),
        ("ident", "Foo"),
        ("keyword", "extends"),
        ("ident", "Bar"),
    ]


def test_integer_literal():
    assert kinds("42") == [("int", "42")]


def test_multi_char_operators_win_over_prefixes():
    assert kinds("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]
    assert kinds("a==b") == [("ident", "a"), ("op", "=="), ("ident", "b")]
    assert kinds("a=b") == [("ident", "a"), ("op", "="), ("ident", "b")]
    assert kinds("i++") == [("ident", "i"), ("op", "++")]


def test_string_literal_contents_unquoted():
    assert kinds('"hello"') == [("string", "hello")]


def test_string_escape_sequences():
    assert kinds(r'"a\nb\"c"') == [("string", 'a\nb"c')]


def test_line_comment_skipped():
    assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comment_skipped():
    assert kinds("a /* multi\nline */ b") == [("ident", "a"), ("ident", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"never closed')


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a # b")


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  b")
    assert (toks[0].pos.line, toks[0].pos.column) == (1, 1)
    assert (toks[1].pos.line, toks[1].pos.column) == (2, 3)


def test_dollar_and_underscore_in_identifiers():
    assert kinds("$ret _x") == [("ident", "$ret"), ("ident", "_x")]


def test_java_snippet_token_stream():
    src = "if (this.sz >= this.cap) { this.tbl[i] = val; }"
    texts = [t.text for t in tokenize(src)][:-1]
    assert texts == [
        "if", "(", "this", ".", "sz", ">=", "this", ".", "cap", ")",
        "{", "this", ".", "tbl", "[", "i", "]", "=", "val", ";", "}",
    ]
