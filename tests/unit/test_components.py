"""Tests for the non-Activity Android components and their harness support."""

import pytest

from repro.android import LIBRARY_SOURCE, LeakChecker, generate_harness
from repro.android.leaks import ALARM_CONFIRMED, ALARM_REFUTED
from repro.android.lifecycle import component_classes
from repro.lang import frontend


def table_for(app_source):
    return frontend(app_source + LIBRARY_SOURCE).table


class TestComponentDiscovery:
    def test_services_discovered(self):
        table = table_for("class Sync extends Service { void onCreate() { } }")
        assert component_classes(table, {"Sync"}) == ["Sync"]

    def test_receivers_discovered(self):
        table = table_for(
            "class Boot extends BroadcastReceiver { void onReceive(Context c) { } }"
        )
        assert component_classes(table, {"Boot"}) == ["Boot"]

    def test_fragments_discovered(self):
        table = table_for("class Detail extends Fragment { void onCreate() { } }")
        assert component_classes(table, {"Detail"}) == ["Detail"]

    def test_plain_classes_not_components(self):
        table = table_for("class Util { void onThing() { } }")
        assert component_classes(table, {"Util"}) == []

    def test_harness_drives_service_lifecycle(self):
        table = table_for(
            "class Sync extends Service {"
            " void onCreate() { } void onStartCommand() { } void onDestroy() { } }"
        )
        harness = generate_harness(table, {"Sync"})
        assert harness.index("onCreate") < harness.index("onStartCommand")
        assert harness.index("onStartCommand") < harness.index("onDestroy")


class TestComponentLeaks:
    def test_service_static_leak_confirmed(self):
        # Services are Contexts; caching one statically is the same leak
        # class (the harness must reach the handler for it to be seen).
        report = LeakChecker(
            "class Sync extends Service {"
            "  static Service sticky;"
            "  void onStartCommand() { Sync.sticky = this; } }",
            "service-leak",
            target_class="Service",
        ).run()
        alarm = next(a for a in report.alarms if a.root.field == "sticky")
        assert alarm.status == ALARM_CONFIRMED

    def test_fragment_holding_activity_leaks(self):
        report = LeakChecker(
            "class ListFrag extends Fragment {"
            "  static ListFrag current;"
            "  void onAttach(Activity a) {"
            "    this.attach(a);"
            "    ListFrag.current = this; } }",
            "fragment-leak",
        ).run()
        # The fragment holds mActivity; the static holds the fragment.
        confirmed = [a for a in report.alarms if not a.refuted]
        assert confirmed, "the fragment-retained Activity must be reported"

    def test_receiver_context_not_cached_refutable(self):
        report = LeakChecker(
            "class Boot extends BroadcastReceiver {"
            "  static Context cached;"
            "  static boolean enabled = false;"
            "  void onReceive(Context c) {"
            "    if (Boot.enabled) { Boot.cached = c; } } }",
            "receiver-guarded",
            target_class="Context",
        ).run()
        flagged = [a for a in report.alarms if a.root.field == "cached"]
        assert flagged and all(a.refuted for a in flagged)

    def test_asynctask_result_leak(self):
        report = LeakChecker(
            "class Loader extends AsyncTask {"
            "  static Object lastResult;"
            "  Object doInBackground(Object p) { return p; }"
            "  void onPostExecute(Object r) { Loader.lastResult = r; } }"
            " class Main extends Activity {"
            "  void onCreate() {"
            "    Loader l = new Loader();"
            "    l.execute(this); } }",
            "asynctask-leak",
        ).run()
        flagged = [a for a in report.alarms if a.root.field == "lastResult"]
        assert flagged and all(not a.refuted for a in flagged)

    def test_arraylist_does_not_pollute_statics(self):
        # ArrayList has no shared EMPTY: a local list never creates the
        # Figure 1 false alarm, even without annotations.
        report = LeakChecker(
            "class A extends Activity {"
            "  void onCreate() {"
            "    ArrayList l = new ArrayList();"
            "    l.add(this); } }",
            "arraylist-clean",
        ).run()
        assert report.num_alarms == 0
