"""Tests for the additional heap-reachability clients (casts, assertions,
encapsulation)."""

import pytest

from repro.clients import (
    HOLDS,
    POSSIBLY_UNSAFE,
    SAFE,
    VIOLATED,
    assert_not_leaked,
    assert_unreachable,
    check_casts,
    check_encapsulation,
    encapsulated,
    unsafe_casts,
    verified,
)
from repro.ir import compile_program
from repro.pointsto import analyze


def pta_of(source):
    return analyze(compile_program(source))


class TestCastChecking:
    def test_trivially_safe_cast(self):
        pta = pta_of(
            "class A { } class M { static void main() {"
            " Object o = new A(); A a = (A) o; } }"
        )
        (report,) = check_casts(pta)
        assert report.status == SAFE
        assert not report.suspects

    def test_definitely_failing_cast_flagged(self):
        pta = pta_of(
            "class A { } class B { } class M { static void main() {"
            " Object o = new B(); A a = (A) o; } }"
        )
        (report,) = check_casts(pta)
        assert report.status == POSSIBLY_UNSAFE
        assert report.witness_trace

    def test_path_sensitive_safe_cast_verified(self):
        # Flow-insensitively o may be a B, but the cast is guarded by a
        # correlated flag: the refuter proves it safe.
        pta = pta_of(
            "class A { } class B { } class M { static void main() {"
            " int tag = 0;"
            " Object o = new A();"
            " if (tag == 1) { o = new B(); }"
            " A a = (A) o; } }"
        )
        (report,) = check_casts(pta)
        assert report.suspects  # points-to alone cannot prove it
        assert report.status == SAFE  # ... but the refuter can

    def test_instanceof_guard_makes_cast_safe(self):
        pta = pta_of(
            "class A { } class B { } class M { static void main() {"
            " Object o = new A();"
            " if (nondet()) { o = new B(); }"
            " if (o instanceof A) { A a = (A) o; } } }"
        )
        (report,) = check_casts(pta)
        assert report.status == SAFE

    def test_unguarded_union_cast_unsafe(self):
        pta = pta_of(
            "class A { } class B { } class M { static void main() {"
            " Object o = new A();"
            " if (nondet()) { o = new B(); }"
            " A a = (A) o; } }"
        )
        (report,) = check_casts(pta)
        assert report.status == POSSIBLY_UNSAFE

    def test_unsafe_casts_filter(self):
        pta = pta_of(
            "class A { } class B { } class M { static void main() {"
            " Object x = new A(); A a1 = (A) x;"
            " Object y = new B(); A a2 = (A) y; } }"
        )
        reports = check_casts(pta)
        assert len(reports) == 2
        assert len(unsafe_casts(reports)) == 1


class TestReachabilityAssertions:
    def test_assertion_holds_when_disconnected(self):
        pta = pta_of(
            "class Secret { } class M { static Object pub;"
            " static void main() { Secret s = new Secret();"
            " M.pub = new Object(); } }"
        )
        results = assert_unreachable(pta, "M", "pub", "Secret")
        assert results == []  # not even flow-insensitively connected

    def test_assertion_violated_by_direct_store(self):
        pta = pta_of(
            "class Secret { } class M { static Object pub;"
            " static void main() { M.pub = new Secret(); } }"
        )
        results = assert_unreachable(pta, "M", "pub", "Secret")
        assert results and results[0].status == VIOLATED
        assert not verified(results)

    def test_assertion_verified_by_refutation(self):
        pta = pta_of(
            "class Secret { } class M { static Object pub;"
            " static void main() {"
            " Object o = new Object();"
            " int k = 0;"
            " if (k == 5) { o = new Secret(); }"
            " M.pub = o; } }"
        )
        results = assert_unreachable(pta, "M", "pub", "Secret")
        assert results and verified(results)
        assert results[0].refuted_edges >= 1

    def test_lifetime_assertion_not_leaked(self):
        pta = pta_of(
            "class Box { Object v; } class M { static Box keep;"
            " static void main() {"
            " Box local = new Box();"
            " Box kept = new Box();"
            " M.keep = kept; } }"
        )
        # box0 (`local`) never escapes to a static; box1 (`kept`) does.
        assert verified(assert_not_leaked(pta, "box0"))
        leaked = assert_not_leaked(pta, "box1")
        assert leaked and leaked[0].status == VIOLATED

    def test_transitive_reachability_violation(self):
        pta = pta_of(
            "class Secret { } class Holder { Object item; }"
            " class M { static Holder root; static void main() {"
            " Holder h = new Holder(); h.item = new Secret(); M.root = h; } }"
        )
        results = assert_unreachable(pta, "M", "root", "Secret")
        assert results and results[0].status == VIOLATED
        assert len(results[0].witnessed_path) == 2


class TestEncapsulation:
    def test_owned_representation(self):
        pta = pta_of(
            "class Rep { } class Owner { Rep rep;"
            "   Owner() { this.rep = new Rep(); } }"
            " class M { static Owner o; static void main() {"
            " M.o = new Owner(); } }"
        )
        # The Rep is reachable from M.o *through the owner* — check asks
        # whether the rep is reachable from statics at all; it is (via the
        # owner), so the naive exposure exists...
        results = check_encapsulation(pta, "Owner", "rep")
        assert results  # reachable through the owner itself
        # ...the meaningful query is violation via an alien root:
        alien = [r for r in results if r.root.class_name != "M"]
        assert not alien

    def test_leaked_representation_detected(self):
        pta = pta_of(
            "class Rep { } class Owner { Rep rep;"
            "   Owner() { this.rep = new Rep(); }"
            "   Rep expose() { return this.rep; } }"
            " class M { static Rep stolen; static void main() {"
            " Owner o = new Owner(); M.stolen = o.expose(); } }"
        )
        results = check_encapsulation(pta, "Owner", "rep")
        stolen = [r for r in results if str(r.root) == "M.stolen"]
        assert stolen and stolen[0].status == VIOLATED
        assert not encapsulated(results)

    def test_guarded_exposure_refuted(self):
        pta = pta_of(
            "class Rep { } class Owner { Rep rep;"
            "   Owner() { this.rep = new Rep(); }"
            "   Rep expose(int key) {"
            "     if (key == 42) { return this.rep; }"
            "     return null; } }"
            " class M { static Rep stolen; static void main() {"
            " Owner o = new Owner(); M.stolen = o.expose(7); } }"
        )
        results = check_encapsulation(pta, "Owner", "rep")
        stolen = [r for r in results if str(r.root) == "M.stolen"]
        assert stolen and stolen[0].status == HOLDS


class TestImmutability:
    def test_truly_immutable_class(self):
        pta = pta_of(
            "class Point { int x; int y; Point(int x, int y) {"
            "   this.x = x; this.y = y; } }"
            " class M { static void main() {"
            " Point p = new Point(1, 2); int s = p.x + p.y; } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Point")
        assert report.verified
        assert report.sites == []  # no write outside the ctor even aims at it

    def test_mutated_class_detected(self):
        pta = pta_of(
            "class Point { int x; Point(int x) { this.x = x; } }"
            " class M { static void main() {"
            " Point p = new Point(1); p.x = 2; } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Point")
        assert not report.verified
        assert any(s.status == "witnessed" for s in report.sites)

    def test_guarded_mutation_refuted(self):
        pta = pta_of(
            "class Point { int x; Point(int x) { this.x = x; } }"
            " class M { static void main() {"
            " Point p = new Point(1);"
            " int debug = 0;"
            " if (debug == 1) { p.x = 9; } } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Point")
        assert report.verified
        assert any(s.status == "refuted" for s in report.sites)

    def test_mutation_of_other_class_ignored(self):
        pta = pta_of(
            "class Point { int x; Point(int x) { this.x = x; } }"
            " class Box { Object v; }"
            " class M { static void main() {"
            " Point p = new Point(1); Box b = new Box(); b.v = p; } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Point")
        assert report.verified

    def test_subclass_writes_count(self):
        pta = pta_of(
            "class Base { int x; Base() { this.x = 0; } }"
            " class Sub extends Base { void bump() { this.x = this.x + 1; } }"
            " class M { static void main() { new Sub().bump(); } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Base")
        assert not report.verified

    def test_ctor_helper_writes_flag_mutation(self):
        # Writes from a helper called by the ctor are outside the ctor
        # itself; the shallow check conservatively reports them.
        pta = pta_of(
            "class Point { int x; Point(int x) { this.init(x); }"
            "   void init(int x) { this.x = x; } }"
            " class M { static void main() { Point p = new Point(1); } }"
        )
        from repro.clients import check_immutable

        report = check_immutable(pta, "Point")
        assert not report.verified
