"""Unit tests for the ``thresher`` command-line interface."""

import pytest

from repro.cli import main

LEAKY_APP = """
class A extends Activity {
    static Activity cache;
    void onCreate() { A.cache = this; }
}
"""

CLEAN_APP = """
class A extends Activity {
    static boolean keep = false;
    static Activity cache;
    void onCreate() { if (A.keep) { A.cache = this; } }
}
"""


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.mj"
    path.write_text(LEAKY_APP)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN_APP)
    return str(path)


class TestCheck:
    def test_leaky_app_exits_nonzero(self, leaky_file, capsys):
        code = main(["check", leaky_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "confirmed" in out
        assert "A.cache" in out

    def test_clean_app_exits_zero(self, clean_file, capsys):
        code = main(["check", clean_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "refuted" in out

    def test_witnesses_flag_prints_trace(self, leaky_file, capsys):
        code = main(["check", leaky_file, "--witnesses"])
        out = capsys.readouterr().out
        assert code == 1
        assert "witness for" in out

    def test_budget_flag_accepted(self, clean_file):
        assert main(["check", clean_file, "--budget", "100"]) in (0, 1)

    def test_annotated_flag(self, clean_file):
        assert main(["check", clean_file, "--annotated"]) == 0


class TestGraph:
    def test_dot_output(self, leaky_file, capsys):
        assert main(["graph", leaky_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "cache" in out

    def test_no_library_mode(self, tmp_path, capsys):
        path = tmp_path / "standalone.mj"
        path.write_text(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        assert main(["graph", str(path), "--no-library"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestWitness:
    def test_witness_for_field(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.cache"]) == 0
        out = capsys.readouterr().out
        assert "WITNESSED" in out

    def test_refuted_field(self, clean_file, capsys):
        assert main(["witness", clean_file, "A.cache"]) == 0
        assert "REFUTED" in capsys.readouterr().out

    def test_missing_dot_rejected(self, leaky_file):
        assert main(["witness", leaky_file, "nodot"]) == 2

    def test_unknown_field_reports_no_edges(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.nothing"]) == 0
        assert "no points-to edges" in capsys.readouterr().out


class TestBench:
    def test_bench_single_app_table1(self, capsys):
        assert main(["bench", "--app", "DroidLife"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DroidLife" in out

    def test_bench_single_app_table2(self, capsys):
        assert main(["bench", "--table", "2", "--app", "DroidLife"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestDriverFlags:
    """The parallel-driver flags shared by check/witness/casts/bench."""

    def test_jobs_flag_same_verdict(self, leaky_file, clean_file, capsys):
        for path, expected in ((leaky_file, 1), (clean_file, 0)):
            serial = main(["check", path, "--jobs", "1"])
            capsys.readouterr()
            parallel = main(["check", path, "--jobs", "4"])
            capsys.readouterr()
            assert serial == parallel == expected

    def test_json_report_written(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "run.json")
        code = main(["check", leaky_file, "--jobs", "2", "--json-report", report_path])
        capsys.readouterr()
        assert code == 1
        data = json.loads(open(report_path).read())
        assert data["jobs"] == 2
        assert data["records"]
        assert {r["status"] for r in data["records"]} <= {
            "refuted", "witnessed", "timeout"
        }

    def test_deadline_flag_converts_to_timeout(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "run.json")
        code = main(
            ["check", leaky_file, "--deadline", "0.0", "--json-report", report_path]
        )
        capsys.readouterr()
        assert code == 1  # timeout is not-refuted: the alarm is still reported
        data = json.loads(open(report_path).read())
        assert data["deadline"] == 0.0
        assert data["summary"]["timeouts"] >= 1

    def test_progress_flag(self, leaky_file, capsys):
        code = main(["check", leaky_file, "--progress"])
        captured = capsys.readouterr()
        assert code == 1
        assert "done:" in captured.err

    def test_witness_with_driver_flags(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "wit.json")
        code = main(
            ["witness", leaky_file, "A.cache", "--jobs", "2",
             "--json-report", report_path]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WITNESSED" in out
        assert json.loads(open(report_path).read())["command"] == "witness"

    def test_bench_with_jobs(self, capsys):
        assert main(["bench", "--app", "DroidLife", "--jobs", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out
