"""Unit tests for the ``thresher`` command-line interface."""

import pytest

from repro.cli import main

LEAKY_APP = """
class A extends Activity {
    static Activity cache;
    void onCreate() { A.cache = this; }
}
"""

CLEAN_APP = """
class A extends Activity {
    static boolean keep = false;
    static Activity cache;
    void onCreate() { if (A.keep) { A.cache = this; } }
}
"""


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.mj"
    path.write_text(LEAKY_APP)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN_APP)
    return str(path)


class TestCheck:
    def test_leaky_app_exits_nonzero(self, leaky_file, capsys):
        code = main(["check", leaky_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "confirmed" in out
        assert "A.cache" in out

    def test_clean_app_exits_zero(self, clean_file, capsys):
        code = main(["check", clean_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "refuted" in out

    def test_witnesses_flag_prints_trace(self, leaky_file, capsys):
        code = main(["check", leaky_file, "--witnesses"])
        out = capsys.readouterr().out
        assert code == 1
        assert "witness for" in out

    def test_budget_flag_accepted(self, clean_file):
        assert main(["check", clean_file, "--budget", "100"]) in (0, 1)

    def test_annotated_flag(self, clean_file):
        assert main(["check", clean_file, "--annotated"]) == 0


class TestGraph:
    def test_dot_output(self, leaky_file, capsys):
        assert main(["graph", leaky_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "cache" in out

    def test_no_library_mode(self, tmp_path, capsys):
        path = tmp_path / "standalone.mj"
        path.write_text(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        assert main(["graph", str(path), "--no-library"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestWitness:
    def test_witness_for_field(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.cache"]) == 0
        out = capsys.readouterr().out
        assert "WITNESSED" in out

    def test_refuted_field(self, clean_file, capsys):
        assert main(["witness", clean_file, "A.cache"]) == 0
        assert "REFUTED" in capsys.readouterr().out

    def test_missing_dot_rejected(self, leaky_file):
        assert main(["witness", leaky_file, "nodot"]) == 2

    def test_unknown_field_reports_no_edges(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.nothing"]) == 0
        assert "no points-to edges" in capsys.readouterr().out


class TestBench:
    def test_bench_single_app_table1(self, capsys):
        assert main(["bench", "--app", "DroidLife"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DroidLife" in out

    def test_bench_single_app_table2(self, capsys):
        assert main(["bench", "--table", "2", "--app", "DroidLife"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestDriverFlags:
    """The parallel-driver flags shared by check/witness/casts/bench."""

    def test_jobs_flag_same_verdict(self, leaky_file, clean_file, capsys):
        for path, expected in ((leaky_file, 1), (clean_file, 0)):
            serial = main(["check", path, "--jobs", "1"])
            capsys.readouterr()
            parallel = main(["check", path, "--jobs", "4"])
            capsys.readouterr()
            assert serial == parallel == expected

    def test_json_report_written(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "run.json")
        code = main(["check", leaky_file, "--jobs", "2", "--json-report", report_path])
        capsys.readouterr()
        assert code == 1
        data = json.loads(open(report_path).read())
        assert data["jobs"] == 2
        assert data["records"]
        assert {r["status"] for r in data["records"]} <= {
            "refuted", "witnessed", "timeout"
        }

    def test_deadline_flag_converts_to_timeout(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "run.json")
        code = main(
            ["check", leaky_file, "--deadline", "0.0", "--json-report", report_path]
        )
        capsys.readouterr()
        assert code == 1  # timeout is not-refuted: the alarm is still reported
        data = json.loads(open(report_path).read())
        assert data["deadline"] == 0.0
        assert data["summary"]["timeouts"] >= 1

    def test_progress_flag(self, leaky_file, capsys):
        code = main(["check", leaky_file, "--progress"])
        captured = capsys.readouterr()
        assert code == 1
        assert "done:" in captured.err

    def test_witness_with_driver_flags(self, leaky_file, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "wit.json")
        code = main(
            ["witness", leaky_file, "A.cache", "--jobs", "2",
             "--json-report", report_path]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WITNESSED" in out
        assert json.loads(open(report_path).read())["command"] == "witness"

    def test_bench_with_jobs(self, capsys):
        assert main(["bench", "--app", "DroidLife", "--jobs", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestExplainDiff:
    def _reports(self, leaky_file, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert main(["check", leaky_file, "--json-report", a]) == 1
        # The injected regression: an instant per-edge deadline flips
        # every verdict to TIMEOUT in report B.
        assert main(
            ["check", leaky_file, "--deadline", "0", "--json-report", b]
        ) in (0, 1)
        capsys.readouterr()
        return a, b

    def test_diff_attributes_injected_regression(
        self, leaky_file, tmp_path, capsys
    ):
        a, b = self._reports(leaky_file, tmp_path, capsys)
        assert main(["explain", "--diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "run diff:" in out
        assert "verdict changes:" in out
        assert "-> timeout" in out

    def test_explain_requires_a_mode(self, capsys):
        assert main(["explain"]) == 2
        err = capsys.readouterr().err
        assert "--report" in err and "--diff" in err and "--slow" in err


class TestExplainStatusTiers:
    def test_no_partition_report_says_so(self, clean_file, tmp_path, capsys):
        report = str(tmp_path / "r.json")
        assert main(
            ["check", clean_file, "--no-partition", "--json-report", report]
        ) == 0
        capsys.readouterr()
        assert main(["explain", "--report", report, "--status"]) == 0
        out = capsys.readouterr().out
        assert "partitioning disabled" in out
        assert "solver context hits" not in out

    def test_partitioned_report_prints_tier_rows(
        self, clean_file, tmp_path, capsys
    ):
        report = str(tmp_path / "r.json")
        assert main(["check", clean_file, "--json-report", report]) == 0
        capsys.readouterr()
        assert main(["explain", "--report", report, "--status"]) == 0
        out = capsys.readouterr().out
        assert "solver context hits" in out
        assert "partitioning disabled" not in out


class TestExplainSlow:
    def test_lists_captures_from_flight_dir(
        self, leaky_file, tmp_path, capsys, monkeypatch
    ):
        from repro.obs import telemetry

        flight = str(tmp_path / "flight")
        monkeypatch.setenv("REPRO_FLIGHT_DIR", flight)
        monkeypatch.delenv("REPRO_FLIGHT_DISABLE", raising=False)
        monkeypatch.setattr(
            telemetry, "RECORDER", telemetry.FlightRecorder()
        )
        # Zero observability flags; every search trips the threshold.
        assert main(["check", leaky_file, "--slow-query-ms", "0.000001"]) == 1
        capsys.readouterr()
        assert main(["explain", "--slow"]) == 0
        out = capsys.readouterr().out
        assert "slow-query capture(s)" in out
        assert "journal:" in out
        assert main(["explain", "--slow", "--flight-dir", flight]) == 0
        assert "slow-query capture(s)" in capsys.readouterr().out

    def test_empty_dir_reports_none(self, tmp_path, capsys):
        assert main(
            ["explain", "--slow", "--flight-dir", str(tmp_path / "none")]
        ) == 0
        assert "no flight-recorder captures" in capsys.readouterr().out

    def test_slow_query_zero_disables(self, leaky_file, tmp_path, monkeypatch):
        from repro.obs import telemetry

        flight = str(tmp_path / "flight")
        monkeypatch.setenv("REPRO_FLIGHT_DIR", flight)
        monkeypatch.setattr(
            telemetry, "RECORDER", telemetry.FlightRecorder()
        )
        assert main(["check", leaky_file, "--slow-query-ms", "0"]) == 1
        assert telemetry.list_captures(flight) == []


class TestTop:
    def test_render_top_is_pure_and_complete(self):
        from repro.cli import _render_top

        frame = _render_top(
            {
                "program": {"methods": 12, "commands": 80},
                "metrics": {"serve.requests": 3, "driver.steals": 1},
                "schedule": {
                    "rungs": [
                        {"rung": 0, "budget": 1000, "scheduled": 6,
                         "resolved": 4, "carryover": 2}
                    ]
                },
                "cache_tiers": {"context_hits": 6, "decisions": 2},
                "telemetry": {
                    "run": {"total_jobs": 6, "jobs": 2, "backend": "thread",
                            "finished": None},
                    "totals": {"scheduled": 6, "refuted": 3, "stolen": 1},
                    "in_flight": [
                        {"description": "Registry.hold -> it", "rung": 1,
                         "steals": 1, "since": 0.0}
                    ],
                    "workers": {"w0": 2, "w1": 1},
                },
            }
        )
        assert "12 methods" in frame
        assert "running" in frame
        assert "rung 1  steals 1  Registry.hold -> it" in frame
        assert "rung 0 @ 1000: 6/4/2" in frame
        assert "w0: 2 (67%)" in frame
        assert "6/8 solver questions answered from cache (75%)" in frame
        assert "1 steal(s)" in frame

    def test_render_top_empty_payload(self):
        from repro.cli import _render_top

        frame = _render_top({})
        assert frame.startswith("thresher top")
        assert "in flight (0):" in frame

    def test_top_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(
            ["top", "--url", "http://127.0.0.1:9", "--once"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err
