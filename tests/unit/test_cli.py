"""Unit tests for the ``thresher`` command-line interface."""

import pytest

from repro.cli import main

LEAKY_APP = """
class A extends Activity {
    static Activity cache;
    void onCreate() { A.cache = this; }
}
"""

CLEAN_APP = """
class A extends Activity {
    static boolean keep = false;
    static Activity cache;
    void onCreate() { if (A.keep) { A.cache = this; } }
}
"""


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.mj"
    path.write_text(LEAKY_APP)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN_APP)
    return str(path)


class TestCheck:
    def test_leaky_app_exits_nonzero(self, leaky_file, capsys):
        code = main(["check", leaky_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "confirmed" in out
        assert "A.cache" in out

    def test_clean_app_exits_zero(self, clean_file, capsys):
        code = main(["check", clean_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "refuted" in out

    def test_witnesses_flag_prints_trace(self, leaky_file, capsys):
        code = main(["check", leaky_file, "--witnesses"])
        out = capsys.readouterr().out
        assert code == 1
        assert "witness for" in out

    def test_budget_flag_accepted(self, clean_file):
        assert main(["check", clean_file, "--budget", "100"]) in (0, 1)

    def test_annotated_flag(self, clean_file):
        assert main(["check", clean_file, "--annotated"]) == 0


class TestGraph:
    def test_dot_output(self, leaky_file, capsys):
        assert main(["graph", leaky_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "cache" in out

    def test_no_library_mode(self, tmp_path, capsys):
        path = tmp_path / "standalone.mj"
        path.write_text(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        assert main(["graph", str(path), "--no-library"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestWitness:
    def test_witness_for_field(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.cache"]) == 0
        out = capsys.readouterr().out
        assert "WITNESSED" in out

    def test_refuted_field(self, clean_file, capsys):
        assert main(["witness", clean_file, "A.cache"]) == 0
        assert "REFUTED" in capsys.readouterr().out

    def test_missing_dot_rejected(self, leaky_file):
        assert main(["witness", leaky_file, "nodot"]) == 2

    def test_unknown_field_reports_no_edges(self, leaky_file, capsys):
        assert main(["witness", leaky_file, "A.nothing"]) == 0
        assert "no points-to edges" in capsys.readouterr().out


class TestBench:
    def test_bench_single_app_table1(self, capsys):
        assert main(["bench", "--app", "DroidLife"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DroidLife" in out

    def test_bench_single_app_table2(self, capsys):
        assert main(["bench", "--table", "2", "--app", "DroidLife"]) == 0
        assert "Table 2" in capsys.readouterr().out
