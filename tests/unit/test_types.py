"""Unit tests for the type checker and class table."""

import pytest

from repro.lang import ast, frontend, parse_program
from repro.lang.errors import TypeCheckError
from repro.lang.types import check_program


def check(source):
    return frontend(source)


class TestClassTable:
    def test_builtin_classes_present(self):
        prog = check("class A { }")
        assert "Object" in prog.table
        assert "String" in prog.table

    def test_default_superclass_is_object(self):
        prog = check("class A { }")
        assert prog.table.get("A").superclass == "Object"

    def test_subclass_relation(self):
        prog = check("class A { } class B extends A { } class C extends B { }")
        assert prog.table.is_subclass("C", "A")
        assert prog.table.is_subclass("C", "Object")
        assert not prog.table.is_subclass("A", "C")

    def test_subclasses_enumeration(self):
        prog = check("class A { } class B extends A { } class C { }")
        assert set(prog.table.subclasses("A")) == {"A", "B"}

    def test_field_lookup_walks_hierarchy(self):
        prog = check("class A { int x; } class B extends A { }")
        fld = prog.table.lookup_field("B", "x")
        assert fld is not None and fld.decl_class == "A"

    def test_method_lookup_prefers_override(self):
        prog = check(
            "class A { void m() { } } class B extends A { void m() { } }"
        )
        assert prog.table.lookup_method("B", "m").decl_class == "B"
        assert prog.table.lookup_method("A", "m").decl_class == "A"

    def test_unknown_superclass_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A extends Nope { }")

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A extends B { } class B extends A { }")

    def test_duplicate_class_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { } class A { }")

    def test_overloading_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { } void m(int x) { } }")


class TestResolution:
    def test_bare_name_resolves_to_local(self):
        prog = check("class A { void m() { int x = 0; int y = x; } }")
        body = prog.table.get("A").methods["m"].body
        init = body.stmts[1].init
        assert isinstance(init, ast.VarRef)

    def test_bare_name_resolves_to_instance_field(self):
        prog = check("class A { int f; void m() { int y = f; } }")
        init = prog.table.get("A").methods["m"].body.stmts[0].init
        assert isinstance(init, ast.FieldAccess)
        assert isinstance(init.target, ast.ThisRef)

    def test_bare_name_resolves_to_static_field(self):
        prog = check("class A { static int f; void m() { int y = f; } }")
        init = prog.table.get("A").methods["m"].body.stmts[0].init
        assert isinstance(init, ast.FieldAccess)
        assert init.is_static

    def test_static_field_through_class_name(self):
        prog = check(
            "class A { static int f; } class B { void m() { int y = A.f; } }"
        )
        init = prog.table.get("B").methods["m"].body.stmts[0].init
        assert init.is_static and init.decl_class == "A"

    def test_array_length_rewritten(self):
        prog = check("class A { void m(int[] xs) { int n = xs.length; } }")
        init = prog.table.get("A").methods["m"].body.stmts[0].init
        assert isinstance(init, ast.ArrayLength)

    def test_unqualified_call_gets_this_target(self):
        prog = check("class A { void h() { } void m() { h(); } }")
        call = prog.table.get("A").methods["m"].body.stmts[0].expr
        assert isinstance(call.target, ast.ThisRef)

    def test_unresolved_name_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { int y = nope; } }")


class TestTypeRules:
    def test_int_arith_ok(self):
        check("class A { void m() { int x = 1 + 2 * 3; } }")

    def test_bool_arith_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { int x = true + 1; } }")

    def test_condition_must_be_boolean(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { if (1) { } } }")

    def test_null_assignable_to_reference(self):
        check("class A { void m() { A x = null; } }")

    def test_null_not_assignable_to_int(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { int x = null; } }")

    def test_subclass_assignable_to_superclass(self):
        check("class A { } class B extends A { void m() { A x = new B(); } }")

    def test_superclass_not_assignable_to_subclass(self):
        with pytest.raises(TypeCheckError):
            check("class A { } class B extends A { void m() { B x = new A(); } }")

    def test_array_covariance(self):
        check(
            "class A { } class B extends A {"
            " void m() { A[] xs = new B[3]; Object o = xs; } }"
        )

    def test_reference_equality_ok(self):
        check("class A { void m(A a, A b) { boolean e = a == b; } }")

    def test_ref_vs_int_equality_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m(A a) { boolean e = a == 1; } }")

    def test_call_arity_checked(self):
        with pytest.raises(TypeCheckError):
            check("class A { void h(int x) { } void m() { h(); } }")

    def test_call_arg_type_checked(self):
        with pytest.raises(TypeCheckError):
            check("class A { void h(int x) { } void m() { h(true); } }")

    def test_return_type_checked(self):
        with pytest.raises(TypeCheckError):
            check("class A { int m() { return true; } }")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { return 1; } }")

    def test_this_in_static_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { int f; static void m() { int x = this.f; } }")

    def test_instance_call_from_static_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void h() { } static void m() { h(); } }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { void m() { break; } }")

    def test_final_field_assignment_outside_ctor_rejected(self):
        with pytest.raises(TypeCheckError):
            check("class A { final int f; void m() { this.f = 1; } }")

    def test_final_field_assignment_in_ctor_ok(self):
        check("class A { final int f; A() { this.f = 1; } }")

    def test_super_call_checks_ctor_args(self):
        check(
            "class Ctx { } class Base { Base(Ctx c) { } }"
            " class D extends Base { D(Ctx c) { super(c); } }"
        )
        with pytest.raises(TypeCheckError):
            check(
                "class Ctx { } class Base { Base(Ctx c) { } }"
                " class D extends Base { D() { super(); } }"
            )

    def test_string_literal_has_string_type(self):
        prog = check('class A { void m() { Object o = "hello"; } }')
        init = prog.table.get("A").methods["m"].body.stmts[0].init
        assert init.type == ast.STRING

    def test_figure1_program_typechecks(self):
        # The running example of the paper (Figure 1), in mini-Java.
        check(FIGURE1)


FIGURE1 = """
class Activity { }
class Main {
    static void main() {
        Act a = new Act();
        a.onCreate();
    }
}
class Act extends Activity {
    static Vec objs;
    void onCreate() {
        Vec acts = new Vec();
        acts.push(this);
        Act.objs = new Vec();
        Act.objs.push("hello");
    }
}
class Vec {
    static final Object[] EMPTY = new Object[1];
    int sz;
    int cap;
    Object[] tbl;
    Vec() {
        this.sz = 0;
        this.cap = 0 - 1;
        this.tbl = Vec.EMPTY;
    }
    void push(Object val) {
        Object[] oldtbl = this.tbl;
        if (this.sz >= this.cap) {
            this.cap = this.tbl.length * 2;
            this.tbl = new Object[this.cap];
            for (int i = 0; i < this.sz; i++) {
                this.tbl[i] = oldtbl[i];
            }
        }
        this.tbl[this.sz] = val;
        this.sz = this.sz + 1;
    }
}
"""


def test_checker_is_idempotent_on_checked_tree():
    unit = parse_program("class A { int f; void m() { int y = f; } }")
    check_program(unit)
    check_program(unit)  # resolving twice must not fail
