"""End-to-end tests of the witness-refutation engine on small programs.

Each test compiles a mini-Java program, runs the points-to analysis, picks
a heap edge, and checks whether the engine refutes or witnesses it.
"""

import pytest

from repro.ir import compile_program
from repro.pointsto import ELEMS, ContainerSensitive, analyze
from repro.symbolic import Engine, Representation, SearchConfig
from repro.symbolic.stats import REFUTED, TIMEOUT, WITNESSED


def setup(source, config=None, **pta_kwargs):
    prog = compile_program(source)
    pta = analyze(prog, **pta_kwargs)
    return pta, Engine(pta, config or SearchConfig())


def find_edge(pta, field_name, dst_hint=None, src_hint=None):
    edges = [
        e
        for e in list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
        if e.field == field_name
        and (dst_hint is None or str(e.dst) == dst_hint)
        and (src_hint is None or str(e.src) == src_hint)
    ]
    assert len(edges) == 1, f"expected one edge, got {edges}"
    return edges[0]


class TestWitnessing:
    def test_straightline_store_witnessed(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED

    def test_static_store_witnessed(self):
        pta, engine = setup(
            "class M { static Object o; static void main() { M.o = new Object(); } }"
        )
        result = engine.refute_edge(find_edge(pta, "o"))
        assert result.status == WITNESSED

    def test_witness_trace_is_forward_ordered(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.witness_trace
        # Labels along one path program should be increasing-ish in program
        # order; at minimum the producing write is the last step.
        prod_label = pta.producers_of(result.edge.__class__(**{}) if False else result.edge)[0]
        assert result.witness_trace[-1] == prod_label

    def test_store_through_call_witnessed(self):
        pta, engine = setup(
            "class Box { Object v; void set(Object o) { this.v = o; } }"
            " class M { static void main() {"
            " Box b = new Box(); b.set(new Object()); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED

    def test_array_store_witnessed(self):
        pta, engine = setup(
            "class M { static void main() {"
            " Object[] xs = new Object[2]; xs[0] = new Object(); } }"
        )
        result = engine.refute_edge(find_edge(pta, ELEMS))
        assert result.status == WITNESSED


class TestValueCorrelationRefutation:
    """Flow-insensitive pt merges both branches; path sensitivity splits."""

    SOURCE = (
        "class Box { Object v; } class M { static void main() {"
        "  int flag = 0;"
        "  Object o = new String();"
        "  if (flag == 1) { o = new Object(); }"
        "  Box b = new Box();"
        "  b.v = o; } }"
    )

    def test_infeasible_branch_value_refuted(self):
        pta, engine = setup(self.SOURCE)
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="object0"))
        assert result.status == REFUTED

    def test_feasible_branch_value_witnessed(self):
        pta, engine = setup(self.SOURCE)
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="string0"))
        assert result.status == WITNESSED


class TestAllocationSiteRefutation:
    def test_wit_new_conflicting_site(self):
        # The write stores the String freshly overwritten into o; the
        # points-to set of o still contains object0 from the first
        # assignment, so the flow-insensitive edge v -> object0 exists but
        # the strong update refutes it.
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Object o = new Object();"
            " o = new String();"
            " Box b = new Box(); b.v = o; } }"
        )
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="object0"))
        assert result.status == REFUTED
        result2 = engine.refute_edge(find_edge(pta, "v", dst_hint="string0"))
        assert result2.status == WITNESSED


class TestArgumentBindingRefutation:
    """The paper's objs.push("hello") pattern: a call site whose argument
    cannot be the queried instance (WIT-NEW via parameter binding)."""

    SOURCE = (
        "class Activity { }"
        " class Box { Object v; void set(Object o) { this.v = o; } }"
        " class M { static void main() {"
        "   Box b1 = new Box(); Box b2 = new Box();"
        '   b1.set(new Activity()); b2.set("hello"); } }'
    )

    def test_per_receiver_contents_separated_with_context(self):
        pta, engine = setup(
            self.SOURCE, policy=ContainerSensitive(containers={"Box"})
        )
        # With container context, b2's box never holds the Activity.
        edges = [
            e
            for e in pta.graph.heap_edges()
            if e.field == "v" and str(e.dst) == "activity0"
        ]
        assert len(edges) == 1  # precise points-to already separates

    def test_refutes_wrong_receiver_flow_without_context(self):
        # Context-insensitively, `this` in Box.set points to both boxes and
        # `o` to both values, so the graph has the spurious edge
        # box1.v -> activity0. The backwards search refutes it: on the
        # b2.set("hello") path the argument is a String (WIT-NEW at the
        # string literal), and on the b1.set(activity) path the receiver is
        # box0 (conflicts with the queried box1 instance).
        pta, engine = setup(self.SOURCE)
        by_src = {
            str(e.src): e
            for e in pta.graph.heap_edges()
            if e.field == "v" and str(e.dst) == "activity0"
        }
        assert set(by_src) == {"box0", "box1"}
        assert engine.refute_edge(by_src["box1"]).status == REFUTED
        assert engine.refute_edge(by_src["box0"]).status == WITNESSED


class TestStaticGuardRefutation:
    """The StandupTimer latent-leak pattern: a flag that is never enabled
    guards the leaking store."""

    SOURCE = (
        "class Activity { }"
        " class Prefs { static boolean cache = false; }"
        " class M { static Object hold;"
        "   static void main() {"
        "     Activity a = new Activity();"
        "     if (Prefs.cache) { M.hold = a; } } }"
    )

    def test_flag_never_set_refutes_leak(self):
        pta, engine = setup(self.SOURCE)
        result = engine.refute_edge(find_edge(pta, "hold"))
        assert result.status == REFUTED

    def test_flag_enabled_witnesses_leak(self):
        source = self.SOURCE.replace("static boolean cache = false", "static boolean cache = true")
        pta, engine = setup(source)
        result = engine.refute_edge(find_edge(pta, "hold"))
        assert result.status == WITNESSED

    def test_flag_nondet_witnesses_leak(self):
        source = (
            "class Activity { }"
            " class M { static Object hold;"
            "   static void main() {"
            "     Activity a = new Activity();"
            "     if (nondet()) { M.hold = a; } } }"
        )
        pta, engine = setup(source)
        result = engine.refute_edge(find_edge(pta, "hold"))
        assert result.status == WITNESSED


class TestInterprocedural:
    def test_callee_constant_refutes(self):
        # The guard constant comes from a callee's return value.
        pta, engine = setup(
            "class Activity { }"
            " class M { static Object hold;"
            "   static int zero() { return 0; }"
            "   static void main() {"
            "     Activity a = new Activity();"
            "     int z = M.zero();"
            "     if (z == 1) { M.hold = a; } } }"
        )
        result = engine.refute_edge(find_edge(pta, "hold"))
        assert result.status == REFUTED

    def test_two_callers_one_feasible(self):
        pta, engine = setup(
            "class Activity { }"
            " class Box { Object v; }"
            " class M { static Box box;"
            "   static void put(Box b, Object o) { b.v = o; }"
            "   static void main() {"
            "     M.box = new Box();"
            '     M.put(M.box, "s");'
            "     M.put(M.box, new Activity()); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="activity0"))
        assert result.status == WITNESSED
        result2 = engine.refute_edge(find_edge(pta, "v", dst_hint="str0"))
        assert result2.status == WITNESSED

    def test_deep_call_chain_witnessed_within_depth(self):
        pta, engine = setup(
            "class Box { Object v; }"
            " class M {"
            "   static void l1(Box b, Object o) { M.l2(b, o); }"
            "   static void l2(Box b, Object o) { b.v = o; }"
            "   static void main() { M.l1(new Box(), new Object()); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED

    def test_skipped_callee_never_refutes_unsoundly(self):
        # With call depth 0, every callee is skipped: queries weaken to
        # `any` and the edge must be witnessed, never refuted.
        pta, engine = setup(
            "class Box { Object v; void set(Object o) { this.v = o; } }"
            " class M { static void main() {"
            " Box b = new Box(); b.set(new Object()); } }",
            config=SearchConfig(max_call_depth=0),
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED


class TestLoops:
    def test_loop_irrelevant_to_query(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " int i = 0; while (i < 3) { i = i + 1; }"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED

    def test_store_inside_loop_witnessed(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == WITNESSED

    def test_guarded_store_inside_loop_refuted(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0; int flag = 0;"
            " while (i < 3) {"
            "   if (flag == 1) { b.v = new Object(); }"
            "   i = i + 1; } } }"
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == REFUTED

    def test_array_copy_loop_witnessed(self):
        pta, engine = setup(
            "class M { static void main() {"
            " Object[] src = new Object[2]; Object[] dst = new Object[2];"
            " src[0] = new Object();"
            " for (int i = 0; i < 2; i++) { dst[i] = src[i]; } } }"
        )
        edges = [
            e
            for e in pta.graph.heap_edges()
            if e.field == ELEMS and str(e.src) == "arr1"
        ]
        assert len(edges) == 1
        result = engine.refute_edge(edges[0])
        assert result.status == WITNESSED


class TestBudget:
    def test_tiny_budget_times_out(self):
        pta, engine = setup(
            "class Box { Object v; } class M {"
            " static void put(Box b, Object o) { b.v = o; }"
            " static void main() {"
            "   Box b = new Box(); Object o = new Object();"
            "   if (nondet()) { M.put(b, o); } else { M.put(b, o); }"
            "   if (nondet()) { M.put(b, o); } else { M.put(b, o); } } }",
            config=SearchConfig(path_budget=1),
        )
        result = engine.refute_edge(find_edge(pta, "v"))
        assert result.status == TIMEOUT

    def test_edge_results_cached(self):
        pta, engine = setup(
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        edge = find_edge(pta, "v")
        r1 = engine.refute_edge(edge)
        r2 = engine.refute_edge(edge)
        assert r1 is r2


class TestRepresentations:
    SOURCE = TestValueCorrelationRefutation.SOURCE

    @pytest.mark.parametrize(
        "rep",
        [Representation.MIXED, Representation.FULLY_SYMBOLIC, Representation.FULLY_EXPLICIT],
    )
    def test_feasible_edge_witnessed_in_all_representations(self, rep):
        pta, engine = setup(self.SOURCE, config=SearchConfig(representation=rep))
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="string0"))
        assert result.status == WITNESSED

    @pytest.mark.parametrize(
        "rep",
        [Representation.MIXED, Representation.FULLY_EXPLICIT],
    )
    def test_infeasible_edge_refuted_with_regions(self, rep):
        pta, engine = setup(self.SOURCE, config=SearchConfig(representation=rep))
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="object0"))
        assert result.status == REFUTED

    def test_fully_symbolic_still_refutes_via_alloc_check(self):
        pta, engine = setup(
            self.SOURCE,
            config=SearchConfig(representation=Representation.FULLY_SYMBOLIC),
        )
        result = engine.refute_edge(find_edge(pta, "v", dst_hint="object0"))
        # The initial query vars keep their singleton regions, so WIT-NEW
        # still refutes the infeasible branch; the flag constant kills the
        # feasible one.
        assert result.status == REFUTED
