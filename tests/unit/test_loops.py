"""Unit tests for the loop-invariant inference (Section 3.3)."""

import pytest

from repro.ir import compile_program
from repro.ir.stmts import Loop, walk_statements
from repro.pointsto import analyze
from repro.solver import LinExpr, eq, lt
from repro.symbolic import Engine, LoopInference, Query, SearchConfig
from repro.symbolic.loops import saturate, unstable_vars


def setup(source, **config_kwargs):
    program = compile_program(source)
    pta = analyze(program)
    engine = Engine(pta, SearchConfig(**config_kwargs))
    return program, pta, engine


def the_loop(program, qname):
    loops = [
        s
        for s in walk_statements(program.methods[qname].body)
        if isinstance(s, Loop)
    ]
    assert len(loops) == 1
    return loops[0]


COUNTING = (
    "class Box { Object v; } class M { static void main() {"
    " Box b = new Box();"
    " int i = 0;"
    " while (i < 5) { i = i + 1; }"
    " b.v = new Object(); } }"
)


class TestSaturation:
    def test_irrelevant_loop_is_identity(self):
        # WIT-LOOP's degenerate case: the loop body cannot touch the query.
        program, pta, engine = setup(COUNTING)
        loop = the_loop(program, "M.main")
        q = Query("M.main")
        v = q.new_ref(pta.pt_local("M.main", "b"))
        q.set_local("b", v)
        invariant = saturate(engine, loop, q)
        assert len(invariant) == 1
        assert invariant[0].get_local("b") is not None

    def test_loop_modified_pure_constraints_dropped(self):
        program, pta, engine = setup(COUNTING)
        loop = the_loop(program, "M.main")
        q = Query("M.main")
        d = q.new_data()
        q.set_local("i", d)  # i is written by the loop
        q.add_pure(eq(LinExpr.var(d), LinExpr.constant(5)))
        invariant = saturate(engine, loop, q)
        # The i == 5 fact cannot be invariant; it must be gone everywhere.
        for inv in invariant:
            assert all(
                inv.find(d) not in {inv.find(x) for x in atom.vars()}
                for atom, _ in inv.pure
                for x in atom.vars()
            ) or not inv.pure

    def test_stable_constraints_survive(self):
        program, pta, engine = setup(COUNTING)
        loop = the_loop(program, "M.main")
        q = Query("M.main")
        d = q.new_data()
        q.set_local("unrelated", d)
        q.add_pure(eq(LinExpr.var(d), LinExpr.constant(3)))
        invariant = saturate(engine, loop, q)
        assert any(inv.pure for inv in invariant)

    def test_fixpoint_over_heap_writing_loop(self):
        source = (
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        program, pta, engine = setup(source)
        loop = the_loop(program, "M.main")
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "b"))
        value = q.new_ref(pta.pt_local("M.main", "b"))  # wrong region: Box
        q.set_field(base, "v", value)
        # value's region {box0} conflicts with what the loop writes
        # ({object0}); the produced case refutes, the not-produced case and
        # the 0-iteration case survive saturation.
        invariant = saturate(engine, loop, q)
        assert invariant  # terminates with a nonempty set

    def test_drop_all_mode_clears_affected_cells(self):
        source = (
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        program, pta, engine = setup(source, loop_inference=LoopInference.DROP_ALL)
        loop = the_loop(program, "M.main")
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "b"))
        value = q.new_ref(None)
        q.set_field(base, "v", value)
        invariant = saturate(engine, loop, q)
        assert len(invariant) == 1
        assert not invariant[0].field_cells  # dropped wholesale

    def test_nested_loop_saturation_terminates(self):
        source = (
            "class M { static void main() {"
            " int i = 0; int s = 0;"
            " while (i < 3) {"
            "   int j = 0;"
            "   while (j < 3) { s = s + 1; j = j + 1; }"
            "   i = i + 1; } } }"
        )
        program, pta, engine = setup(source)
        outer = [
            s
            for s in walk_statements(program.methods["M.main"].body)
            if isinstance(s, Loop)
        ][0]
        q = Query("M.main")
        d = q.new_data()
        q.set_local("s", d)
        q.add_pure(lt(LinExpr.var(d), LinExpr.constant(100)))
        invariant = saturate(engine, outer, q)
        assert invariant


class TestUnstableVars:
    def test_detects_local_values(self):
        program, pta, engine = setup(COUNTING)
        loop = the_loop(program, "M.main")
        mod = pta.modref.statement_mod(loop.body)
        q = Query("M.main")
        d = q.new_data()
        q.set_local("i", d)
        assert q.find(d) in unstable_vars(q, mod)

    def test_field_values_of_written_fields(self):
        source = (
            "class Box { Object v; } class M { static void main() {"
            " Box b = new Box(); int i = 0;"
            " while (i < 3) { b.v = new Object(); i = i + 1; } } }"
        )
        program, pta, engine = setup(source)
        loop = the_loop(program, "M.main")
        mod = pta.modref.statement_mod(loop.body)
        q = Query("M.main")
        base = q.new_ref(None)
        value = q.new_ref(None)
        q.set_field(base, "v", value)
        unstable = unstable_vars(q, mod)
        assert q.find(value) in unstable
        assert q.find(base) not in unstable  # bases are identities, stable

    def test_untouched_statics_stable(self):
        program, pta, engine = setup(COUNTING)
        loop = the_loop(program, "M.main")
        mod = pta.modref.statement_mod(loop.body)
        q = Query("M.main")
        v = q.new_ref(None)
        q.set_static("M", "whatever", v)
        assert q.find(v) not in unstable_vars(q, mod)
