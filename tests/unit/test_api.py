"""Tests for the ``repro.api`` facade and the normalized client protocol."""

import warnings

import pytest

from repro.api import (
    CLIENTS,
    SCHEMA_VERSION,
    SELECTORS,
    AnalysisRequest,
    AnalysisResult,
    analyze,
    validate_selectors,
)
from repro.clients import (
    POSSIBLY_UNSAFE,
    analyze_casts,
    analyze_encapsulation,
    analyze_immutability,
    analyze_reachability,
)
from repro.engine import RunReport
from repro.ir import compile_program
from repro.pointsto import analyze as pointsto_analyze

CAST_SAFE = (
    "class A { } class B { } class M { static void main() {"
    " int tag = 0;"
    " Object o = new A();"
    " if (tag == 1) { o = new B(); }"
    " A a = (A) o; } }"
)
CAST_UNSAFE = (
    "class A { } class B { } class M { static void main() {"
    " Object o = new B(); A a = (A) o; } }"
)
IMMUTABLE_SRC = (
    "class Point { int x; Point(int x) { this.x = x; } }"
    " class M { static void main() {"
    " Point p = new Point(1);"
    " int debug = 0;"
    " if (debug == 1) { p.x = 9; } } }"
)
MUTATED_SRC = (
    "class Point { int x; Point(int x) { this.x = x; } }"
    " class M { static void main() {"
    " Point p = new Point(1); p.x = 2; } }"
)
LEAKED_REP_SRC = (
    "class Rep { } class Owner { Rep rep;"
    "   Owner() { this.rep = new Rep(); }"
    "   Rep expose() { return this.rep; } }"
    " class M { static Rep stolen; static void main() {"
    " Owner o = new Owner(); M.stolen = o.expose(); } }"
)
REACH_VERIFIED_SRC = (
    "class Secret { } class M { static Object pub;"
    " static void main() {"
    " Object o = new Object();"
    " int k = 0;"
    " if (k == 5) { o = new Secret(); }"
    " M.pub = o; } }"
)


def pta_of(source):
    return pointsto_analyze(compile_program(source))


class TestFacade:
    def test_casts_from_source(self):
        result = analyze(client="casts", source=CAST_SAFE)
        assert isinstance(result, AnalysisResult)
        assert result.client == "casts"
        assert result.verified and result.status == "verified"
        assert result.stats.items == 1 and result.stats.verified_items == 1
        assert isinstance(result.report, RunReport)
        assert result.report.command == "casts"
        assert len(result.report.records) == 1  # one non-trivial cast job

    def test_casts_violated(self):
        result = analyze(client="casts", source=CAST_UNSAFE)
        assert not result.verified
        assert result.status == "violated"
        assert result.stats.violated_items == 1
        assert result.results[0].status == POSSIBLY_UNSAFE

    def test_request_object_and_prebuilt_stages(self):
        # The same analysis from source, program, and pta must agree.
        program = compile_program(CAST_UNSAFE)
        pta = pointsto_analyze(program)
        by_source = analyze(AnalysisRequest(client="casts", source=CAST_UNSAFE))
        by_program = analyze(AnalysisRequest(client="casts", program=program))
        by_pta = analyze(AnalysisRequest(client="casts", pta=pta))
        assert by_source.status == by_program.status == by_pta.status
        assert (
            by_source.stats.to_dict()["items"]
            == by_program.stats.to_dict()["items"]
            == by_pta.stats.to_dict()["items"]
        )

    def test_immutability(self):
        ok = analyze(client="immutability", source=IMMUTABLE_SRC, class_name="Point")
        assert ok.verified
        assert ok.stats.items == 1 and ok.stats.verified_items == 1
        bad = analyze(client="immutability", source=MUTATED_SRC, class_name="Point")
        assert bad.status == "violated"

    def test_encapsulation(self):
        result = analyze(
            client="encapsulation",
            source=LEAKED_REP_SRC,
            owner_class="Owner",
            field_name="rep",
        )
        assert result.status == "violated"
        assert any(str(r.root) == "M.stolen" for r in result.results)

    def test_reachability(self):
        result = analyze(
            client="reachability",
            source=REACH_VERIFIED_SRC,
            root_class="M",
            root_field="pub",
            target_class="Secret",
        )
        assert result.verified
        assert result.stats.items == 1

    def test_reachability_site_flavor(self):
        src = (
            "class Box { Object v; } class M { static Box keep;"
            " static void main() {"
            " Box local = new Box();"
            " Box kept = new Box();"
            " M.keep = kept; } }"
        )
        assert analyze(client="reachability", source=src, site="box0").verified
        leaked = analyze(client="reachability", source=src, site="box1")
        assert leaked.status == "violated"

    def test_budget_and_jobs_knobs(self):
        result = analyze(
            client="casts", source=CAST_UNSAFE, jobs=2, budget=500
        )
        assert result.report.jobs == 2
        assert result.report.path_budget == 500

    def test_context_policy_knob(self):
        from repro.pointsto import ObjectSensitive

        result = analyze(
            client="casts",
            source=CAST_UNSAFE,
            context_policy=ObjectSensitive(2),
        )
        assert result.status == "violated"
        with pytest.raises(ValueError, match="context_policy"):
            analyze(
                client="casts",
                pta=pta_of(CAST_UNSAFE),
                context_policy=ObjectSensitive(2),
            )

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown client"):
            analyze(client="nonsense", source=CAST_SAFE)
        with pytest.raises(ValueError, match="source=, program=, or pta="):
            analyze(client="casts")
        with pytest.raises(ValueError, match="class_name"):
            analyze(client="immutability", source=IMMUTABLE_SRC)
        with pytest.raises(ValueError, match="owner_class"):
            analyze(client="encapsulation", source=LEAKED_REP_SRC)
        with pytest.raises(ValueError, match="root_class"):
            analyze(client="reachability", source=REACH_VERIFIED_SRC)
        with pytest.raises(TypeError, match="not both"):
            analyze(AnalysisRequest(client="casts", source=CAST_SAFE), jobs=2)

    def test_clients_constant_covers_all_four(self):
        assert set(CLIENTS) == {
            "reachability", "casts", "immutability", "encapsulation",
        }

    def test_top_level_reexports(self):
        import repro

        assert repro.AnalysisRequest is AnalysisRequest
        assert repro.api.analyze is analyze
        # The historical export is untouched: repro.analyze is points-to.
        assert repro.analyze is pointsto_analyze


#: One wire-legal request per client, used by the round-trip tests.
WIRE_REQUESTS = {
    "casts": AnalysisRequest(client="casts", source=CAST_SAFE),
    "immutability": AnalysisRequest(
        client="immutability", source=IMMUTABLE_SRC, class_name="Point"
    ),
    "encapsulation": AnalysisRequest(
        client="encapsulation",
        source=LEAKED_REP_SRC,
        owner_class="Owner",
        field_name="rep",
    ),
    "reachability": AnalysisRequest(
        client="reachability",
        source=REACH_VERIFIED_SRC,
        root_class="M",
        root_field="pub",
        target_class="Secret",
        jobs=2,
        budget=5_000,
    ),
}


class TestWireSchema:
    """`AnalysisRequest.to_dict()`/`from_dict()` — the serve daemon's v1
    request schema — and `AnalysisResult.to_dict()`."""

    @pytest.mark.parametrize("client", sorted(WIRE_REQUESTS))
    def test_round_trip_all_four_clients(self, client):
        import json

        request = WIRE_REQUESTS[client]
        wire = request.to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        # Everything on the wire is JSON-serializable as-is.
        rebuilt = AnalysisRequest.from_dict(json.loads(json.dumps(wire)))
        assert rebuilt == request
        # And idempotent: a second trip is byte-identical.
        assert rebuilt.to_dict() == wire

    def test_round_tripped_request_analyzes_identically(self):
        request = WIRE_REQUESTS["casts"]
        direct = analyze(request)
        rebuilt = analyze(AnalysisRequest.from_dict(request.to_dict()))
        assert direct.status == rebuilt.status
        stats_a, stats_b = direct.stats.to_dict(), rebuilt.stats.to_dict()
        stats_a.pop("seconds"), stats_b.pop("seconds")
        assert stats_a == stats_b

    def test_local_only_fields_refuse_to_serialize(self):
        program = compile_program(CAST_SAFE)
        with pytest.raises(ValueError, match="program=.*cannot cross the wire"):
            AnalysisRequest(client="casts", program=program).to_dict()
        with pytest.raises(ValueError, match="pta=.*cannot cross the wire"):
            AnalysisRequest(client="casts", pta=pta_of(CAST_SAFE)).to_dict()
        with pytest.raises(ValueError, match="on_event="):
            AnalysisRequest(
                client="casts", source=CAST_SAFE, on_event=lambda e: None
            ).to_dict()

    def test_from_dict_rejects_unknown_fields_helpfully(self):
        with pytest.raises(
            ValueError, match=r"unknown AnalysisRequest field\(s\) sauce"
        ) as err:
            AnalysisRequest.from_dict(
                {"client": "casts", "sauce": CAST_SAFE}
            )
        # The error teaches the accepted schema.
        assert "source" in str(err.value) and "budget" in str(err.value)

    def test_from_dict_rejects_wrong_schema_version(self):
        with pytest.raises(ValueError, match="unsupported schema_version 99"):
            AnalysisRequest.from_dict(
                {"client": "casts", "source": CAST_SAFE, "schema_version": 99}
            )

    def test_from_dict_requires_client(self):
        with pytest.raises(ValueError, match="needs client="):
            AnalysisRequest.from_dict({"source": CAST_SAFE})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ValueError, match="needs a dict, got list"):
            AnalysisRequest.from_dict(["casts"])

    def test_result_to_dict_shape(self):
        result = analyze(WIRE_REQUESTS["reachability"])
        wire = result.to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["client"] == "reachability"
        assert wire["verified"] is True and wire["status"] == "verified"
        assert wire["stats"] == result.stats.to_dict()
        assert isinstance(wire["results"], list) and wire["results"]
        assert all("description" in r for r in wire["results"])
        assert wire["report"]["command"] == "reachability"


class TestSelectorValidation:
    """The per-client selector table: misapplied selectors raise before
    any pipeline work instead of being silently ignored."""

    def test_table_covers_all_clients(self):
        assert set(SELECTORS) == set(CLIENTS)

    def test_casts_takes_no_selectors(self):
        with pytest.raises(
            ValueError, match="class_name=.*'casts'.*takes no selectors"
        ):
            analyze(client="casts", source=CAST_SAFE, class_name="A")

    def test_immutability_rejects_reachability_selectors(self):
        with pytest.raises(
            ValueError, match="root_class=.*'immutability'.*accepts class_name="
        ):
            analyze(
                client="immutability",
                source=IMMUTABLE_SRC,
                class_name="Point",
                root_class="M",
            )

    def test_encapsulation_missing_fields_spelled_out(self):
        with pytest.raises(ValueError, match="needs field_name="):
            analyze(
                client="encapsulation",
                source=LEAKED_REP_SRC,
                owner_class="Owner",
            )

    def test_reachability_site_and_triple_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            analyze(
                client="reachability",
                source=REACH_VERIFIED_SRC,
                site="secret0",
                root_class="M",
                root_field="pub",
                target_class="Secret",
            )

    def test_reachability_partial_triple(self):
        with pytest.raises(
            ValueError, match="site= or all of root_class=, root_field="
        ):
            analyze(
                client="reachability",
                source=REACH_VERIFIED_SRC,
                root_class="M",
            )

    def test_validate_selectors_is_pure_precheck(self):
        # Validation never needs the program: a bogus selector fails even
        # with no program input at all.
        with pytest.raises(ValueError, match="do not apply"):
            validate_selectors(AnalysisRequest(client="casts", site="x"))

    def test_over_specified_program_input(self):
        program = compile_program(CAST_SAFE)
        with pytest.raises(
            ValueError, match="exactly one of source=, program=, or pta=; got"
        ):
            analyze(
                AnalysisRequest(
                    client="casts", source=CAST_SAFE, program=program
                )
            )


class TestParityWithLegacyEntryPoints:
    """The normalized entry points wrap — not reimplement — the originals."""

    def test_casts_parity(self):
        pta = pta_of(CAST_UNSAFE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.clients import check_casts

            legacy = check_casts(pta)
        modern = analyze_casts(pta)
        assert [(r.label, r.status) for r in legacy] == [
            (r.label, r.status) for r in modern.results
        ]

    def test_immutability_parity(self):
        pta = pta_of(MUTATED_SRC)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.clients import check_immutable

            legacy = check_immutable(pta, "Point")
        modern = analyze_immutability(pta, "Point")
        assert modern.verified == legacy.verified
        assert [(s.label, s.status) for s in legacy.sites] == [
            (s.label, s.status) for s in modern.results
        ]

    def test_encapsulation_parity(self):
        pta = pta_of(LEAKED_REP_SRC)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.clients import check_encapsulation, encapsulated

            legacy = check_encapsulation(pta, "Owner", "rep")
            legacy_ok = encapsulated(legacy)
        modern = analyze_encapsulation(pta, "Owner", "rep")
        assert modern.verified == legacy_ok
        assert [(str(r.root), r.status) for r in legacy] == [
            (str(r.root), r.status) for r in modern.results
        ]

    def test_reachability_parity(self):
        pta = pta_of(REACH_VERIFIED_SRC)
        from repro.clients import assert_unreachable, verified

        legacy = assert_unreachable(pta, "M", "pub", "Secret")
        modern = analyze_reachability(pta, "M", "pub", "Secret")
        assert modern.verified == verified(legacy)
        assert [r.status for r in legacy] == [r.status for r in modern.results]


class TestDeprecationShims:
    def test_every_legacy_entry_point_warns(self):
        from repro import clients

        pta = pta_of(CAST_SAFE)
        with pytest.warns(DeprecationWarning, match="check_casts"):
            reports = clients.check_casts(pta)
        with pytest.warns(DeprecationWarning, match="unsafe_casts"):
            clients.unsafe_casts(reports)
        pta_i = pta_of(IMMUTABLE_SRC)
        with pytest.warns(DeprecationWarning, match="check_immutable"):
            clients.check_immutable(pta_i, "Point")
        pta_e = pta_of(LEAKED_REP_SRC)
        with pytest.warns(DeprecationWarning, match="check_encapsulation"):
            results = clients.check_encapsulation(pta_e, "Owner", "rep")
        with pytest.warns(DeprecationWarning, match="encapsulated"):
            clients.encapsulated(results)

    def test_refute_reachability_shim_warns_and_works(self):
        from repro.clients import refute_reachability
        from repro.pointsto import StaticFieldNode, find_heap_path
        from repro.symbolic import Engine

        pta = pta_of(REACH_VERIFIED_SRC)
        root = StaticFieldNode("M", "pub")
        target = next(
            loc
            for loc in pta.graph.all_abs_locs()
            if loc.class_name == "Secret"
        )
        assert find_heap_path(pta.graph, root, target) is not None
        with pytest.warns(DeprecationWarning, match="refute_reachability"):
            result = refute_reachability(pta, Engine(pta), root, target)
        assert result.status == "holds"

    def test_normalized_entry_points_do_not_warn(self):
        pta = pta_of(CAST_SAFE)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            analyze_casts(pta)
            analyze(client="casts", pta=pta)
