"""Tests for the hierarchical span tracer (:mod:`repro.obs.trace`)."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _restore_disabled():
    """Every test leaves the process-wide tracer back at the no-op default."""
    yield
    trace.disable()


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert trace.get_tracer() is None

    def test_noop_span_is_shared_and_inert(self):
        a = trace.span("anything", key="value")
        b = trace.span("else")
        assert a is b  # one shared object: no allocation on the hot path
        with a as sp:
            sp.set(status="ignored")  # must not raise

    def test_install_disable_round_trip(self):
        tracer = trace.install()
        assert trace.enabled()
        assert trace.get_tracer() is tracer
        trace.disable()
        assert not trace.enabled()


class TestSpanRecording:
    def test_span_records_name_attrs_duration(self):
        tracer = trace.install()
        with trace.span("phase.one", edge="a->b") as sp:
            sp.set(status="refuted")
        (record,) = tracer.spans()
        assert record.name == "phase.one"
        assert record.attrs == {"edge": "a->b", "status": "refuted"}
        assert record.duration >= 0.0
        assert record.parent_id is None

    def test_nesting_sets_parent_ids(self):
        tracer = trace.install()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("inner2"):
                pass
        by_name = {r.name: r for r in tracer.spans()}
        outer = by_name["outer"]
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["inner2"].parent_id == outer.span_id
        assert outer.parent_id is None
        # Children close before the parent, so they are recorded first.
        assert [r.name for r in tracer.spans()] == ["inner", "inner2", "outer"]

    def test_threads_get_separate_lanes(self):
        tracer = trace.install()

        def worker():
            with trace.span("worker.span"):
                pass

        with trace.span("main.span"):
            t = threading.Thread(target=worker, name="lane-test")
            t.start()
            t.join()
        by_name = {r.name: r for r in tracer.spans()}
        # The worker's span must NOT nest under main's open span...
        assert by_name["worker.span"].parent_id is None
        # ...and it sits on its own thread lane.
        assert by_name["worker.span"].thread_id != by_name["main.span"].thread_id
        assert by_name["worker.span"].thread_name == "lane-test"

    def test_max_spans_cap_counts_drops(self):
        tracer = trace.install(Tracer(max_spans=3))
        for i in range(5):
            with trace.span(f"s{i}"):
                pass
        assert len(tracer.spans()) == 3
        assert tracer.dropped_spans == 2

    def test_sinks_observe_every_span(self):
        tracer = trace.install()
        seen = []
        tracer.add_sink(seen.append)
        with trace.span("a"):
            pass
        tracer.remove_sink(seen.append)
        with trace.span("b"):
            pass
        assert [r.name for r in seen] == ["a"]

    def test_phase_totals(self):
        tracer = trace.install()
        for _ in range(3):
            with trace.span("x"):
                pass
        totals = tracer.phase_totals()
        assert set(totals) == {"x"}
        assert totals["x"] >= 0.0


class TestChromeExport:
    def _spans(self, payload):
        return [e for e in payload["traceEvents"] if e["ph"] == "X"]

    def test_export_shape(self):
        tracer = trace.install()
        with trace.span("outer", kind="test"):
            with trace.span("inner"):
                pass
        payload = tracer.to_chrome_trace()
        events = payload["traceEvents"]
        # Metadata names the process and each thread lane.
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        assert any(e["name"] == "thread_name" for e in metas)
        spans = self._spans(payload)
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for e in spans:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds
        inner = next(e for e in spans if e["name"] == "inner")
        outer = next(e for e in spans if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["kind"] == "test"
        assert outer["cat"] == "outer"  # category = name prefix

    def test_export_timestamps_nest(self):
        tracer = trace.install()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        spans = self._spans(tracer.to_chrome_trace())
        inner = next(e for e in spans if e["name"] == "inner")
        outer = next(e for e in spans if e["name"] == "outer")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = trace.install()
        with trace.span("a", n=1):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["dropped_spans"] == 0
        assert self._spans(payload)[0]["name"] == "a"


class TestPipelineIntegration:
    """The acceptance shape: driver.job -> executor.search -> solver spans."""

    def test_refutation_run_produces_nested_pipeline_spans(self):
        from repro.api import analyze
        from repro.perf.memo import SOLVER_MEMO

        # The canonical-signature component memo is process-wide and its
        # keys recur across tests (unlike fresh-symvar whole-query keys):
        # a warmed table would answer every query without a real decision,
        # and this test asserts the *decision* spans exist.
        SOLVER_MEMO.clear()
        tracer = trace.install()
        result = analyze(
            client="casts",
            source=(
                "class A { } class B { } class M { static void main() {"
                " int tag = 0;"
                " Object o = new A();"
                " if (tag == 1) { o = new B(); }"
                " A a = (A) o; } }"
            ),
        )
        assert result.verified
        by_id = {r.span_id: r for r in tracer.spans()}
        names = {r.name for r in by_id.values()}
        assert {"driver.batch", "driver.job", "executor.search",
                "solver.check_sat", "pointsto.solve"} <= names

        def ancestors(record):
            chain = []
            while record.parent_id is not None:
                record = by_id[record.parent_id]
                chain.append(record.name)
            return chain

        searches = [r for r in by_id.values() if r.name == "executor.search"]
        assert searches
        for search in searches:
            assert ancestors(search)[0] == "driver.job"
        checks = [r for r in by_id.values() if r.name == "solver.check_sat"]
        assert checks
        for check in checks:
            assert "executor.search" in ancestors(check)
