"""Unit tests for the serve daemon's building blocks: the wire protocol,
edit diffing/grafting (:mod:`repro.serve.invalidation`), the staleness
rules, and the per-class source splicer."""

import json

import pytest

from repro.ir import compile_program
from repro.ir import instructions as ins
from repro.ir.stmts import walk_commands
from repro.pointsto import analyze as pointsto_analyze
from repro.pointsto.incremental import DeltaReport
from repro.pointsto.modref import RefSet
from repro.serve.invalidation import (
    body_fingerprint,
    fact_multiset,
    graft_method,
    is_additive,
    method_fingerprints,
    program_signature,
    stable_edge_token,
    stable_site_tokens,
    verdict_is_stale,
)
from repro.serve.protocol import (
    OPS,
    SCHEMA_VERSION,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.session import split_classes, splice_classes

BASE_SRC = """
class Item { }
class Registry { static Item hold; }
class A {
    int pad;
    Item make() { Item o = new Item(); return o; }
    void go() { this.pad = this.pad + 1; Item o = this.make(); }
}
class M { static void main() { A a = new A(); a.go(); } }
"""


# ---------------------------------------------------------------------------
# Protocol envelopes
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_parse_round_trip(self):
        request = parse_request(
            json.dumps(
                {
                    "id": 7,
                    "op": "analyze",
                    "params": {"client": "casts"},
                    "schema_version": SCHEMA_VERSION,
                }
            )
        )
        assert request.op == "analyze"
        assert request.id == 7
        assert request.params == {"client": "casts"}

    def test_schema_version_defaults_and_rejects(self):
        assert parse_request('{"op": "status"}').op == "status"
        with pytest.raises(ProtocolError, match="schema_version 2"):
            parse_request('{"op": "status", "schema_version": 2}')

    def test_bad_json_and_bad_shapes(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request("{nope")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request('["analyze"]')
        with pytest.raises(ProtocolError, match="params must be a JSON object"):
            parse_request('{"op": "analyze", "params": ["casts"]}')

    def test_unknown_op_and_envelope_fields(self):
        with pytest.raises(ProtocolError, match="unknown op 'frobnicate'"):
            parse_request('{"op": "frobnicate"}')
        with pytest.raises(ProtocolError, match="unknown request field"):
            parse_request('{"op": "status", "payload": {}}')
        # The op error names every accepted op.
        with pytest.raises(ProtocolError, match=", ".join(OPS)):
            parse_request('{"op": "nope"}')

    def test_response_shapes(self):
        ok = ok_response(3, {"x": 1}, {"seconds": 0.1})
        assert ok["ok"] and ok["id"] == 3
        assert ok["schema_version"] == SCHEMA_VERSION
        err = error_response(3, ValueError("boom"))
        assert not err["ok"]
        assert err["error"] == {"type": "ValueError", "message": "boom"}
        # Envelopes encode deterministically (sorted keys).
        assert encode(ok) == json.dumps(ok, sort_keys=True)


# ---------------------------------------------------------------------------
# Edit diffing: fingerprints, signatures, additivity
# ---------------------------------------------------------------------------


class TestDiffing:
    def test_fingerprints_ignore_sites_and_positions(self):
        # Two builds of the same source disagree on AllocSite ids and
        # SourcePositions; fingerprints and signature must not.
        a = compile_program(BASE_SRC)
        b = compile_program("\n\n" + BASE_SRC)  # every position shifted
        assert method_fingerprints(a) == method_fingerprints(b)
        assert program_signature(a) == program_signature(b)

    def test_fingerprint_sees_body_edits(self):
        a = compile_program(BASE_SRC)
        b = compile_program(BASE_SRC.replace("this.pad + 1", "this.pad + 2"))
        prints_a, prints_b = method_fingerprints(a), method_fingerprints(b)
        changed = [q for q in prints_a if prints_a[q] != prints_b.get(q)]
        assert changed == ["A.go"]
        assert program_signature(a) == program_signature(b)

    def test_signature_sees_declaration_edits(self):
        a = compile_program(BASE_SRC)
        b = compile_program(BASE_SRC.replace("int pad;", "int pad; int extra;"))
        assert program_signature(a) != program_signature(b)

    def test_statement_insertion_is_additive(self):
        a = compile_program(BASE_SRC)
        b = compile_program(
            BASE_SRC.replace(
                "this.pad = this.pad + 1;",
                "this.pad = this.pad + 1; this.pad = this.pad + 1;",
            )
        )
        assert is_additive(a.methods["A.go"], b.methods["A.go"])

    def test_additivity_survives_temp_renumbering(self):
        # Inserting a call renumbers every later builder temp ($tN); the
        # fact multiset must still see the old commands as preserved.
        a = compile_program(BASE_SRC)
        b = compile_program(
            BASE_SRC.replace(
                "void go() {", "void go() { Item extra = this.make();"
            )
        )
        old, new = a.methods["A.go"], b.methods["A.go"]
        assert is_additive(old, new)
        # ...and the erasure really was load-bearing: raw strings differ.
        assert {str(c) for c in walk_commands(old.body)} - {
            str(c) for c in walk_commands(new.body)
        }

    def test_deletion_is_not_additive(self):
        a = compile_program(BASE_SRC)
        b = compile_program(
            BASE_SRC.replace("this.pad = this.pad + 1; ", "")
        )
        assert not is_additive(a.methods["A.go"], b.methods["A.go"])
        # Multiset, not set: dropping one of two identical stores is a
        # deletion too.
        c = compile_program(
            BASE_SRC.replace(
                "this.pad = this.pad + 1;",
                "this.pad = this.pad + 1; this.pad = this.pad + 1;",
            )
        )
        assert not is_additive(c.methods["A.go"], a.methods["A.go"])
        assert sum(fact_multiset(c.methods["A.go"]).values()) > sum(
            fact_multiset(a.methods["A.go"]).values()
        )

    def test_body_fingerprint_sees_structure(self):
        a = compile_program(BASE_SRC)
        b = compile_program(
            BASE_SRC.replace(
                "this.pad = this.pad + 1;",
                "if (nondet()) { this.pad = this.pad + 1; }",
            )
        )
        assert body_fingerprint(a.methods["A.go"]) != body_fingerprint(
            b.methods["A.go"]
        )


# ---------------------------------------------------------------------------
# Grafting
# ---------------------------------------------------------------------------


class TestGrafting:
    def test_graft_preserves_matched_sites_and_other_labels(self):
        program = compile_program(BASE_SRC)
        old_make_sites = [
            cmd.site
            for cmd in walk_commands(program.methods["A.make"].body)
            if isinstance(cmd, ins.New)
        ]
        go_labels_before = {
            label
            for label in program.commands
            if program.method_of_label(label).qualified_name == "A.go"
        }
        edited = compile_program(
            BASE_SRC.replace(
                "Item o = new Item(); return o;",
                "Item o = new Item(); this.pad = 0; return o;",
            )
        )
        graft_method(program, edited.methods["A.make"])
        new_make_sites = [
            cmd.site
            for cmd in walk_commands(program.methods["A.make"].body)
            if isinstance(cmd, ins.New)
        ]
        # The matched allocation keeps the *old* site object identity.
        assert new_make_sites == old_make_sites
        assert new_make_sites[0] is old_make_sites[0]
        # Untouched methods keep their labels.
        assert go_labels_before
        assert go_labels_before <= set(program.commands)
        for label in go_labels_before:
            assert program.method_of_label(label).qualified_name == "A.go"

    def test_graft_mints_fresh_sites_for_new_allocations(self):
        program = compile_program(BASE_SRC)
        max_id_before = max(s.site_id for s in program.alloc_sites)
        n_sites_before = len(program.alloc_sites)
        edited = compile_program(
            BASE_SRC.replace(
                "Item o = this.make();",
                "Item o = this.make(); Item p = new Item();",
            )
        )
        graft_method(program, edited.methods["A.go"])
        fresh = [s for s in program.alloc_sites if s.site_id > max_id_before]
        assert len(fresh) == 1 and fresh[0].class_name == "Item"
        assert len(program.alloc_sites) == n_sites_before + 1

    def test_grafted_program_matches_cold_build_tokens(self):
        # After grafting, stable site tokens equal a cold build of the
        # edited source — the property the byte-identical payload needs.
        program = compile_program(BASE_SRC)
        edited_src = BASE_SRC.replace(
            "Item o = this.make();",
            "Item o = this.make(); Item p = new Item();",
        )
        graft_method(
            program, compile_program(edited_src).methods["A.go"]
        )
        grafted_tokens = sorted(stable_site_tokens(program).values())
        cold_tokens = sorted(
            stable_site_tokens(compile_program(edited_src)).values()
        )
        assert grafted_tokens == cold_tokens


# ---------------------------------------------------------------------------
# Stable descriptors
# ---------------------------------------------------------------------------


class TestStableTokens:
    def test_tokens_are_build_independent(self):
        a = compile_program(BASE_SRC)
        b = compile_program("\n\n" + BASE_SRC)
        assert sorted(stable_site_tokens(a).values()) == sorted(
            stable_site_tokens(b).values()
        )

    def test_edge_token_renders_through_tokens(self):
        # BASE_SRC never stores into Registry.hold; add the store so the
        # producer map has a static edge to render.
        src = BASE_SRC.replace(
            "Item o = this.make();", "Item o = this.make(); Registry.hold = o;"
        )
        pta = pointsto_analyze(compile_program(src))
        tokens = stable_site_tokens(pta.program)
        keys = list(pta.producers)
        assert keys
        rendered = {stable_edge_token(k, tokens) for k in keys}
        static_keys = [k for k in keys if k[0] == "static"]
        assert static_keys, "Registry.hold edge expected"
        assert any(r.startswith("Registry.hold -> ") for r in rendered)
        # No builder-assigned site ids leak into the tokens.
        assert all("#" in r for r in rendered)


# ---------------------------------------------------------------------------
# Staleness rules (pure-function truth table)
# ---------------------------------------------------------------------------


def _delta(methods=(), fields=(), statics=(), points=1):
    return DeltaReport(
        changed_methods=frozenset(),
        grown_methods=frozenset(methods),
        grown_fields=frozenset(fields),
        grown_statics=frozenset(statics),
        new_points=points,
    )


class _FakeModref:
    def __init__(self, refs):
        self._refs = refs

    def footprint_refs(self, qnames):
        return self._refs


class TestStaleness:
    FP = frozenset({"A.go", "A.make"})
    SIGS = {"A.go": ("sig",), "A.make": ("sig",)}

    def _stale(self, **kw):
        return verdict_is_stale(
            kw.get("footprint", self.FP),
            kw.get("changed", frozenset({"M.main"})),
            kw.get("sigs_before", self.SIGS),
            kw.get("sigs_after", self.SIGS),
            _FakeModref(kw.get("refs", RefSet())),
            kw.get("delta", _delta(points=0)),
        )

    def test_no_footprint_means_stale(self):
        assert self._stale(footprint=None)

    def test_untouched_verdict_survives(self):
        assert not self._stale()

    def test_changed_method_in_footprint(self):
        assert self._stale(changed=frozenset({"A.make"}))

    def test_summary_signature_change(self):
        assert self._stale(sigs_after={**self.SIGS, "A.make": ("other",)})

    def test_points_to_growth_in_footprint_method(self):
        assert self._stale(delta=_delta(methods={"A.go"}))

    def test_growth_in_read_field(self):
        refs = RefSet(fields={"hold"})
        assert self._stale(delta=_delta(fields={"hold"}), refs=refs)
        assert not self._stale(delta=_delta(fields={"other"}), refs=refs)

    def test_growth_in_read_static(self):
        refs = RefSet(statics={("Registry", "hold")})
        assert self._stale(
            delta=_delta(statics={("Registry", "hold")}), refs=refs
        )

    def test_unknown_reads_force_staleness_only_on_growth(self):
        refs = RefSet(reads_unknown=True)
        assert self._stale(delta=_delta(points=3), refs=refs)
        assert not self._stale(delta=_delta(points=0), refs=refs)


# ---------------------------------------------------------------------------
# Per-class splicing
# ---------------------------------------------------------------------------


class TestSplicing:
    def test_split_finds_every_class(self):
        classes = split_classes(BASE_SRC)
        assert set(classes) == {"Item", "Registry", "A", "M"}
        assert classes["A"].startswith("class A {")
        assert classes["A"].rstrip().endswith("}")

    def test_splice_replaces_only_named_class(self):
        replacement = split_classes(BASE_SRC)["A"].replace(
            "this.pad + 1", "this.pad + 2"
        )
        spliced = splice_classes(BASE_SRC, {"A": replacement})
        assert "this.pad + 2" in spliced
        assert spliced.count("class A {") == 1
        # Everything else untouched.
        assert split_classes(spliced)["M"] == split_classes(BASE_SRC)["M"]
        # And the spliced source still compiles.
        compile_program(spliced)

    def test_splice_unknown_class_raises(self):
        with pytest.raises(ValueError, match="Nope.*full source= update"):
            splice_classes(BASE_SRC, {"Nope": "class Nope { }"})
