"""Edge cases of state subsumption: equality elimination, empty constraint
sets, mod/ref-dropped facts, and the worklist batch pruner.

These pin the soundness-critical corners of the repro.perf layer: queries
that *look* different after equality elimination must still compare, the
empty query must behave as bottom-strength "true", and facts the executor
dropped via mod/ref reasoning must make a state strictly weaker (so the
retaining state is prunable against it, never the reverse).
"""

from repro.ir import compile_program
from repro.ir.instructions import AllocSite
from repro.perf.cache import RefutedStateCache
from repro.pointsto import analyze
from repro.pointsto.graph import AbsLoc
from repro.solver import LinExpr, eq, le
from repro.symbolic import Engine, Query, SearchConfig
from repro.symbolic.executor import PathState, StmtTask
from repro.symbolic.simplification import QueryHistory, query_entails


def loc(name):
    return AbsLoc(AllocSite(hash(name) % 99_991, "Object", "M.m", hint=name))


A, B, C = loc("a0"), loc("b0"), loc("c0")


class TestEqualityElimination:
    """unify() collapses variables into one union-find class; entailment
    must see through the elimination on either side."""

    def test_unified_pair_entails_single_var(self):
        # strong: x ↦ v, y ↦ w with v = w (unified).  weak: x ↦ u, y ↦ u.
        strong = Query("M.m")
        v = strong.new_ref(frozenset({A, B}))
        w = strong.new_ref(frozenset({A, B}))
        strong.set_local("x", v)
        strong.set_local("y", w)
        assert strong.unify(v, w)

        weak = Query("M.m")
        u = weak.new_ref(frozenset({A, B}))
        weak.set_local("x", u)
        weak.set_local("y", u)
        assert query_entails(strong, weak)
        assert query_entails(weak, strong)

    def test_unification_intersects_regions_making_state_stronger(self):
        def build(unified):
            q = Query("M.m")
            v = q.new_ref(frozenset({A, B}))
            w = q.new_ref(frozenset({B, C}))
            q.set_local("x", v)
            q.set_local("y", w)
            if unified:
                assert q.unify(v, w)  # region becomes {B}
            return q

        assert query_entails(build(unified=True), build(unified=False))
        assert not query_entails(build(unified=False), build(unified=True))

    def test_separate_vars_do_not_entail_unified(self):
        # weak demands x and y be the *same* instance; keeping them apart
        # is not stronger — the match must fail (injectivity).
        strong = Query("M.m")
        strong.set_local("x", strong.new_ref(frozenset({A})))
        strong.set_local("y", strong.new_ref(frozenset({A})))

        weak = Query("M.m")
        u = weak.new_ref(frozenset({A}))
        weak.set_local("x", u)
        weak.set_local("y", u)
        assert not query_entails(strong, weak)

    def test_pure_atoms_survive_variable_elimination(self):
        # Pure-only vars are matched by identity, so the comparison is
        # between a query and its fork (the shape the executor produces).
        q = Query("M.m")
        d1, d2 = q.new_data(), q.new_data()
        q.add_pure(eq(LinExpr.var(d1), LinExpr.var(d2)))
        q.add_pure(le(LinExpr.var(d1), LinExpr.constant(5)))
        fork = q.copy()
        assert query_entails(fork, q)
        assert query_entails(q, fork)


class TestEmptyConstraintSets:
    def test_empty_query_is_weakest(self):
        empty = Query("M.m")
        constrained = Query("M.m")
        constrained.set_local("x", constrained.new_ref(frozenset({A})))
        # Anything entails the empty query; the empty query entails
        # nothing but itself.
        assert query_entails(constrained, empty)
        assert query_entails(empty, empty.copy())
        assert not query_entails(empty, constrained)

    def test_failed_query_is_strongest(self):
        failed = Query("M.m")
        failed.fail("test")
        other = Query("M.m")
        other.set_local("x", other.new_ref(frozenset({A})))
        assert query_entails(failed, other)
        assert not query_entails(other, failed)

    def test_cached_empty_query_subsumes_everything_at_point(self):
        # A refuted *empty* query means the point itself is dead: every
        # later state there must hit the cache.
        cache = RefutedStateCache()
        empty = Query("M.m")
        key = (("loop", 7), empty.stack_signature())
        cache.add_many([(key, empty)])
        strong = Query("M.m")
        strong.set_local("x", strong.new_ref(frozenset({A, B})))
        assert cache.subsumes(key, strong)
        assert cache.subsumes(key, Query("M.m"))

    def test_history_drops_empty_after_empty(self):
        history = QueryHistory()
        assert not history.should_drop(("entry", "m"), Query("M.m"))
        assert history.should_drop(("entry", "m"), Query("M.m"))


class TestDroppedModRefFacts:
    """The executor drops facts a skipped callee cannot touch (mod/ref).
    A state that dropped a fact is weaker than one that kept it; pruning
    may only discard the keeper."""

    def test_state_with_dropped_local_is_weaker(self):
        kept = Query("M.m")
        v = kept.new_ref(frozenset({A}))
        kept.set_local("x", v)
        kept.set_local("tmp", kept.new_ref(frozenset({B})))

        dropped = kept.copy()
        dropped.del_local("tmp")  # what a mod/ref skip does

        assert query_entails(kept, dropped)
        assert not query_entails(dropped, kept)

    def test_state_with_dropped_field_cell_is_weaker(self):
        kept = Query("M.m")
        base = kept.new_ref(frozenset({A}))
        kept.set_local("x", base)
        kept.set_field(base, "f", kept.new_ref(frozenset({B})))

        dropped = kept.copy()
        dropped.del_field(next(iter(dropped.locals.values())), "f")

        assert query_entails(kept, dropped)
        assert not query_entails(dropped, kept)

    def test_history_drops_keeper_against_recorded_dropper(self):
        history = QueryHistory()
        weak = Query("M.m")
        weak.set_local("x", weak.new_ref(frozenset({A})))
        kept = weak.copy()
        kept.set_static("M", "s", kept.new_ref(frozenset({B})))
        assert not history.should_drop(("loop", 3), weak)
        assert history.should_drop(("loop", 3), kept)


SOURCE = (
    "class M { static void main() {"
    " int a = 1;"
    " if (a < 2) { int b = 2; }"
    " int c = 3; } }"
)


class TestWorklistPruner:
    def _engine(self, **cfg):
        program = compile_program(SOURCE)
        return Engine(analyze(program), SearchConfig(**cfg))

    def _state(self, k, region):
        q = Query("M.main")
        q.set_local("x", q.new_ref(frozenset(region)))
        return PathState(k, q)

    def test_identical_continuation_stronger_sibling_pruned(self):
        engine = self._engine()
        k = (StmtTask(None), ())
        weak = self._state(k, {A, B})
        strong = self._state(k, {A})
        kept = engine._prune_batch([strong, weak])
        assert kept == [weak]

    def test_pruning_keeps_later_sibling_on_mutual_entailment(self):
        # Equal queries entail each other; exactly one must survive, and it
        # is the one popped first (later in the list) — witness stability.
        engine = self._engine()
        k = (StmtTask(None), ())
        s1, s2 = self._state(k, {A}), self._state(k, {A})
        kept = engine._prune_batch([s1, s2])
        assert kept == [s2]

    def test_different_continuations_never_pruned(self):
        engine = self._engine()
        k1, k2 = (StmtTask(None), ()), (StmtTask(None), ())
        states = [self._state(k1, {A}), self._state(k2, {A, B})]
        assert engine._prune_batch(states) == states

    def test_disabled_subsumption_prunes_nothing(self):
        engine = self._engine(state_subsumption=False)
        k = (StmtTask(None), ())
        states = [self._state(k, {A}), self._state(k, {A, B})]
        assert engine._prune_batch(states) == states

    def test_singleton_batch_untouched(self):
        engine = self._engine()
        states = [self._state((StmtTask(None), ()), {A})]
        assert engine._prune_batch(states) == states


class TestFlushDiscipline:
    """Pending states reach the shared cache only after a REFUTED search."""

    def test_refuted_search_populates_shared_cache(self):
        source = (
            "class Box { Object v; }"
            "class M { static Box s; static void main() {"
            " Box b = new Box();"
            " int i = 0;"
            " while (i < 3) { Box t = new Box(); t.v = new Object(); i = i + 1; }"
            " M.s = b; } }"
        )
        program = compile_program(source)
        pta = analyze(program)
        cache = RefutedStateCache()
        engine = Engine(pta, SearchConfig(), refuted_cache=cache)
        refuted = [
            e
            for e in list(pta.graph.heap_edges()) + list(pta.graph.static_edges())
            if engine.refute_edge(e).status == "refuted"
        ]
        if refuted:  # flushed states are only guaranteed given a refutation
            assert cache.stats()["states"] >= 0
        # Either way nothing pending leaks across searches.
        assert engine._history.pending == []
