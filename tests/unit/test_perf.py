"""Unit tests for the repro.perf memoization & subsumption layer."""

import pickle

import pytest

from repro import perf
from repro.ir.instructions import AllocSite
from repro.obs import metrics
from repro.perf.cache import RefutedStateCache
from repro.perf.memo import SOLVER_MEMO, LRUCache, SolverMemo
from repro.pointsto.graph import AbsLoc
from repro.solver import LinExpr, SolverStats, check_sat, eq, le
from repro.symbolic import Query


def loc(name):
    return AbsLoc(AllocSite(hash(name) % 99_991, "Object", "M.m", hint=name))


A, B = loc("a0"), loc("b0")


def query_with_region(region):
    q = Query("M.m")
    v = q.new_ref(region)
    q.set_local("x", v)
    return q


@pytest.fixture(autouse=True)
def fresh_memo():
    SOLVER_MEMO.clear()
    enabled = SOLVER_MEMO.enabled
    SOLVER_MEMO.set_enabled(True)
    yield
    SOLVER_MEMO.clear()
    SOLVER_MEMO.set_enabled(enabled)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "d") == "d"

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite; b becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_len_and_clear(self):
        cache = LRUCache(8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_capacity_bound_holds(self):
        cache = LRUCache(3)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSolverMemo:
    def test_check_sat_memoizes_verdict(self):
        d = LinExpr.var("d")
        atoms = [le(d, LinExpr.constant(3)), le(LinExpr.constant(1), d)]
        stats = SolverStats()
        assert check_sat(atoms, stats=stats)
        assert check_sat(list(reversed(atoms)), stats=stats)  # order-insensitive key
        assert stats.checks == 2
        assert stats.memo_misses == 1
        assert stats.memo_hits == 1

    def test_unsat_verdict_memoized_and_counted(self):
        d = LinExpr.var("d")
        atoms = [le(d, LinExpr.constant(0)), le(LinExpr.constant(1), d)]
        stats = SolverStats()
        assert not check_sat(atoms, stats=stats)
        assert not check_sat(atoms, stats=stats)
        # The unsat tally counts *verdicts*, so it is memoization-invariant.
        assert stats.unsat == 2
        assert stats.memo_hits == 1

    def test_disabled_memo_always_misses_table(self):
        SOLVER_MEMO.set_enabled(False)
        d = LinExpr.var("d")
        atoms = [eq(d, LinExpr.constant(1))]
        stats = SolverStats()
        check_sat(atoms, stats=stats)
        check_sat(atoms, stats=stats)
        assert stats.memo_hits == 0 and stats.memo_misses == 0
        assert len(SOLVER_MEMO.check) == 0

    def test_registry_counts_only_real_runs(self):
        checks = metrics.counter("solver.checks")
        before = checks.value
        d = LinExpr.var("d")
        atoms = [eq(d, LinExpr.constant(7))]
        check_sat(atoms)
        check_sat(atoms)
        # One real decision-procedure run; the second call was a memo hit.
        assert checks.value == before + 1

    def test_nonnull_set_is_part_of_the_key(self):
        # Same atoms, different nonnull roots must not share a verdict.
        q1 = Query("M.m")
        v1 = q1.new_ref(frozenset({A}), maybe_null=False)
        q1.set_local("x", v1)
        q2 = Query("M.m")
        v2 = q2.new_ref(frozenset({A}), maybe_null=True)
        q2.set_local("x", v2)
        assert q1.nonnull_roots() != q2.nonnull_roots()
        assert check_sat([], nonnull=q1.nonnull_roots())
        assert check_sat([], nonnull=q2.nonnull_roots())
        assert len(SOLVER_MEMO.check) == 2

    def test_set_enabled_and_clear(self):
        memo = SolverMemo(capacity=4)
        memo.check.put("k", True)
        memo.entailment.put("k", False)
        memo.clear()
        assert len(memo.check) == 0 and len(memo.entailment) == 0
        memo.set_enabled(False)
        assert memo.enabled is False


class TestRefutedStateCache:
    def test_empty_cache_never_subsumes(self):
        cache = RefutedStateCache()
        q = query_with_region(frozenset({A}))
        assert not cache.subsumes(("loop", 1), q)
        assert cache.stats()["misses"] == 1

    def test_stronger_state_subsumed_by_cached_refutation(self):
        cache = RefutedStateCache()
        weak = query_with_region(frozenset({A, B}))
        cache.add_many([(("loop", 1), weak)])
        strong = query_with_region(frozenset({A}))
        assert cache.subsumes(("loop", 1), strong)
        assert cache.stats()["hits"] == 1

    def test_weaker_state_not_subsumed(self):
        cache = RefutedStateCache()
        strong = query_with_region(frozenset({A}))
        cache.add_many([(("loop", 1), strong)])
        weak = query_with_region(frozenset({A, B}))
        assert not cache.subsumes(("loop", 1), weak)

    def test_points_are_isolated(self):
        cache = RefutedStateCache()
        q = query_with_region(frozenset({A}))
        cache.add_many([(("loop", 1), q)])
        assert not cache.subsumes(("loop", 2), query_with_region(frozenset({A})))

    def test_per_point_cap(self):
        cache = RefutedStateCache(max_per_point=3)
        entries = [
            (("loop", 1), query_with_region(frozenset({loc(f"s{i}")})))
            for i in range(10)
        ]
        cache.add_many(entries)
        assert cache.stats()["states"] == 3

    def test_clear_and_len(self):
        cache = RefutedStateCache()
        cache.add_many([(("loop", i), query_with_region(frozenset({A}))) for i in range(4)])
        assert len(cache) == 4
        assert cache.stats()["points"] == 4
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_stripes(self):
        with pytest.raises(ValueError):
            RefutedStateCache(stripes=0)


class TestFacade:
    def test_snapshot_contains_all_cache_metrics(self):
        snap = perf.cache_stats_snapshot()
        for name in perf.CACHE_METRIC_NAMES:
            assert name in snap
        assert "solver.intern_hits" in snap
        pickle.dumps(snap)  # must survive the process-pool trip

    def test_cache_report_merges_worker_snapshots(self):
        base = perf.cache_stats_snapshot()
        worker = {"solver.memo_hits": 10, "solver.memo_misses": 10}
        report = perf.cache_report([worker])
        memo = report["solver_memo"]
        assert memo["hits"] == base["solver.memo_hits"] + 10
        assert memo["misses"] == base["solver.memo_misses"] + 10
        assert 0.0 <= memo["hit_rate"] <= 1.0

    def test_hit_rate_zero_when_untouched(self):
        report = perf.cache_report(
            [{"executor.refuted_cache_hits": 0, "executor.refuted_cache_misses": 0}]
        )
        assert isinstance(report["refuted_states"]["hit_rate"], float)

    def test_intern_gauges_refresh(self):
        perf.refresh_intern_gauges()
        assert metrics.gauge("solver.intern_size").value >= 0
