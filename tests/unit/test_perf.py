"""Unit tests for the repro.perf memoization & subsumption layer."""

import pickle

import pytest

from repro import perf
from repro.ir.instructions import AllocSite
from repro.obs import metrics
from repro.perf.cache import RefutedStateCache
from repro.perf.memo import SOLVER_MEMO, SOLVER_PARTITION, LRUCache, SolverMemo
from repro.pointsto.graph import AbsLoc
from repro.solver import (
    NULL,
    LinExpr,
    SolverContext,
    SolverStats,
    check_sat,
    eq,
    le,
    ref_eq,
    ref_ne,
    canonical_key,
    split_components,
    syntactic_unsat,
)
from repro.symbolic import Query


def loc(name):
    return AbsLoc(AllocSite(hash(name) % 99_991, "Object", "M.m", hint=name))


A, B = loc("a0"), loc("b0")


def query_with_region(region):
    q = Query("M.m")
    v = q.new_ref(region)
    q.set_local("x", v)
    return q


@pytest.fixture(autouse=True)
def fresh_memo():
    SOLVER_MEMO.clear()
    enabled = SOLVER_MEMO.enabled
    partition = SOLVER_PARTITION.enabled
    SOLVER_MEMO.set_enabled(True)
    yield
    SOLVER_MEMO.clear()
    SOLVER_MEMO.set_enabled(enabled)
    SOLVER_PARTITION.set_enabled(partition)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "d") == "d"

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite; b becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_len_and_clear(self):
        cache = LRUCache(8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_capacity_bound_holds(self):
        cache = LRUCache(3)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSolverMemo:
    @pytest.fixture(autouse=True)
    def monolithic(self):
        # These tests pin the whole-query memo, which only the monolithic
        # (--no-partition) solver path consults.
        SOLVER_PARTITION.set_enabled(False)
        yield

    def test_check_sat_memoizes_verdict(self):
        d = LinExpr.var("d")
        atoms = [le(d, LinExpr.constant(3)), le(LinExpr.constant(1), d)]
        stats = SolverStats()
        assert check_sat(atoms, stats=stats)
        assert check_sat(list(reversed(atoms)), stats=stats)  # order-insensitive key
        assert stats.checks == 2
        assert stats.memo_misses == 1
        assert stats.memo_hits == 1

    def test_unsat_verdict_memoized_and_counted(self):
        d = LinExpr.var("d")
        atoms = [le(d, LinExpr.constant(0)), le(LinExpr.constant(1), d)]
        stats = SolverStats()
        assert not check_sat(atoms, stats=stats)
        assert not check_sat(atoms, stats=stats)
        # The unsat tally counts *verdicts*, so it is memoization-invariant.
        assert stats.unsat == 2
        assert stats.memo_hits == 1

    def test_disabled_memo_always_misses_table(self):
        SOLVER_MEMO.set_enabled(False)
        d = LinExpr.var("d")
        atoms = [eq(d, LinExpr.constant(1))]
        stats = SolverStats()
        check_sat(atoms, stats=stats)
        check_sat(atoms, stats=stats)
        assert stats.memo_hits == 0 and stats.memo_misses == 0
        assert len(SOLVER_MEMO.check) == 0

    def test_registry_counts_only_real_runs(self):
        checks = metrics.counter("solver.checks")
        before = checks.value
        d = LinExpr.var("d")
        atoms = [eq(d, LinExpr.constant(7))]
        check_sat(atoms)
        check_sat(atoms)
        # One real decision-procedure run; the second call was a memo hit.
        assert checks.value == before + 1

    def test_nonnull_set_is_part_of_the_key(self):
        # Same atoms, different nonnull roots must not share a verdict.
        q1 = Query("M.m")
        v1 = q1.new_ref(frozenset({A}), maybe_null=False)
        q1.set_local("x", v1)
        q2 = Query("M.m")
        v2 = q2.new_ref(frozenset({A}), maybe_null=True)
        q2.set_local("x", v2)
        assert q1.nonnull_roots() != q2.nonnull_roots()
        assert check_sat([], nonnull=q1.nonnull_roots())
        assert check_sat([], nonnull=q2.nonnull_roots())
        assert len(SOLVER_MEMO.check) == 2

    def test_set_enabled_and_clear(self):
        memo = SolverMemo(capacity=4)
        memo.check.put("k", True)
        memo.entailment.put("k", False)
        memo.clear()
        assert len(memo.check) == 0 and len(memo.entailment) == 0
        memo.set_enabled(False)
        assert memo.enabled is False


class TestPartitionedSolver:
    @pytest.fixture(autouse=True)
    def partitioned(self):
        SOLVER_PARTITION.set_enabled(True)
        yield

    def _xy_atoms(self):
        # Two variable-disjoint fragments: x-chain and y-chain.
        x, y = LinExpr.var("x"), LinExpr.var("y")
        return [
            le(x, LinExpr.constant(3)),
            le(LinExpr.constant(1), x),
            le(y, LinExpr.constant(9)),
        ]

    def test_syntactic_unsat_screens_ground_contradictions(self):
        assert syntactic_unsat([le(LinExpr.constant(1), LinExpr.constant(0))], frozenset())
        assert syntactic_unsat([eq(LinExpr.constant(2), LinExpr.constant(0))], frozenset())
        assert syntactic_unsat([ref_ne("v", "v")], frozenset())
        assert syntactic_unsat([ref_eq("v", NULL)], frozenset({"v"}))
        assert syntactic_unsat(self._xy_atoms(), frozenset()) is None

    def test_split_components_by_shared_variables(self):
        comps = split_components(self._xy_atoms(), frozenset({"x", "z"}))
        assert len(comps) == 2
        sizes = sorted(len(catoms) for catoms, _ in comps)
        assert sizes == [1, 2]
        for catoms, (atom_key, sliced) in comps:
            # Nominal keys: the component's own atoms, untouched.
            assert atom_key == frozenset(catoms)
            # nonnull slices to the component's own variables only (the
            # irrelevant "z" fact never reaches a key).
            assert len(sliced) <= 1

    def test_canonical_keys_collapse_alpha_equivalent_fragments(self):
        # Structurally identical chains over different fresh variables
        # must share one canonical signature — naming is what the
        # executor varies per path and per search.
        a = [eq(LinExpr.var("a1").sub(LinExpr.var("a2")), LinExpr.constant(2))]
        b = [eq(LinExpr.var("b7").sub(LinExpr.var("b9")), LinExpr.constant(2))]
        key_a = canonical_key(a, frozenset())
        key_b = canonical_key(b, frozenset({"b7"}))
        assert key_a[0] == key_b[0]
        # Signatures are plain data — first-occurrence variable indices,
        # never term objects — and nonnull facts map to the same indices.
        # Constants and coefficients are zigzag-encoded (-2 -> 3, 1 -> 2,
        # -1 -> 1) so CPython's hash(-1) == hash(-2) aliasing cannot
        # collapse distinct signatures onto one hash bucket.
        assert key_a[0] == (("==", 3, (0, 2), (1, 1)),)
        assert key_b[1] == frozenset({0})
        # ...and a different constant is a different key.
        c = [eq(LinExpr.var("c1").sub(LinExpr.var("c2")), LinExpr.constant(3))]
        key_c = canonical_key(c, frozenset())
        assert key_c != key_a
        # Mixed ref/lin components keep NULL distinguishable from any
        # variable slot.
        key_r = canonical_key([ref_eq("v", NULL)], frozenset())
        assert key_r[0] == (("=", 0, -1),)

    def test_component_verdicts_memoized_across_queries(self):
        stats = SolverStats()
        assert check_sat(self._xy_atoms(), stats=stats)
        checks = metrics.counter("solver.checks")
        before = checks.value
        # Same fragments inside a different (larger) query: all component
        # memo hits, zero actual decision-procedure runs.
        z = LinExpr.var("z")
        assert check_sat(self._xy_atoms() + [le(z, LinExpr.constant(5))], stats=stats)
        assert checks.value == before + 1  # only the fresh z component ran
        assert stats.component_hits == 2

    def test_context_answers_before_memo(self):
        ctx = SolverContext()
        stats = SolverStats()
        assert check_sat(self._xy_atoms(), stats=stats, context=ctx)
        assert len(ctx) == 2
        SOLVER_MEMO.clear()  # context alone must answer now
        assert check_sat(self._xy_atoms(), stats=stats, context=ctx)
        assert stats.context_hits == 2

    def test_unsat_component_refutes_whole_query(self):
        x, y = LinExpr.var("x"), LinExpr.var("y")
        atoms = [
            le(y, LinExpr.constant(9)),
            le(x, LinExpr.constant(0)),
            le(LinExpr.constant(1), x),  # x-component infeasible
        ]
        stats = SolverStats()
        assert not check_sat(atoms, stats=stats)
        assert stats.unsat == 1

    def test_parity_with_monolithic_on_mixed_atoms(self):
        x = LinExpr.var("x")
        cases = [
            ([ref_eq("a", "b"), ref_ne("b", "a"), le(x, LinExpr.constant(1))], frozenset()),
            ([ref_eq("a", NULL)], frozenset({"a"})),
            ([ref_eq("a", NULL), ref_eq("a", "b")], frozenset({"b"})),
            ([eq(x, LinExpr.constant(4)), le(x, LinExpr.constant(3))], frozenset()),
            ([ref_eq("a", "b"), le(x, LinExpr.constant(3))], frozenset()),
        ]
        for atoms, nonnull in cases:
            SOLVER_PARTITION.set_enabled(True)
            SOLVER_MEMO.clear()
            part = check_sat(atoms, nonnull=nonnull)
            SOLVER_PARTITION.set_enabled(False)
            SOLVER_MEMO.clear()
            mono = check_sat(atoms, nonnull=nonnull)
            assert part == mono, (atoms, nonnull)

    def test_partitioning_works_with_memo_disabled(self):
        SOLVER_MEMO.set_enabled(False)
        stats = SolverStats()
        assert check_sat(self._xy_atoms(), stats=stats)
        assert check_sat(self._xy_atoms(), stats=stats)
        assert stats.component_hits == 0
        assert len(SOLVER_MEMO.component) == 0

    def test_context_cap_clears_wholesale(self):
        from repro.solver import partition as partition_mod

        ctx = SolverContext()
        for i in range(partition_mod.CONTEXT_CAP):
            ctx.remember(("k", i), True)
        assert len(ctx) == partition_mod.CONTEXT_CAP
        ctx.remember(("k", "overflow"), False)
        assert len(ctx) == 1
        assert ctx.get(("k", "overflow")) is False

    def test_query_shares_context_with_copies(self):
        q = Query("M.m")
        v = q.new_ref(frozenset({A}))
        q.set_local("x", v)
        assert q.check_sat()
        assert q.solver_ctx is not None
        child = q.copy()
        assert child.solver_ctx is q.solver_ctx


class TestRefutedStateCache:
    def test_empty_cache_never_subsumes(self):
        cache = RefutedStateCache()
        q = query_with_region(frozenset({A}))
        assert not cache.subsumes(("loop", 1), q)
        assert cache.stats()["misses"] == 1

    def test_stronger_state_subsumed_by_cached_refutation(self):
        cache = RefutedStateCache()
        weak = query_with_region(frozenset({A, B}))
        cache.add_many([(("loop", 1), weak)])
        strong = query_with_region(frozenset({A}))
        assert cache.subsumes(("loop", 1), strong)
        assert cache.stats()["hits"] == 1

    def test_weaker_state_not_subsumed(self):
        cache = RefutedStateCache()
        strong = query_with_region(frozenset({A}))
        cache.add_many([(("loop", 1), strong)])
        weak = query_with_region(frozenset({A, B}))
        assert not cache.subsumes(("loop", 1), weak)

    def test_points_are_isolated(self):
        cache = RefutedStateCache()
        q = query_with_region(frozenset({A}))
        cache.add_many([(("loop", 1), q)])
        assert not cache.subsumes(("loop", 2), query_with_region(frozenset({A})))

    def test_per_point_cap(self):
        cache = RefutedStateCache(max_per_point=3)
        entries = [
            (("loop", 1), query_with_region(frozenset({loc(f"s{i}")})))
            for i in range(10)
        ]
        cache.add_many(entries)
        assert cache.stats()["states"] == 3

    def test_clear_and_len(self):
        cache = RefutedStateCache()
        cache.add_many([(("loop", i), query_with_region(frozenset({A}))) for i in range(4)])
        assert len(cache) == 4
        assert cache.stats()["points"] == 4
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_stripes(self):
        with pytest.raises(ValueError):
            RefutedStateCache(stripes=0)


class TestRefutedCacheSnapshotMerge:
    def test_snapshot_carries_per_entry_hit_counts(self):
        cache = RefutedStateCache()
        weak = query_with_region(frozenset({A, B}))
        cache.add_many([(("loop", 1), weak)])
        cache.subsumes(("loop", 1), query_with_region(frozenset({A})))
        cache.subsumes(("loop", 1), query_with_region(frozenset({A})))
        cache.subsumes(("loop", 2), query_with_region(frozenset({A})))
        snap = cache.snapshot()
        assert snap["hits"] == 2 and snap["misses"] == 1
        assert snap["point_hits"] == {("loop", 1): 2}

    def test_merge_sums_tallies_never_resets(self):
        """The process-pool invariant: folding a worker snapshot into the
        parent must *add* to the parent's per-entry hit counts — a merge
        that replaced them would silently lose the cross-run LRU signal
        every time ``--backend process`` is used."""
        parent = RefutedStateCache()
        weak = query_with_region(frozenset({A, B}))
        parent.add_many([(("loop", 1), weak)])
        parent.subsumes(("loop", 1), query_with_region(frozenset({A})))
        before = parent.snapshot()
        assert before["point_hits"] == {("loop", 1): 1}

        worker = {"hits": 3, "misses": 2,
                  "point_hits": {("loop", 1): 2, ("entry", "m"): 1}}
        parent.merge_snapshot(worker)
        after = parent.snapshot()
        assert after["hits"] == before["hits"] + 3
        assert after["misses"] == before["misses"] + 2
        assert after["point_hits"] == {("loop", 1): 3, ("entry", "m"): 1}

    def test_merge_accumulates_across_workers(self):
        parent = RefutedStateCache()
        for _ in range(3):
            parent.merge_snapshot(
                {"hits": 1, "misses": 1, "point_hits": {("loop", 7): 4}}
            )
        snap = parent.snapshot()
        assert snap["hits"] == 3 and snap["misses"] == 3
        assert snap["point_hits"] == {("loop", 7): 12}

    def test_clear_resets_point_hits(self):
        cache = RefutedStateCache()
        cache.merge_snapshot({"hits": 1, "misses": 0,
                              "point_hits": {("loop", 1): 1}})
        cache.clear()
        assert cache.snapshot()["point_hits"] == {}


class TestMemoCapacity:
    def test_component_table_is_bounded(self):
        memo = SolverMemo(capacity=4)
        for i in range(10):
            memo.component.put(("sig", i), True)
        assert len(memo.component) == 4
        assert memo.sizes()["component"] == 4
        assert memo.sizes()["capacity"] == 4

    def test_env_override_sets_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAPACITY", "7")
        assert SolverMemo().component.capacity == 7

    def test_env_override_ignores_garbage(self, monkeypatch):
        from repro.perf.memo import MEMO_CAPACITY

        monkeypatch.setenv("REPRO_MEMO_CAPACITY", "not-a-number")
        assert SolverMemo().component.capacity == MEMO_CAPACITY

    def test_sizes_published_as_gauges(self):
        SOLVER_MEMO.component.put(("sig", "gauge-probe"), True)
        perf.refresh_intern_gauges()
        assert (
            metrics.gauge("solver.memo_component_size").value
            == SOLVER_MEMO.sizes()["component"]
        )
        assert metrics.gauge("solver.memo_capacity").value > 0


class TestFacade:
    def test_snapshot_contains_all_cache_metrics(self):
        snap = perf.cache_stats_snapshot()
        for name in perf.CACHE_METRIC_NAMES:
            assert name in snap
        assert "solver.intern_hits" in snap
        pickle.dumps(snap)  # must survive the process-pool trip

    def test_cache_report_merges_worker_snapshots(self):
        base = perf.cache_stats_snapshot()
        worker = {"solver.memo_hits": 10, "solver.memo_misses": 10}
        report = perf.cache_report([worker])
        memo = report["solver_memo"]
        assert memo["hits"] == base["solver.memo_hits"] + 10
        assert memo["misses"] == base["solver.memo_misses"] + 10
        assert 0.0 <= memo["hit_rate"] <= 1.0

    def test_hit_rate_zero_when_untouched(self):
        report = perf.cache_report(
            [{"executor.refuted_cache_hits": 0, "executor.refuted_cache_misses": 0}]
        )
        assert isinstance(report["refuted_states"]["hit_rate"], float)

    def test_intern_gauges_refresh(self):
        perf.refresh_intern_gauges()
        assert metrics.gauge("solver.intern_size").value >= 0
