"""Unit tests for query simplification: history and subsumption joins."""

import pytest

from repro.ir.instructions import AllocSite
from repro.pointsto.graph import AbsLoc
from repro.solver import LinExpr, eq, le
from repro.symbolic import Query
from repro.symbolic.simplification import QueryHistory, query_entails


def loc(name):
    return AbsLoc(AllocSite(hash(name) % 99_991, "Object", "M.m", hint=name))


A, B = loc("a0"), loc("b0")


def base_query(region=frozenset({A, B})):
    q = Query("M.m")
    v = q.new_ref(region)
    q.set_local("x", v)
    return q, v


class TestEntailmentProperties:
    def test_reflexive(self):
        q, _ = base_query()
        assert query_entails(q, q)

    def test_copy_entails_both_ways(self):
        q, _ = base_query()
        q2 = q.copy()
        assert query_entails(q, q2) and query_entails(q2, q)

    def test_pure_atoms_shared_vars_identity_mapping(self):
        # Forked queries share SymVar objects: a pure-only var matches by
        # identity (the fix that makes loop fixpoints converge).
        q, v = base_query()
        d = q.new_data()
        q.add_pure(eq(LinExpr.var(d), LinExpr.constant(1)))
        q2 = q.copy()
        assert query_entails(q2, q)

    def test_extra_pure_atom_strengthens(self):
        q, _ = base_query()
        q2 = q.copy()
        d = q2.new_data()
        q2.add_pure(le(LinExpr.var(d), LinExpr.constant(0)))
        assert query_entails(q2, q)
        assert not query_entails(q, q2)

    def test_field_chain_matching(self):
        def build():
            q = Query("M.m")
            v = q.new_ref(frozenset({A}))
            u = q.new_ref(frozenset({B, A}))
            q.set_local("x", v)
            q.set_field(v, "f", u)
            return q, u

        q1, u1 = build()
        q2, u2 = build()
        assert query_entails(q1, q2)
        q1.narrow(u1, frozenset({A}))
        assert query_entails(q1, q2)  # smaller region is stronger
        assert not query_entails(q2, q1)

    def test_mismatched_locals_incomparable(self):
        q1, _ = base_query()
        q2 = Query("M.m")
        v2 = q2.new_ref(frozenset({A, B}))
        q2.set_local("y", v2)
        assert not query_entails(q1, q2)

    def test_nonnull_stronger_than_maybe_null(self):
        q1 = Query("M.m")
        v1 = q1.new_ref(frozenset({A}), maybe_null=False)
        q1.set_local("x", v1)
        q2 = Query("M.m")
        v2 = q2.new_ref(frozenset({A}), maybe_null=True)
        q2.set_local("x", v2)
        assert query_entails(q1, q2)
        assert not query_entails(q2, q1)

    def test_array_cell_matching(self):
        def build():
            q = Query("M.m")
            base = q.new_ref(frozenset({A}))
            idx = q.new_data()
            val = q.new_ref(frozenset({B, A}))
            q.set_local("xs", base)
            q.add_array_cell(base, idx, val)
            return q

        assert query_entails(build(), build())


class TestHistory:
    def test_first_query_not_dropped(self):
        history = QueryHistory()
        q, _ = base_query()
        assert not history.should_drop(("loop", 1), q)

    def test_identical_query_dropped(self):
        history = QueryHistory()
        q, _ = base_query()
        assert not history.should_drop(("loop", 1), q)
        assert history.should_drop(("loop", 1), q.copy())
        assert history.drops == 1

    def test_stronger_query_dropped(self):
        history = QueryHistory()
        weak, _ = base_query(frozenset({A, B}))
        assert not history.should_drop(("loop", 1), weak)
        strong, _ = base_query(frozenset({A}))
        assert history.should_drop(("loop", 1), strong)

    def test_weaker_query_kept(self):
        history = QueryHistory()
        strong, _ = base_query(frozenset({A}))
        assert not history.should_drop(("loop", 1), strong)
        weak, _ = base_query(frozenset({A, B}))
        assert not history.should_drop(("loop", 1), weak)

    def test_points_isolated(self):
        history = QueryHistory()
        q, _ = base_query()
        assert not history.should_drop(("loop", 1), q)
        assert not history.should_drop(("loop", 2), q.copy())

    def test_stack_signature_isolates(self):
        history = QueryHistory()
        q1, _ = base_query()
        assert not history.should_drop(("entry", "m"), q1)
        q2, _ = base_query()
        q2.push_frame("C.n", 42)
        assert not history.should_drop(("entry", "m"), q2)

    def test_disabled_history_never_drops(self):
        history = QueryHistory(enabled=False)
        q, _ = base_query()
        assert not history.should_drop(("loop", 1), q)
        assert not history.should_drop(("loop", 1), q.copy())

    def test_per_point_cap(self):
        history = QueryHistory(max_per_point=2)
        for i in range(5):
            q = Query("M.m")
            v = q.new_ref(frozenset({loc(f"site{i}")}))
            q.set_local("x", v)
            history.should_drop(("loop", 1), q)
        key = (("loop", 1), Query("M.m").stack_signature())
        assert len(history._seen[key]) <= 2
