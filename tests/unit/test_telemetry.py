"""Unit tests for the operational-telemetry layer
(:mod:`repro.obs.telemetry` + :mod:`repro.engine.diff`): Prometheus
exposition, the lifecycle hub, the slow-query flight recorder, periodic
metric streaming, and run-report diffing."""

import json
import time

import pytest

from repro.bench.workloads import mixed_app
from repro.engine import RefutationDriver, diff_reports, render_diff
from repro.engine.events import (
    EdgeEscalated,
    EdgeFinished,
    EdgeScheduled,
    EdgeStolen,
    RunFinished,
    RunStarted,
    SpanFinished,
)
from repro.ir import compile_program
from repro.obs import metrics, provenance, telemetry
from repro.obs.telemetry import (
    CONTENT_TYPE,
    EXPOSITION_VERSION,
    FlightRecorder,
    MetricsStreamer,
    TelemetryHub,
    render_prometheus,
)
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig

PORTFOLIO = dict(path_budget=10_000, portfolio=True, portfolio_rungs=(1000,))


@pytest.fixture(scope="module")
def pta():
    # The scheduler-test workload: cheap jobs plus one expensive one.
    return analyze(
        compile_program(mixed_app(3, 1, easy_branches=1, hard_branches=6))
    )


@pytest.fixture(scope="module")
def edges(pta):
    return sorted(pta.graph.static_edges(), key=str)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


GOLDEN = """\
# repro-exposition-version 2
# HELP repro_driver_job_seconds Distribution of driver.job_seconds.
# TYPE repro_driver_job_seconds summary
repro_driver_job_seconds_count 1
repro_driver_job_seconds_sum 2
repro_driver_job_seconds{quantile="0.5"} 2
repro_driver_job_seconds{quantile="0.95"} 2
# HELP repro_driver_rung_jobs_total Portfolio-ladder jobs, by lifecycle event and rung.
# TYPE repro_driver_rung_jobs_total counter
repro_driver_rung_jobs_total{event="carryover",rung="0"} 1
repro_driver_rung_jobs_total{event="scheduled",rung="0"} 4
# HELP repro_driver_sched_events_total Scheduler events: work steals and priority inversions.
# TYPE repro_driver_sched_events_total counter
repro_driver_sched_events_total{event="steal"} 1
# HELP repro_executor_kills_total Path states killed, by kill-taxonomy reason.
# TYPE repro_executor_kills_total counter
repro_executor_kills_total{reason="solver-unsat"} 3
# HELP repro_pool_workers Current pool.workers.
# TYPE repro_pool_workers gauge
repro_pool_workers 2
# HELP repro_solver_answers_total Solver queries answered, by cache tier.
# TYPE repro_solver_answers_total counter
repro_solver_answers_total{tier="context"} 2
repro_solver_answers_total{tier="decision"} 5
# HELP repro_store_entries Current store.entries.
# TYPE repro_store_entries gauge
repro_store_entries 7
# HELP repro_store_ops_total Persistent verdict-store operations, by outcome.
# TYPE repro_store_ops_total counter
repro_store_ops_total{op="hit"} 6
repro_store_ops_total{op="miss"} 1
"""


class TestExposition:
    def test_golden(self):
        """The full exposition of a small synthetic registry, pinned
        byte for byte — scrapers depend on this shape."""
        reg = metrics.MetricsRegistry()
        reg.counter("executor.kill.solver-unsat").inc(3)
        reg.counter("solver.context_hits").inc(2)
        reg.counter("solver.checks").inc(5)
        reg.counter("driver.steals").inc(1)
        reg.counter("driver.rung.scheduled.0").inc(4)
        reg.counter("driver.rung.carryover.0").inc(1)
        reg.counter("store.hits").inc(6)
        reg.counter("store.misses").inc(1)
        reg.gauge("store.entries").set(7)
        reg.gauge("pool.workers").set(2)
        reg.histogram("driver.job_seconds").observe(2.0)
        assert render_prometheus(reg) == GOLDEN

    def test_version_line_and_content_type(self):
        text = render_prometheus(metrics.MetricsRegistry())
        assert text == f"# repro-exposition-version {EXPOSITION_VERSION}\n"
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_every_kill_reason_folds_into_one_family(self):
        reg = metrics.MetricsRegistry()
        reg.counter("executor.kill.budget-timeout").inc(7)
        reg.counter("executor.kill.loop-bound").inc(2)
        text = render_prometheus(reg)
        assert text.count("# TYPE repro_executor_kills_total counter") == 1
        assert 'repro_executor_kills_total{reason="budget-timeout"} 7' in text
        assert 'repro_executor_kills_total{reason="loop-bound"} 2' in text

    def test_tier_mapping_matches_cache_report_names(self):
        reg = metrics.MetricsRegistry()
        for name in (
            "solver.context_hits",
            "solver.component_memo_hits",
            "solver.memo_hits",
            "solver.fastpath_unsat",
            "solver.checks",
        ):
            reg.counter(name).inc()
        text = render_prometheus(reg)
        for tier in (
            "context",
            "component_memo",
            "whole_query_memo",
            "fastpath_unsat",
            "decision",
        ):
            assert f'repro_solver_answers_total{{tier="{tier}"}} 1' in text

    def test_store_counters_fold_into_one_family(self):
        reg = metrics.MetricsRegistry()
        for name in (
            "store.hits",
            "store.misses",
            "store.writes",
            "store.evictions",
            "store.errors",
        ):
            reg.counter(name).inc()
        text = render_prometheus(reg)
        assert text.count("# TYPE repro_store_ops_total counter") == 1
        for op in ("hit", "miss", "write", "evict", "error"):
            assert f'repro_store_ops_total{{op="{op}"}} 1' in text

    def test_unlabeled_counters_get_total_suffix(self):
        reg = metrics.MetricsRegistry()
        reg.counter("serve.requests").inc(9)
        assert "repro_serve_requests_total 9" in render_prometheus(reg)

    def test_deterministic(self):
        reg = metrics.MetricsRegistry()
        reg.counter("b.two").inc()
        reg.counter("a.one").inc()
        assert render_prometheus(reg) == render_prometheus(reg)
        a = render_prometheus(reg).splitlines()
        samples = [l for l in a if not l.startswith("#")]
        assert samples == sorted(samples)


# ---------------------------------------------------------------------------
# TelemetryHub
# ---------------------------------------------------------------------------


def _finish(description, status="refuted", worker="w0", cached=False):
    return EdgeFinished(
        description=description,
        status=status,
        seconds=0.01,
        path_programs=2,
        worker=worker,
        index=0,
        total=1,
        cached=cached,
    )


class TestTelemetryHub:
    def test_lifecycle_fold(self):
        hub = TelemetryHub()
        hub.sink(RunStarted(total_jobs=2, jobs=2, backend="thread"))
        hub.sink(EdgeScheduled(description="e1", index=0, total=2))
        hub.sink(EdgeScheduled(description="e2", index=1, total=2))
        snap = hub.snapshot()
        assert snap["totals"]["scheduled"] == 2
        assert [e["description"] for e in snap["in_flight"]] == ["e1", "e2"]

        hub.sink(EdgeEscalated(description="e1", rung=0, next_budget=10_000))
        hub.sink(EdgeStolen(description="e1", thread="w1", queued=3))
        snap = hub.snapshot()
        entry = snap["in_flight"][0]
        assert entry["rung"] == 1 and entry["steals"] == 1
        assert snap["totals"]["escalated"] == 1
        assert snap["totals"]["stolen"] == 1

        hub.sink(_finish("e1"))
        hub.sink(_finish("e2", status="witnessed", worker="w1"))
        hub.sink(RunFinished(refuted=1, witnessed=1, timeouts=0, seconds=0.1))
        snap = hub.snapshot()
        assert snap["in_flight"] == []
        assert snap["totals"]["refuted"] == 1
        assert snap["totals"]["witnessed"] == 1
        assert snap["workers"]["w0"] >= 1 and snap["workers"]["w1"] >= 1
        assert snap["run"]["finished"] is not None

    def test_cached_results_counted_separately(self):
        hub = TelemetryHub()
        hub.sink(_finish("e1", cached=True))
        totals = hub.snapshot()["totals"]
        assert totals["cached"] == 1 and totals["refuted"] == 0

    def test_non_lifecycle_events_ignored(self):
        hub = TelemetryHub()
        hub.sink(
            SpanFinished(name="driver.job", seconds=0.1, thread=0, attrs={})
        )
        hub.sink(object())
        assert hub.events_since(0) == (0, [])

    def test_cursor_resume_and_limit(self):
        hub = TelemetryHub()
        for i in range(5):
            hub.sink(EdgeScheduled(description=f"e{i}", index=i, total=5))
        cursor, rows = hub.events_since(0, limit=2)
        assert [r["description"] for r in rows] == ["e0", "e1"]
        cursor, rows = hub.events_since(cursor)
        assert [r["description"] for r in rows] == ["e2", "e3", "e4"]
        assert hub.events_since(cursor) == (cursor, [])

    def test_ring_drops_oldest_but_keeps_cursor_monotonic(self):
        hub = TelemetryHub(capacity=3)
        for i in range(10):
            hub.sink(EdgeScheduled(description=f"e{i}", index=i, total=10))
        cursor, rows = hub.events_since(0)
        assert [r["description"] for r in rows] == ["e7", "e8", "e9"]
        assert cursor == 10


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(size=3)
        for i in range(7):
            rec.record({"description": f"s{i}"})
        assert [r["description"] for r in rec.recent()] == ["s4", "s5", "s6"]
        assert [r["description"] for r in rec.recent(limit=1)] == ["s6"]
        rec.reset()
        assert rec.recent() == []

    def test_capture_via_replay_persists_journal(self, tmp_path, pta, edges):
        """With no run journal installed, capture replays the search on a
        fresh engine and persists journal + meta (the zero-flags path)."""
        assert provenance.get_journal() is None
        rec = FlightRecorder()
        edge = edges[0]
        summary = telemetry.search_summary(
            "edge", str(edge), Engine(pta, SearchConfig()).refute_edge(edge)
        )
        meta = rec.capture(
            str(edge),
            summary,
            replay=lambda: Engine(pta, SearchConfig()).refute_edge(edge),
            directory=str(tmp_path),
        )
        assert meta is not None
        assert meta["attribution"], "capture carried no kill attribution"
        captures = telemetry.list_captures(str(tmp_path))
        assert len(captures) == 1
        capture = captures[0]
        assert capture["description"] == str(edge)
        lines = open(capture["path"]).read().splitlines()
        assert json.loads(lines[0])["schema_version"] >= 1
        assert len(lines) >= 2, "journal persisted no searches"
        # The replay's temporary journal/tracer installs were restored.
        assert provenance.get_journal() is None

    def test_capture_reuses_installed_journal_without_rerunning(
        self, tmp_path, pta, edges
    ):
        """With a run journal installed the capture must extract from it —
        never re-run (double-counting kills would corrupt attribution)."""
        edge = edges[0]
        book = provenance.install()
        try:
            result = Engine(pta, SearchConfig()).refute_edge(edge)
            searches_before = len(book.searches)
            calls = []
            meta = FlightRecorder().capture(
                str(edge),
                telemetry.search_summary("edge", str(edge), result),
                replay=lambda: calls.append(1),
                directory=str(tmp_path),
            )
            assert meta is not None
            assert calls == [], "capture re-ran despite an installed journal"
            assert len(book.searches) == searches_before
        finally:
            provenance.disable()
        assert telemetry.list_captures(str(tmp_path))

    def test_env_veto(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DISABLE", "1")
        rec = FlightRecorder()
        assert not rec.capture_enabled()
        assert rec.capture("x", {}, directory=str(tmp_path)) is None
        assert telemetry.list_captures(str(tmp_path)) == []

    def test_capture_cap(self, tmp_path, pta, edges):
        rec = FlightRecorder(max_captures=1)
        edge = edges[0]
        replay = lambda: Engine(pta, SearchConfig()).refute_edge(edge)  # noqa: E731
        summary = {"status": "refuted"}
        first = rec.capture(
            str(edge), summary, replay=replay, directory=str(tmp_path)
        )
        second = rec.capture(
            str(edge), summary, replay=replay, directory=str(tmp_path)
        )
        assert first is not None and second is None
        assert len(telemetry.list_captures(str(tmp_path))) == 1

    def test_flight_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "fr"))
        assert telemetry.flight_dir() == str(tmp_path / "fr")


class TestDriverAutoCapture:
    def test_slow_search_captured_with_zero_flags(
        self, tmp_path, monkeypatch, pta, edges
    ):
        """The acceptance path: no --journal, no --trace — a search over
        the slow-query threshold still leaves a loadable journal."""
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_FLIGHT_DISABLE", raising=False)
        monkeypatch.setattr(telemetry, "RECORDER", FlightRecorder())
        config = SearchConfig(slow_query_ms=0.000001)
        with RefutationDriver(pta, config, jobs=2) as driver:
            driver.refute_edges(edges)
        rows = telemetry.RECORDER.recent()
        assert len(rows) == len(edges)
        captures = telemetry.list_captures(str(tmp_path))
        assert captures, "no slow-query capture was persisted"
        for capture in captures:
            assert capture["summary"]["seconds"] * 1000.0 >= 0.000001
            assert open(capture["path"]).read().strip()

    def test_fast_searches_not_captured(self, tmp_path, monkeypatch, pta, edges):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setattr(telemetry, "RECORDER", FlightRecorder())
        config = SearchConfig(slow_query_ms=60_000.0)
        with RefutationDriver(pta, config, jobs=1) as driver:
            driver.refute_edges(edges)
        # Summaries always recorded; nothing crossed the capture bar.
        assert telemetry.RECORDER.recent()
        assert telemetry.list_captures(str(tmp_path)) == []

    def test_none_disables_recording_threshold(
        self, tmp_path, monkeypatch, pta, edges
    ):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setattr(telemetry, "RECORDER", FlightRecorder())
        config = SearchConfig(slow_query_ms=None)
        with RefutationDriver(pta, config, jobs=1) as driver:
            driver.refute_edges(edges)
        assert telemetry.list_captures(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# Run-report diffing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def report_a(pta, edges):
    with RefutationDriver(pta, SearchConfig(), jobs=1) as driver:
        driver.refute_edges(edges)
        return driver.build_report(app="app.mj", command="check")


class TestDiffReports:
    def test_injected_timeout_regression_attributed(self, pta, edges, report_a):
        """Rerunning with an instant deadline flips every verdict to
        TIMEOUT; the diff must attribute each flip by edge token."""
        config = SearchConfig(deadline_seconds=0.0)
        with RefutationDriver(pta, config, jobs=1) as driver:
            driver.refute_edges(edges)
            report_b = driver.build_report(app="app.mj", command="check")
        diff = diff_reports(report_a, report_b)
        assert len(diff["records"]) == len(edges)
        assert len(diff["verdict_changes"]) == len(edges)
        assert all(
            r["status_b"] == "timeout" for r in diff["verdict_changes"]
        )
        assert diff["only_in_a"] == [] and diff["only_in_b"] == []
        rendered = render_diff(diff)
        assert "verdict changes:" in rendered
        assert "-> timeout" in rendered
        assert "wall delta" in rendered

    def test_tier_deltas_attributed_for_no_partition(self, pta, edges, report_a):
        config = SearchConfig(partition_solver=False)
        with RefutationDriver(pta, config, jobs=1) as driver:
            driver.refute_edges(edges)
            report_b = driver.build_report(app="app.mj", command="check")
        diff = diff_reports(report_a, report_b)
        assert diff["verdict_changes"] == []
        # Partitioning off: the context tier cannot have grown.
        assert diff["tiers"]["context_hits"]["delta"] <= 0
        assert "decisions" in diff["tiers"]

    def test_disjoint_reports_listed_not_joined(self, report_a):
        from repro.engine.report import RunReport

        empty = RunReport.from_json(
            json.dumps(
                {
                    "schema_version": report_a.to_dict()["schema_version"],
                    "app": "other.mj",
                    "command": "check",
                    "records": [],
                }
            )
        )
        diff = diff_reports(report_a, empty)
        assert diff["records"] == []
        assert [tuple(t) for t in diff["only_in_a"]] == sorted(
            (r.kind, r.description) for r in report_a.records
        )


# ---------------------------------------------------------------------------
# MetricsStreamer
# ---------------------------------------------------------------------------


class TestMetricsStreamer:
    def test_appends_snapshots_and_final_flush(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        reg = metrics.MetricsRegistry()
        reg.counter("probe.count").inc(3)
        streamer = MetricsStreamer(str(path), interval=0.01, registry=reg)
        streamer.start()
        time.sleep(0.05)
        streamer.stop()
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert rows, "streamer wrote nothing"
        seqs = [row["seq"] for row in rows]
        assert seqs == sorted(seqs)
        assert all(
            row["metrics"]["probe.count"]["value"] == 3 for row in rows
        )
        assert all("ts" in row for row in rows)

    def test_stop_is_idempotent(self, tmp_path):
        streamer = MetricsStreamer(str(tmp_path / "s.jsonl"), interval=5.0)
        streamer.start()
        streamer.stop()
        streamer.stop()


# ---------------------------------------------------------------------------
# Scheduler metrics under the process pool (snapshot/merge)
# ---------------------------------------------------------------------------


class TestProcessPoolSchedulerMetrics:
    def test_synthetic_worker_snapshots_merge_to_sums(self):
        """Counters add, gauges take the max — merged totals must equal
        the per-worker sums for every scheduler family."""
        names = (
            "driver.steals",
            "driver.priority_inversions",
            "driver.rung.scheduled.0",
            "driver.rung.resolved.0",
            "driver.rung.carryover.0",
            "driver.rung.scheduled.1",
        )
        workers = []
        for w in range(3):
            reg = metrics.MetricsRegistry()
            for i, name in enumerate(names):
                reg.counter(name).inc(w + i)
            reg.gauge("pool.workers").set(w)
            workers.append(reg)
        parent = metrics.MetricsRegistry()
        for reg in workers:
            parent.merge_snapshot(reg.snapshot())
        for i, name in enumerate(names):
            expected = sum(w + i for w in range(3))
            assert parent.counter(name).value == expected, name
        assert parent.gauge("pool.workers").value == 2
        # And the merged registry folds into labeled exposition series.
        text = render_prometheus(parent)
        assert (
            'repro_driver_rung_jobs_total{event="scheduled",rung="0"}'
            f" {sum(w + 2 for w in range(3))}" in text
        )

    def test_process_backend_portfolio_rung_counters_match_schedule(
        self, pta, edges
    ):
        """Under --backend process the rung ladder runs in the parent:
        the registry's per-rung counter deltas must equal the report's
        schedule table exactly (merged totals == per-worker sums is
        covered above; this pins the end-to-end accounting)."""

        def rung_counts():
            out = {}
            for event in ("scheduled", "resolved", "carryover"):
                for rung in (0, 1):
                    name = f"driver.rung.{event}.{rung}"
                    inst = metrics.REGISTRY.get(name)
                    out[(event, rung)] = inst.value if inst is not None else 0
            return out

        before = rung_counts()
        config = SearchConfig(**PORTFOLIO)
        with RefutationDriver(
            pta, config, jobs=2, backend="process"
        ) as driver:
            driver.refute_edges(edges)
            report = driver.build_report(command="check")
        after = rung_counts()
        rungs = {row["rung"]: row for row in report.schedule["rungs"]}
        for (event, rung), value in before.items():
            assert after[(event, rung)] - value == rungs.get(rung, {}).get(
                event, 0
            ), (event, rung)
        # The ladder did real work: everything scheduled at rung 0,
        # survivors carried into rung 1.
        assert rungs[0]["scheduled"] == len(edges)
        assert rungs[0]["resolved"] + rungs[0]["carryover"] == len(edges)
        if rungs[0]["carryover"]:
            assert rungs[1]["scheduled"] == rungs[0]["carryover"]
