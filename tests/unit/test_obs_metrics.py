"""Tests for the process-wide metrics registry (:mod:`repro.obs.metrics`)."""

import json
import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_to_dict(self):
        c = Counter("c")
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(7)
        g.add(-2)
        assert g.value == 5
        assert g.to_dict() == {"type": "gauge", "value": 5}


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        h = Histogram("h")
        for v in [5, 1, 3, 9, 2]:
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["sum"] == 20
        assert d["min"] == 1
        assert d["max"] == 9
        assert d["mean"] == 4.0

    def test_percentiles_on_small_sample(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(50) in (50, 51)
        assert h.percentile(95) in (95, 96)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_empty_histogram(self):
        h = Histogram("h")
        d = h.to_dict()
        assert d["count"] == 0
        assert d["p50"] is None and d["p95"] is None
        assert d["min"] is None and d["max"] is None

    def test_thinning_keeps_exact_aggregates(self):
        h = Histogram("h", keep=64)
        n = 10_000
        for v in range(n):
            h.observe(v)
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.min == 0 and h.max == n - 1
        # The retained buffer is bounded and quantiles stay sane.
        assert len(h._values) <= 64
        assert n * 0.3 <= h.percentile(50) <= n * 0.7

    def test_thinning_is_deterministic(self):
        def run():
            h = Histogram("h", keep=32)
            for v in range(1000):
                h.observe(v)
            return h.to_dict()

        assert run() == run()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.names() == []
        assert reg.counter("a").value == 0

    def test_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        reg.gauge("workers").set(4)
        reg.histogram("secs").observe(0.5)
        path = tmp_path / "metrics.json"
        reg.write(str(path))
        data = json.loads(path.read_text())
        assert data["jobs"] == {"type": "counter", "value": 3}
        assert data["workers"]["value"] == 4
        assert data["secs"]["count"] == 1
        assert data == reg.to_dict()


class TestConcurrentWriters:
    """The driver's worker threads hammer shared instruments; counts must
    stay exact under contention."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, work):
        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_is_exact(self):
        c = Counter("c")
        self._hammer(lambda: [c.inc() for _ in range(self.PER_THREAD)])
        assert c.value == self.THREADS * self.PER_THREAD

    def test_histogram_count_and_sum_are_exact(self):
        h = Histogram("h", keep=256)
        self._hammer(lambda: [h.observe(1) for _ in range(self.PER_THREAD)])
        total = self.THREADS * self.PER_THREAD
        assert h.count == total
        assert h.total == total
        assert h.min == 1 and h.max == 1
        assert h.percentile(50) == 1

    def test_registry_get_or_create_race(self):
        reg = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work():
            inst = reg.counter("shared")
            with lock:
                seen.append(inst)
            inst.inc()

        self._hammer(work)
        assert len({id(i) for i in seen}) == 1  # one instrument, no dupes
        assert reg.counter("shared").value == self.THREADS
