"""Tests for search statistics bookkeeping."""

from repro.pointsto.graph import HeapEdge, StaticFieldNode
from repro.pointsto import AbsLoc
from repro.ir.instructions import AllocSite
from repro.symbolic.stats import (
    REFUTED,
    TIMEOUT,
    WITNESSED,
    EdgeResult,
    SearchStats,
)


def make_edge():
    site = AllocSite(0, "Object", "M.m", hint="object0")
    return HeapEdge(StaticFieldNode("C", "f"), "f", AbsLoc(site))


def test_status_predicates():
    edge = make_edge()
    assert EdgeResult(edge, REFUTED).refuted
    assert EdgeResult(edge, WITNESSED).witnessed
    assert EdgeResult(edge, TIMEOUT).timed_out
    assert not EdgeResult(edge, REFUTED).witnessed


def test_search_stats_aggregation():
    stats = SearchStats()
    edge = make_edge()
    stats.record(EdgeResult(edge, REFUTED, path_programs=5, seconds=0.5))
    stats.record(EdgeResult(edge, WITNESSED, path_programs=3, seconds=0.25))
    stats.record(EdgeResult(edge, TIMEOUT, path_programs=100, seconds=2.0))
    assert stats.edges_refuted == 1
    assert stats.edges_witnessed == 1
    assert stats.edges_timeout == 1
    assert stats.path_programs == 108
    assert abs(stats.seconds - 2.75) < 1e-9
