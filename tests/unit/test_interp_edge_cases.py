"""Additional interpreter edge cases: defaults, dispatch corners, limits."""

import pytest

from repro.ir import Interpreter, Limits, compile_program


def runs_of(source, **limits):
    prog = compile_program(source)
    return Interpreter(prog, Limits(**limits) if limits else None).explore()


def completed(runs):
    return [r for r in runs if r.status == "completed"]


class TestDefaults:
    def test_uninitialized_statics_are_null_or_zero(self):
        runs = runs_of(
            "class M { static Object o; static int n; static boolean b;"
            " static Object hit;"
            " static void main() {"
            "   if (M.o == null) { if (M.n == 0) { if (!M.b) {"
            "     M.hit = new Object(); } } } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))

    def test_local_declaration_without_init_defaults(self):
        runs = runs_of(
            "class M { static Object hit; static void main() {"
            " int n; boolean b; Object o;"
            " if (n == 0 && !b && o == null) { M.hit = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))

    def test_array_elements_default_null(self):
        runs = runs_of(
            "class M { static Object hit; static void main() {"
            " Object[] xs = new Object[2];"
            " if (xs[0] == null) { M.hit = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))


class TestArithmetic:
    def test_java_division_truncates_toward_zero(self):
        runs = runs_of(
            "class M { static Object hit; static void main() {"
            " int a = 0 - 7; int q = a / 2; int r = a % 2;"
            " if (q == 0 - 3 && r == 0 - 1) { M.hit = new Object(); } } }"
        )
        assert completed(runs)
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))

    def test_unary_minus(self):
        runs = runs_of(
            "class M { static Object hit; static void main() {"
            " int x = 5; int y = -x;"
            " if (y + 5 == 0) { M.hit = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))


class TestDispatchCorners:
    def test_inherited_method_runs_on_subclass_instance(self):
        runs = runs_of(
            "class Base { Object tag() { return new Object(); } }"
            " class Sub extends Base { }"
            " class M { static Object got; static void main() {"
            " Sub s = new Sub(); M.got = s.tag(); } }"
        )
        assert all(r.statics[("M", "got")] is not None for r in completed(runs))

    def test_overriding_two_levels(self):
        runs = runs_of(
            "class A { int k() { return 1; } }"
            " class B extends A { int k() { return 2; } }"
            " class C extends B { int k() { return 3; } }"
            " class M { static Object hit; static void main() {"
            " A a = new C(); if (a.k() == 3) { M.hit = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))

    def test_field_shadowing_resolution(self):
        # Our language forbids duplicate fields per class but inherited
        # fields are shared; a write through a subclass hits the base slot.
        runs = runs_of(
            "class A { int f; }"
            " class B extends A { void set() { this.f = 9; } }"
            " class M { static Object hit; static void main() {"
            " B b = new B(); b.set();"
            " A a = b; if (a.f == 9) { M.hit = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "hit")) is not None for r in completed(runs))


class TestLimits:
    def test_max_paths_caps_enumeration(self):
        runs = runs_of(
            "class M { static void main() {"
            + " ".join("boolean b%d = nondet();" % i for i in range(8))
            + " } }",
            max_paths=10,
        )
        assert len(runs) <= 10

    def test_step_limit_marks_aborted(self):
        runs = runs_of(
            "class M { static void main() {"
            " int i = 0; while (i < 100) { i = i + 1; } } }",
            max_steps=50,
            max_loop_iterations=200,
        )
        assert runs and all(r.status == "aborted" for r in runs)
