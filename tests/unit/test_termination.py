"""Tests for the may-complete-normally analysis and its use in refutation."""

import pytest

from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine
from repro.symbolic.stats import REFUTED, WITNESSED


def pta_of(source):
    return analyze(compile_program(source))


class TestNormalCompletion:
    def test_plain_method_completes(self):
        pta = pta_of("class M { static void h() { } static void main() { M.h(); } }")
        assert pta.completion.may_complete("M.h")

    def test_always_throwing_method(self):
        pta = pta_of(
            "class Err { } class M {"
            " static void boom() { throw new Err(); }"
            " static void main() { M.boom(); } }"
        )
        assert not pta.completion.may_complete("M.boom")

    def test_conditional_throw_may_complete(self):
        pta = pta_of(
            "class Err { } class M {"
            " static void maybe(int x) { if (x == 1) { throw new Err(); } }"
            " static void main() { M.maybe(0); } }"
        )
        assert pta.completion.may_complete("M.maybe")

    def test_transitive_non_completion(self):
        pta = pta_of(
            "class Err { } class M {"
            " static void boom() { throw new Err(); }"
            " static void indirect() { M.boom(); }"
            " static void main() { M.indirect(); } }"
        )
        assert not pta.completion.may_complete("M.indirect")

    def test_throw_inside_loop_still_completes(self):
        # The loop may run zero iterations.
        pta = pta_of(
            "class Err { } class M {"
            " static void f(int n) {"
            "   int i = 0;"
            "   while (i < n) { throw new Err(); } }"
            " static void main() { M.f(0); } }"
        )
        assert pta.completion.may_complete("M.f")

    def test_one_completing_branch_suffices(self):
        pta = pta_of(
            "class Err { } class M {"
            " static void f(int x) {"
            "   if (x == 1) { throw new Err(); } else { int y = 0; } }"
            " static void main() { M.f(0); } }"
        )
        assert pta.completion.may_complete("M.f")

    def test_mutual_recursion_that_never_completes(self):
        pta = pta_of(
            "class Err { } class M {"
            " static void a(int n) { M.b(n); }"
            " static void b(int n) { M.a(n); }"
            " static void main() { M.a(1); } }"
        )
        # Neither can ever fall through... but nothing throws either; the
        # greatest-fixpoint answer must stay True (they simply diverge, and
        # divergence is not provable non-completion here).
        assert pta.completion.may_complete("M.a")

    def test_unresolved_call_conservative(self):
        pta = pta_of("class M { static void main() { } }")
        assert pta.completion.call_may_complete(123_456)  # unknown label


class TestRefutationThroughThrowingCalls:
    def test_store_after_throwing_call_refuted(self):
        pta = pta_of(
            "class Err { } class Box { Object v; } class M {"
            " static void boom() { throw new Err(); }"
            " static void main() {"
            "   Box b = new Box(); Object o = new Object();"
            "   M.boom();"
            "   b.v = o; } }"
        )
        edges = [e for e in pta.graph.heap_edges() if e.field == "v"]
        assert edges
        assert Engine(pta).refute_edge(edges[0]).status == REFUTED

    def test_store_before_throwing_call_witnessed(self):
        pta = pta_of(
            "class Err { } class Box { Object v; } class M {"
            " static void boom() { throw new Err(); }"
            " static void main() {"
            "   Box b = new Box(); Object o = new Object();"
            "   b.v = o;"
            "   M.boom(); } }"
        )
        edges = [e for e in pta.graph.heap_edges() if e.field == "v"]
        assert Engine(pta).refute_edge(edges[0]).status == WITNESSED

    def test_conditionally_throwing_call_does_not_refute(self):
        pta = pta_of(
            "class Err { } class Box { Object v; } class M {"
            " static void maybe(int x) { if (x == 1) { throw new Err(); } }"
            " static void main() {"
            "   Box b = new Box(); Object o = new Object();"
            "   M.maybe(0);"
            "   b.v = o; } }"
        )
        edges = [e for e in pta.graph.heap_edges() if e.field == "v"]
        assert Engine(pta).refute_edge(edges[0]).status == WITNESSED
