"""Unit tests for the mixed symbolic-explicit query structure."""

from repro.ir.instructions import AllocSite
from repro.pointsto.graph import AbsLoc
from repro.solver import NULL, LinExpr, eq, ref_eq
from repro.symbolic import Query, query_entails


def loc(name, cls="Object"):
    return AbsLoc(AllocSite(hash(name) % 10_000, cls, "M.m", hint=name))


A, B, C = loc("a0"), loc("b0"), loc("c0")


def fresh_query():
    return Query("M.m")


class TestRegions:
    def test_empty_region_fails_immediately(self):
        q = fresh_query()
        q.new_ref(frozenset())
        assert q.failed

    def test_narrow_intersects(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A, B}))
        assert q.narrow(v, frozenset({B, C}))
        assert q.region_of(v) == frozenset({B})

    def test_narrow_to_empty_refutes(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}))
        assert not q.narrow(v, frozenset({B}))
        assert q.failed

    def test_narrow_none_is_noop(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}))
        assert q.narrow(v, None)
        assert q.region_of(v) == frozenset({A})

    def test_unconstrained_var_has_no_region(self):
        q = fresh_query()
        v = q.new_ref(None)
        assert q.region_of(v) is None


class TestUnification:
    def test_unify_intersects_regions(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A, B}))
        u = q.new_ref(frozenset({B, C}))
        assert q.unify(v, u)
        assert q.region_of(v) == frozenset({B})
        assert q.find(v) is q.find(u)

    def test_unify_disjoint_regions_refutes(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}))
        u = q.new_ref(frozenset({B}))
        assert not q.unify(v, u)
        assert q.failed

    def test_unify_merges_field_cells(self):
        q = fresh_query()
        v1 = q.new_ref(frozenset({A}))
        v2 = q.new_ref(frozenset({A}))
        u1 = q.new_ref(frozenset({B, C}))
        u2 = q.new_ref(frozenset({B}))
        q.set_field(v1, "f", u1)
        q.set_field(v2, "f", u2)
        assert q.unify(v1, v2)
        # The two cells collapse into one; values unified.
        assert len(q.field_cells) == 1
        assert q.find(u1) is q.find(u2)
        assert q.region_of(u1) == frozenset({B})

    def test_unify_nonnull_wins(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}), maybe_null=True)
        u = q.new_ref(frozenset({A}), maybe_null=False)
        q.unify(v, u)
        assert not q.is_maybe_null(v)

    def test_array_cells_merge_on_same_base_and_index(self):
        q = fresh_query()
        base = q.new_ref(frozenset({A}))
        idx = q.new_data()
        u1 = q.new_ref(frozenset({B, C}))
        u2 = q.new_ref(frozenset({C}))
        q.add_array_cell(base, idx, u1)
        q.add_array_cell(base, idx, u2)
        assert len(q.array_cells) == 1
        assert q.find(u1) is q.find(u2)


class TestSeparation:
    def test_local_rebinding_unifies(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A, B}))
        u = q.new_ref(frozenset({B, C}))
        q.set_local("x", v)
        assert q.set_local("x", u)
        assert q.find(v) is q.find(u)

    def test_distinct_field_cells_imply_base_disequality(self):
        q = fresh_query()
        b1 = q.new_ref(frozenset({A}))
        b2 = q.new_ref(frozenset({A}))
        q.set_field(b1, "f", q.new_ref(frozenset({B})))
        q.set_field(b2, "f", q.new_ref(frozenset({B})))
        q.add_pure(ref_eq(q.find(b1), q.find(b2)))
        assert not q.check_sat()

    def test_null_base_contradiction(self):
        q = fresh_query()
        b = q.new_ref(frozenset({A}))
        q.set_field(b, "f", q.new_ref(frozenset({B})))
        q.add_pure(ref_eq(q.find(b), NULL))
        assert not q.check_sat()

    def test_maybe_null_value_can_be_null(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}), maybe_null=True)
        q.set_local("x", v)
        q.add_pure(ref_eq(q.find(v), NULL))
        assert q.check_sat()


class TestStateStructure:
    def test_memory_empty_after_consuming(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A}))
        q.set_local("x", v)
        assert not q.is_memory_empty()
        q.del_local("x")
        assert q.is_memory_empty()

    def test_copy_is_independent(self):
        q = fresh_query()
        v = q.new_ref(frozenset({A, B}))
        q.set_local("x", v)
        q2 = q.copy()
        q2.narrow(v, frozenset({A}))
        assert q.region_of(v) == frozenset({A, B})
        assert q2.region_of(v) == frozenset({A})

    def test_frames_push_pop(self):
        q = fresh_query()
        assert q.current_frame == 0
        fid = q.push_frame("C.m", 42)
        assert q.current_frame == fid != 0
        assert q.current_method == "C.m"
        q.pop_frame()
        assert q.current_frame == 0
        assert q.current_method == "M.m"

    def test_guard_cap_refuses_new_constraints(self):
        # The path-constraint cap keeps the guards nearest the query point
        # (added first during the backwards walk) and refuses later ones.
        q = fresh_query()
        d1, d2, d3 = q.new_data(), q.new_data(), q.new_data()
        q.add_pure(eq(LinExpr.var(d1), LinExpr.constant(1)), guard=True, cap=2)
        q.add_pure(eq(LinExpr.var(d2), LinExpr.constant(2)), guard=True, cap=2)
        q.add_pure(eq(LinExpr.var(d3), LinExpr.constant(3)), guard=True, cap=2)
        guards = [a for a, g in q.pure if g]
        assert len(guards) == 2
        remaining_vars = {v for a in guards for v in a.vars()}
        assert d1 in remaining_vars
        assert d3 not in remaining_vars

    def test_instance_counts(self):
        q = fresh_query()
        v1 = q.new_ref(frozenset({A}))
        v2 = q.new_ref(frozenset({A}))
        q.set_field(v1, "f", v2)
        counts = q.instance_counts()
        assert counts[A] == 2


class TestEntailment:
    def test_identical_queries_entail(self):
        q1, q2 = fresh_query(), fresh_query()
        for q in (q1, q2):
            v = q.new_ref(frozenset({A}))
            q.set_local("x", v)
        assert query_entails(q1, q2)
        assert query_entails(q2, q1)

    def test_extra_constraints_make_stronger(self):
        q1, q2 = fresh_query(), fresh_query()
        for q, extra in ((q1, True), (q2, False)):
            v = q.new_ref(frozenset({A}))
            q.set_local("x", v)
            if extra:
                u = q.new_ref(frozenset({B}))
                q.set_field(v, "f", u)
        assert query_entails(q1, q2)  # strong ⊨ weak
        assert not query_entails(q2, q1)

    def test_smaller_region_is_stronger(self):
        q1, q2 = fresh_query(), fresh_query()
        v1 = q1.new_ref(frozenset({A}))
        q1.set_local("x", v1)
        v2 = q2.new_ref(frozenset({A, B}))
        q2.set_local("x", v2)
        assert query_entails(q1, q2)
        assert not query_entails(q2, q1)

    def test_different_stack_signatures_incomparable(self):
        q1, q2 = fresh_query(), fresh_query()
        q2.push_frame("C.m", 7)
        assert not query_entails(q1, q2)

    def test_failed_query_entails_everything(self):
        q1, q2 = fresh_query(), fresh_query()
        q1.fail("test")
        assert query_entails(q1, q2)
