"""Tests for ``assert`` statements and their interaction with refutation."""

import pytest

from repro.ir import Interpreter, compile_program
from repro.lang import ast, frontend, parse_program
from repro.lang.errors import TypeCheckError
from repro.pointsto import analyze
from repro.symbolic import Engine
from repro.symbolic.stats import REFUTED, WITNESSED


class TestFrontend:
    def test_parses(self):
        unit = parse_program("class A { void m(int x) { assert x == 1; } }")
        assert isinstance(unit.classes[0].methods[0].body.stmts[0], ast.Assert)

    def test_requires_boolean(self):
        with pytest.raises(TypeCheckError):
            frontend("class A { void m(int x) { assert x; } }")

    def test_pretty_round_trip(self):
        from repro.lang.pretty import pretty_program

        unit = parse_program("class A { void m(int x) { assert x < 2; } }")
        assert "assert" in pretty_program(unit)


class TestSemantics:
    def test_passing_assert_continues(self):
        prog = compile_program(
            "class M { static Object done; static void main() {"
            " int x = 1; assert x == 1; M.done = new Object(); } }"
        )
        runs = Interpreter(prog).explore()
        assert all(r.status == "completed" for r in runs)
        assert all(r.statics[("M", "done")] is not None for r in runs)

    def test_failing_assert_aborts(self):
        prog = compile_program(
            "class M { static Object done; static void main() {"
            " int x = 1; assert x == 2; M.done = new Object(); } }"
        )
        runs = Interpreter(prog).explore()
        assert all(r.status == "aborted" for r in runs)
        assert all(r.statics.get(("M", "done")) is None for r in runs)

    def test_assert_blocks_refutation_paths(self):
        # The store happens only on paths where the assert passed; the
        # engine must treat the failing branch as terminating.
        prog = compile_program(
            "class Box { Object v; } class M { static void main() {"
            " int x = 2;"
            " assert x == 1;"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        pta = analyze(prog)
        edges = [e for e in pta.graph.heap_edges() if e.field == "v"]
        engine = Engine(pta)
        # x == 2 contradicts the passing assume: no feasible path.
        assert engine.refute_edge(edges[0]).status == REFUTED

    def test_assert_true_transparent_to_refuter(self):
        prog = compile_program(
            "class Box { Object v; } class M { static void main() {"
            " int x = 1;"
            " assert x == 1;"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        pta = analyze(prog)
        edges = [e for e in pta.graph.heap_edges() if e.field == "v"]
        engine = Engine(pta)
        assert engine.refute_edge(edges[0]).status == WITNESSED
