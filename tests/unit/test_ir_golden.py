"""Golden tests: exact IR shape for representative lowerings.

These lock the builder's desugarings (the paper's `if`/`while` encodings,
interrupt flags, constructor synthesis) against accidental drift.
"""

import textwrap

import pytest

from repro.ir import compile_program, print_method


def ir_of(source, qname):
    program = compile_program(source, want_entry=False)
    return print_method(program.methods[qname]).strip()


def golden(text):
    return textwrap.dedent(text).strip()


def test_if_else_lowering():
    actual = ir_of(
        "class A { void m(int x) { if (x < 3) { x = 1; } else { x = 2; } } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this, x):
          choice
            [] branch 0:
              assume (x < 3)
              x := 1
            [] branch 1:
              assume !((x < 3))
              x := 2
        """
    )


def test_while_lowering():
    actual = ir_of(
        "class A { void m(int n) { int i = 0; while (i < n) { i = i + 1; } } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this, n):
          i := 0
          loop
            assume (i < n)
            $t0 := i + 1
            i := $t0
          assume !((i < n))
        """
    )


def test_early_return_lowering():
    actual = ir_of(
        "class A { int m(int x) { if (x < 0) { return 0; } return x; } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this, x):
          $fin := false
          choice
            [] branch 0:
              assume (x < 0)
              $ret := 0
              $fin := true
            [] branch 1:
              assume !((x < 0))
          choice
            [] branch 0:
              assume !($fin)
              $ret := x
              $fin := true
            [] branch 1:
              assume $fin
        """
    )


def test_constructor_synthesis():
    actual = ir_of(
        "class B { } class A extends B { Object f = new Object(); A() { int x = 1; } }",
        "A.<init>",
    )
    assert actual == golden(
        """
        method A.<init>(this):
          this.<init>()
          $t0 := new_object0 Object
          $t0.<init>()
          this.f := $t0
          x := 1
        """
    )


def test_field_write_chain_lowering():
    actual = ir_of(
        "class A { A next; Object v; void m() { this.next.v = this.next; } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this):
          $t0 := this.next
          $t1 := this.next
          $t0.v := $t1
        """
    )


def test_assert_lowering():
    actual = ir_of("class A { void m(int x) { assert x == 1; } }", "A.m")
    assert actual == golden(
        """
        method A.m(this, x):
          choice
            [] branch 0:
              assume (x == 1)
            [] branch 1:
              assume !((x == 1))
              $t0 := new_object0 Object
              throw $t0
        """
    )


def test_break_lowering():
    actual = ir_of(
        "class A { void m(int n) { while (true) { if (n == 0) { break; } n = n - 1; } } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this, n):
          $brk0 := false
          loop
            assume !($brk0)
            assume true
            choice
              [] branch 0:
                assume (n == 0)
                $brk0 := true
              [] branch 1:
                assume !((n == 0))
            choice
              [] branch 0:
                assume !($brk0)
                $t0 := n - 1
                n := $t0
              [] branch 1:
                assume $brk0
          choice
            [] branch 0:
              assume !($brk0)
              assume !(true)
            [] branch 1:
              assume $brk0
          $brk0 := false
        """
    )


def test_short_circuit_guard_stays_symbolic():
    actual = ir_of(
        "class A { void m(int x, int y) { if (x < 1 && y < 2) { x = 0; } } }",
        "A.m",
    )
    assert actual == golden(
        """
        method A.m(this, x, y):
          choice
            [] branch 0:
              assume ((x < 1) && (y < 2))
              x := 0
            [] branch 1:
              assume !(((x < 1) && (y < 2)))
        """
    )
