"""Unit tests for the bench apps, workload generators, and table renderers."""

import pytest

from repro.android.harness import build_full_source
from repro.bench import APPS, app_by_name, branchy_app, chain_app, container_app
from repro.lang import frontend
from repro.reporting import (
    Table1Row,
    Table2Row,
    render_table1,
    render_table2,
)


class TestBenchApps:
    def test_seven_apps_like_the_paper(self):
        assert len(APPS) == 7
        assert [a.name for a in APPS] == [
            "PulsePoint",
            "StandupTimer",
            "DroidLife",
            "OpenSudoku",
            "SMSPopUp",
            "aMetro",
            "K9Mail",
        ]

    @pytest.mark.parametrize("app", APPS, ids=lambda a: a.name)
    def test_every_app_compiles_with_harness(self, app):
        frontend(build_full_source(app.source))

    def test_app_lookup(self):
        assert app_by_name("k9mail").name == "K9Mail"
        with pytest.raises(KeyError):
            app_by_name("nope")

    def test_k9mail_contains_figure5_pattern(self):
        app = app_by_name("K9Mail")
        assert "getInstance" in app.source
        assert "ResourceCursorAdapter" in app.source

    def test_standuptimer_contains_latent_flag(self):
        app = app_by_name("StandupTimer")
        assert "cacheDAOInstances = false" in app.source


class TestWorkloadGenerators:
    @pytest.mark.parametrize("depth", [0, 1, 5])
    def test_chain_app_compiles(self, depth):
        frontend(build_full_source(chain_app(depth)))

    @pytest.mark.parametrize("branches,leaky", [(1, True), (3, False)])
    def test_branchy_app_compiles(self, branches, leaky):
        frontend(build_full_source(branchy_app(branches, leaky)))

    @pytest.mark.parametrize("n", [1, 4])
    def test_container_app_compiles(self, n):
        source = container_app(n)
        frontend(build_full_source(source))
        assert source.count("class LocalAct") == n


def _row(app="X", annotated=False, **over):
    base = dict(
        app=app,
        annotated=annotated,
        sloc=10,
        cg_commands=100,
        alarms=10,
        refuted_alarms=6,
        true_alarms=3,
        false_alarms=1,
        fields=4,
        refuted_fields=2,
        edges_refuted=8,
        edges_witnessed=5,
        edge_timeouts=0,
        seconds=1.25,
        unsound_refutations=0,
    )
    base.update(over)
    return Table1Row(**base)


class TestRenderers:
    def test_table1_renders_rows_and_totals(self):
        text = render_table1([_row("Alpha"), _row("Beta", annotated=True)])
        assert "Alpha" in text and "Beta" in text
        assert text.count("Total") == 2  # one per configuration
        assert "Ann?" in text

    def test_table1_percentages(self):
        row = _row(alarms=4, refuted_alarms=2, true_alarms=1, false_alarms=1)
        assert row.pct(row.refuted_alarms) == 50
        assert _row(alarms=0, refuted_alarms=0).pct(0) == 0

    def test_table2_slowdown(self):
        row = Table2Row(
            app="X",
            annotated=False,
            mixed_seconds=2.0,
            symbolic_seconds=5.0,
            mixed_timeouts=0,
            symbolic_timeouts=2,
            mixed_refuted_alarms=4,
            symbolic_refuted_alarms=4,
        )
        assert row.slowdown == pytest.approx(2.5)
        assert row.timeout_delta == 2
        text = render_table2([row])
        assert "2.5X" in text and "+2" in text

    def test_table2_zero_mixed_time(self):
        row = Table2Row("X", False, 0.0, 3.0, 0, 0, 1, 1)
        assert row.slowdown == 1.0
