"""Unit and property tests for the pure-constraint decision procedure."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    NULL,
    LinAtom,
    LinExpr,
    UnionFind,
    check_sat,
    entails,
    eq,
    le,
    lt,
    ne,
    ref_eq,
    ref_ne,
    tighten,
)

X, Y, Z = "x", "y", "z"


def v(name):
    return LinExpr.var(name)


def k(c):
    return LinExpr.constant(c)


class TestUnionFind:
    def test_fresh_items_are_own_roots(self):
        uf = UnionFind()
        assert uf.find("a") == "a"

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.same("a", "b")

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")

    def test_copy_is_independent(self):
        uf = UnionFind()
        uf.union("a", "b")
        other = uf.copy()
        other.union("a", "c")
        assert not uf.same("a", "c")
        assert other.same("a", "c")


class TestLinExpr:
    def test_canonical_drops_zero_coeffs(self):
        expr = v(X).sub(v(X))
        assert expr.is_constant and expr.const == 0

    def test_add_and_scale(self):
        expr = v(X).scale(2).add(v(Y)).add(k(3))
        assert expr.as_dict() == {X: 2, Y: 1}
        assert expr.const == 3

    def test_rename_merges_coefficients(self):
        expr = v(X).add(v(Y))
        renamed = expr.rename({Y: X})
        assert renamed.as_dict() == {X: 2}

    def test_tighten_divides_by_gcd(self):
        # 2x - 5 <= 0  =>  x <= 2 (integers)
        expr = v(X).scale(2).add(k(-5))
        tightened = tighten(expr)
        assert tightened.as_dict() == {X: 1}
        assert tightened.const == -2


class TestLinearSat:
    def test_trivially_sat(self):
        assert check_sat([])

    def test_simple_bound_sat(self):
        assert check_sat([le(v(X), k(5)), le(k(0), v(X))])

    def test_contradictory_bounds_unsat(self):
        assert not check_sat([le(v(X), k(0)), le(k(1), v(X))])

    def test_figure1_refutation(self):
        # The paper's Figure 1 core contradiction:
        #   sz < cap (path constraint) vs sz = 0, cap = -1 (constructor).
        sz, cap = v("sz"), v("cap")
        atoms = [lt(sz, cap), eq(sz, k(0)), eq(cap, k(-1))]
        assert not check_sat(atoms)

    def test_figure1_before_constructor_is_sat(self):
        assert check_sat([lt(v("sz"), v("cap"))])

    def test_strict_inequality_integer_semantics(self):
        # x < y and y < x + 2 forces y = x + 1 over Z: satisfiable.
        atoms = [lt(v(X), v(Y)), lt(v(Y), v(X).add(k(2)))]
        assert check_sat(atoms)
        # Adding y != x + 1 then makes it unsat.
        atoms.append(ne(v(Y), v(X).add(k(1))))
        assert not check_sat(atoms)

    def test_integer_tightening_detects_gap(self):
        # 2x = 1 has no integer... our eq elimination keeps it as two
        # inequalities; tightening makes 2x <= 1 into x <= 0 and
        # -2x <= -1 into -x <= -1, i.e. x >= 1: unsat.
        assert not check_sat([eq(v(X).scale(2), k(1))])

    def test_chain_of_differences(self):
        atoms = [le(v(X), v(Y)), le(v(Y), v(Z)), lt(v(Z), v(X))]
        assert not check_sat(atoms)

    def test_equality_substitution(self):
        atoms = [eq(v(X), v(Y)), lt(v(X), k(3)), lt(k(1), v(Y))]
        assert check_sat(atoms)  # x = y = 2
        atoms.append(ne(v(Y), k(2)))
        assert not check_sat(atoms)

    def test_disequality_sat_when_slack(self):
        assert check_sat([ne(v(X), v(Y))])

    def test_forced_equality_violates_disequality(self):
        atoms = [le(v(X), v(Y)), le(v(Y), v(X)), ne(v(X), v(Y))]
        assert not check_sat(atoms)

    def test_constant_disequality(self):
        assert not check_sat([ne(k(0), k(0))])
        assert check_sat([ne(k(0), k(1))])

    def test_multiplication_by_constant(self):
        # cap = len * 2, len = 1  =>  cap = 2; cap <= 1 contradicts.
        cap, ln = v("cap"), v("len")
        atoms = [eq(cap, ln.scale(2)), eq(ln, k(1)), le(cap, k(1))]
        assert not check_sat(atoms)


class TestRefSat:
    def test_eq_and_ne_conflict(self):
        assert not check_sat([ref_eq("a", "b"), ref_ne("a", "b")])

    def test_transitive_eq_conflict(self):
        atoms = [ref_eq("a", "b"), ref_eq("b", "c"), ref_ne("a", "c")]
        assert not check_sat(atoms)

    def test_null_equality_with_nonnull_var(self):
        assert not check_sat([ref_eq("a", NULL)], nonnull=frozenset(["a"]))

    def test_null_equality_without_nonnull_ok(self):
        assert check_sat([ref_eq("a", NULL)])

    def test_transitive_null_propagation(self):
        atoms = [ref_eq("a", "b"), ref_eq("b", NULL)]
        assert not check_sat(atoms, nonnull=frozenset(["a"]))

    def test_distinct_vars_sat(self):
        assert check_sat([ref_ne("a", "b"), ref_ne("b", "c"), ref_ne("a", "c")])

    def test_null_ne_null_unsat(self):
        assert not check_sat([ref_ne(NULL, NULL)])


class TestEntailment:
    def test_superset_entails(self):
        strong = [le(v(X), k(0)), le(v(Y), k(0))]
        weak = [le(v(X), k(0))]
        assert entails(strong, weak)
        assert not entails(weak, strong)

    def test_ref_atom_orientation_irrelevant(self):
        assert entails([ref_eq("a", "b")], [ref_eq("b", "a")])

    def test_empty_is_weakest(self):
        assert entails([le(v(X), k(0))], [])


# ---------------------------------------------------------------------------
# Property-based: compare against brute-force evaluation on small domains.
# ---------------------------------------------------------------------------

_vars = ["x", "y", "z"]


def _eval_expr(expr, env):
    return sum(c * env[v] for v, c in expr.coeffs) + expr.const


def _eval_atom(atom, env):
    value = _eval_expr(atom.expr, env)
    if atom.op == "<=":
        return value <= 0
    if atom.op == "==":
        return value == 0
    return value != 0


@st.composite
def lin_atoms(draw):
    n_terms = draw(st.integers(0, 3))
    terms = {}
    for _ in range(n_terms):
        var = draw(st.sampled_from(_vars))
        terms[var] = draw(st.integers(-3, 3))
    const = draw(st.integers(-4, 4))
    op = draw(st.sampled_from(["<=", "==", "!="]))
    return LinAtom(op, LinExpr.of(terms, const))


@settings(max_examples=300, deadline=None)
@given(st.lists(lin_atoms(), max_size=4))
def test_solver_never_refutes_satisfiable_systems(atoms):
    """Refutation soundness of the solver itself: if a small-domain model
    exists, check_sat must not answer UNSAT."""
    domain = range(-6, 7)
    has_model = any(
        all(_eval_atom(a, {"x": x, "y": y, "z": z}) for a in atoms)
        for x in domain
        for y in domain
        for z in domain
    )
    result = check_sat(atoms)
    if has_model:
        assert result, f"refuted satisfiable system: {[str(a) for a in atoms]}"


@settings(max_examples=200, deadline=None)
@given(st.lists(lin_atoms(), max_size=3))
def test_solver_unsat_implies_no_small_model(atoms):
    """Completeness spot-check on the small domain: UNSAT answers must have
    no model even in a widened window (here the solver is exact since all
    coefficients and constants are tiny)."""
    if check_sat(atoms):
        return
    domain = range(-12, 13)
    for x in domain:
        for y in domain:
            for z in domain:
                env = {"x": x, "y": y, "z": z}
                assert not all(
                    _eval_atom(a, env) for a in atoms
                ), f"UNSAT system has model {env}: {[str(a) for a in atoms]}"


class TestBudgets:
    def test_fm_giveup_is_conservative_sat(self):
        # Build a system large enough to blow the FM budget: the solver
        # must answer SAT (refutation-sound give-up), not UNSAT.
        import repro.solver.core as core

        variables = [f"w{i}" for i in range(40)]
        atoms = []
        for i, a in enumerate(variables):
            for b in variables[i + 1 :]:
                atoms.append(le(v(a).add(v(b)), k(10)))
                atoms.append(le(k(-10), v(a).sub(v(b))))
        stats = core.SolverStats()
        assert core.check_sat(atoms, stats=stats)
        assert stats.fm_giveups >= 0  # may or may not trip, but never UNSAT

    def test_stats_counters_accumulate(self):
        from repro.solver.core import SolverStats, check_sat as cs

        stats = SolverStats()
        cs([le(v(X), k(0)), le(k(1), v(X))], stats=stats)
        cs([], stats=stats)
        assert stats.checks == 2
        assert stats.unsat == 1
