"""Unit tests for the parallel refutation driver (``repro.engine``)."""

import importlib.util
import json
import os

import pytest

from repro.android.leaks import LeakChecker
from repro.engine import (
    EdgeFinished,
    ProgressPrinter,
    RefutationDriver,
    RunFinished,
    RunReport,
    RunStarted,
)
from repro.ir import compile_program
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.stats import REFUTED, TIMEOUT, WITNESSED

SOURCE = """
class Box { Object v; }
class Main {
    static void main() {
        int flag = 0;
        Object o = new String();
        if (flag == 1) { o = new Object(); }   // dead branch
        Box b = new Box();
        b.v = o;
    }
}
"""

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _example_app(name: str) -> str:
    """Load the ``APP`` source string from an ``examples/*.py`` script."""
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", os.path.join(EXAMPLES, f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.APP


@pytest.fixture(scope="module")
def pta():
    return analyze(compile_program(SOURCE))


@pytest.fixture(scope="module")
def edges(pta):
    return sorted(pta.graph.heap_edges(), key=str)


class TestSerialDriver:
    def test_matches_bare_engine(self, pta, edges):
        engine = Engine(pta, SearchConfig())
        driver = RefutationDriver(pta, SearchConfig(), jobs=1)
        for edge in edges:
            assert driver.refute_edge(edge).status == engine.refute_edge(edge).status

    def test_backend_is_serial(self, pta):
        assert RefutationDriver(pta, jobs=1).backend == "serial"

    def test_rejects_zero_jobs(self, pta):
        with pytest.raises(ValueError):
            RefutationDriver(pta, jobs=0)

    def test_refute_path_stops_at_first_refuted(self, pta, edges):
        driver = RefutationDriver(pta, jobs=1)
        examined = driver.refute_path(edges)
        # Path order: the refuted object-edge sorts first, so the serial
        # walk must stop there without touching the second edge.
        statuses = [r.status for _, r in examined]
        assert statuses[-1] == REFUTED
        assert len(examined) <= len(edges)

    def test_cache_shared_with_engine(self, pta, edges):
        driver = RefutationDriver(pta, jobs=1)
        driver.refute_edges(edges)
        assert len(driver.engine.edge_results()) == len(edges)


class TestParallelDriver:
    def test_verdicts_match_serial(self, pta, edges):
        serial = RefutationDriver(pta, jobs=1).refute_edges(edges)
        with RefutationDriver(pta, jobs=4) as driver:
            parallel = driver.refute_edges(edges)
        assert {k: v.status for k, v in serial.items()} == {
            k: v.status for k, v in parallel.items()
        }

    def test_jobs_parity_on_singleton_leak_example(self):
        """``--jobs 1`` and ``--jobs 4`` agree on examples/singleton_leak.py."""
        app = _example_app("singleton_leak")
        r1 = LeakChecker(app, "k9", jobs=1).run()
        r4 = LeakChecker(app, "k9", jobs=4).run()
        verdicts1 = {(str(a.root), str(a.target)): a.status for a in r1.alarms}
        verdicts4 = {(str(a.root), str(a.target)): a.status for a in r4.alarms}
        assert verdicts1 == verdicts4
        # Per-edge verdicts agree on every edge both runs examined.
        s1 = r1.run_report.statuses()
        s4 = r4.run_report.statuses()
        common = set(s1) & set(s4)
        assert common
        assert all(s1[d] == s4[d] for d in common)

    def test_events_stream(self, pta, edges):
        events = []
        with RefutationDriver(pta, jobs=2, on_event=events.append) as driver:
            driver.refute_edges(edges)
        kinds = [type(e).__name__ for e in events]
        assert kinds[0] == "RunStarted"
        assert kinds[-1] == "RunFinished"
        assert kinds.count("EdgeFinished") == len(edges)
        finished = [e for e in events if isinstance(e, EdgeFinished)]
        assert {e.status for e in finished} == {REFUTED, WITNESSED}

    def test_cached_results_not_recomputed(self, pta, edges):
        with RefutationDriver(pta, jobs=2) as driver:
            driver.refute_edges(edges)
            events = []
            driver.events.subscribe(events.append)
            driver.refute_edges(edges)
        finished = [e for e in events if isinstance(e, EdgeFinished)]
        assert all(e.cached for e in finished)


class TestDeadline:
    def test_deadline_fires_timeout(self):
        """A tiny wall-clock deadline converts searched edges to TIMEOUT."""
        app = _example_app("singleton_leak")
        checker = LeakChecker(app, "k9", deadline=0.0)
        report = checker.run()
        statuses = {r.status for r in report.edge_results.values()}
        assert TIMEOUT in statuses
        # TIMEOUT is not-refuted: no alarm may be filtered by a timeout.
        assert all(not a.refuted or a.status == "refuted" for a in report.alarms)

    def test_deadline_recorded_in_report(self, pta, edges):
        driver = RefutationDriver(pta, jobs=1, deadline=0.5)
        driver.refute_edges(edges)
        report = driver.build_report(app="t", command="check")
        assert report.deadline == 0.5

    def test_no_deadline_means_no_timeout_here(self, pta, edges):
        driver = RefutationDriver(pta, jobs=1)
        results = driver.refute_edges(edges)
        assert all(not r.timed_out for r in results.values())

    def test_engine_level_deadline(self, pta, edges):
        engine = Engine(pta, SearchConfig(deadline_seconds=0.0))
        # Any edge whose refutation needs at least one search step times out.
        statuses = {engine.refute_edge(e).status for e in edges}
        assert statuses == {TIMEOUT}


class TestRunReport:
    def test_json_round_trip(self, pta, edges):
        driver = RefutationDriver(pta, jobs=1, deadline=2.0)
        driver.refute_edges(edges)
        report = driver.build_report(app="roundtrip", command="check")
        payload = json.loads(report.to_json())
        assert payload["app"] == "roundtrip"
        assert payload["summary"]["refuted"] == report.edges_refuted
        clone = RunReport.from_json(report.to_json())
        assert clone.statuses() == report.statuses()
        assert clone.deadline == report.deadline
        assert clone.jobs == report.jobs
        assert len(clone.records) == len(edges)

    def test_write_and_read_file(self, pta, edges, tmp_path):
        driver = RefutationDriver(pta, jobs=1)
        driver.refute_edges(edges)
        path = tmp_path / "report.json"
        driver.build_report().write(str(path))
        clone = RunReport.from_json(path.read_text())
        assert clone.statuses() == driver.build_report().statuses()

    def test_leak_report_carries_run_report(self):
        app = _example_app("singleton_leak")
        report = LeakChecker(app, "k9").run()
        assert report.run_report is not None
        assert report.run_report.app == "k9"
        assert len(report.run_report.records) == len(report.edge_results)
        assert report.run_report.wall_seconds == report.seconds


class TestFactJobs:
    def test_refute_facts_order_preserved(self):
        from repro.clients import check_casts

        source = """
        class A { void m() {} }
        class B extends A {}
        class Main {
            static void main() {
                A x = new B();
                B y = (B) x;
                A z = new A();
                A w = (A) z;
            }
        }
        """
        pta = analyze(compile_program(source))
        serial = check_casts(pta)
        with RefutationDriver(pta, jobs=3) as driver:
            parallel = check_casts(pta, engine=driver)
        assert [(r.label, r.status) for r in serial] == [
            (r.label, r.status) for r in parallel
        ]


class TestBudgetBaseline:
    def test_refute_fact_at_budget_zero_uses_zero_baseline(self, pta):
        """``budget=0`` must not silently fall back to the config budget
        (the ``budget or default`` falsy bug): the search gets zero path
        programs, and the explored count is computed from the 0 baseline."""
        program = pta.program
        label = next(
            cmd.label
            for cmd in program.commands.values()
            if type(cmd).__name__ == "FieldWrite"
        )
        loc = next(iter(pta.graph.all_abs_locs()))
        engine = Engine(pta, SearchConfig(path_budget=10_000))
        result = engine.refute_fact_at(label, [("b", frozenset({loc}))], budget=0)
        # With the falsy fallback this reported ~10_000 explored paths.
        assert result.path_programs <= 1

    def test_refute_fact_at_none_budget_uses_config(self, pta):
        program = pta.program
        label = next(
            cmd.label
            for cmd in program.commands.values()
            if type(cmd).__name__ == "FieldWrite"
        )
        loc = next(iter(pta.graph.all_abs_locs()))
        engine = Engine(pta, SearchConfig(path_budget=50))
        result = engine.refute_fact_at(label, [("b", frozenset({loc}))])
        assert result.path_programs <= 50


class TestProgressPrinter:
    def test_renders_all_event_kinds(self, pta, edges, capsys):
        import sys

        printer = ProgressPrinter(stream=sys.stderr)
        driver = RefutationDriver(pta, jobs=1, on_event=printer)
        driver.refute_edges(edges)
        err = capsys.readouterr().err
        assert "refuting" in err
        assert "done:" in err
        assert "refuted" in err
