"""Unit tests for the bounded concrete interpreter."""

from repro.ir import Interpreter, Limits, compile_program, heap_reaches


def run_all(source, **limit_kwargs):
    prog = compile_program(source)
    interp = Interpreter(prog, Limits(**limit_kwargs) if limit_kwargs else None)
    return prog, interp.explore()


def completed(runs):
    return [r for r in runs if r.status == "completed"]


class TestBasics:
    def test_straight_line_single_run(self):
        _, runs = run_all("class A { static void main() { int x = 1 + 2; } }")
        assert len(completed(runs)) == 1

    def test_static_write_recorded(self):
        prog, runs = run_all(
            "class A { static Object o; static void main() { A.o = new Object(); } }"
        )
        (run,) = completed(runs)
        assert run.statics[("A", "o")] is not None
        (edge,) = run.produced
        assert edge.src == ("static", "A", "o")

    def test_field_write_produces_edge(self):
        prog, runs = run_all(
            "class Box { Object v; }"
            " class A { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        (run,) = completed(runs)
        edges = [e for e in run.produced if e.field_name == "v"]
        assert len(edges) == 1
        assert edges[0].src.class_name == "Box"
        assert edges[0].dst.class_name == "Object"

    def test_array_write_produces_elems_edge(self):
        _, runs = run_all(
            "class A { static void main() {"
            " Object[] xs = new Object[2]; xs[0] = new Object(); } }"
        )
        (run,) = completed(runs)
        assert any(e.field_name == "@elems" for e in run.produced)

    def test_arithmetic_semantics(self):
        prog, runs = run_all(
            "class A { static int r; static int compute() {"
            " return (7 + 3) * 2 - 9 / 2; }"
            " static void main() { int x = A.compute(); A.r = x + 0; } }"
        )
        # r is an int static; no heap edge, but check by re-running with a
        # static object guard: instead verify via a conditional allocation.
        assert completed(runs)

    def test_branch_forks_runs(self):
        _, runs = run_all(
            "class A { static void main() {"
            " boolean b = nondet(); if (b) { int x = 1; } else { int y = 2; } } }"
        )
        assert len(completed(runs)) == 2

    def test_infeasible_branch_pruned(self):
        _, runs = run_all(
            "class A { static Object o; static void main() {"
            " int x = 1; if (x > 5) { A.o = new Object(); } } }"
        )
        (run,) = completed(runs)
        assert run.produced == []

    def test_loop_iterates(self):
        _, runs = run_all(
            "class A { static void main() {"
            " int i = 0; int s = 0; while (i < 3) { s = s + i; i = i + 1; } } }"
        )
        assert len(completed(runs)) == 1  # deterministic loop: one feasible path

    def test_loop_bound_truncates(self):
        _, runs = run_all(
            "class A { static void main() {"
            " int i = 0; while (i < 100) { i = i + 1; } } }",
            max_loop_iterations=4,
        )
        # No feasible completion within the bound; nothing enumerated.
        assert completed(runs) == []

    def test_null_deref_aborts(self):
        _, runs = run_all(
            "class Box { Object v; } class A { static void main() {"
            " Box b = null; b.v = new Object(); } }"
        )
        assert runs and runs[0].status == "aborted"
        assert "null" in runs[0].reason

    def test_division_by_zero_aborts(self):
        _, runs = run_all(
            "class A { static void main() { int z = 0; int x = 1 / z; } }"
        )
        assert runs[0].status == "aborted"

    def test_array_bounds_checked(self):
        _, runs = run_all(
            "class A { static void main() {"
            " Object[] xs = new Object[1]; Object o = xs[5]; } }"
        )
        assert runs[0].status == "aborted"


class TestCallsAndDispatch:
    def test_static_call_returns_value(self):
        _, runs = run_all(
            "class A { static Object o;"
            " static Object make() { return new Object(); }"
            " static void main() { A.o = A.make(); } }"
        )
        (run,) = completed(runs)
        assert run.statics[("A", "o")] is not None

    def test_virtual_dispatch_picks_override(self):
        _, runs = run_all(
            "class Base { static Object o;"
            "   Object make() { return null; } }"
            " class Sub extends Base {"
            "   Object make() { return new Object(); } }"
            " class Main { static void main() {"
            "   Base b = new Sub(); Base.o = b.make(); } }"
        )
        (run,) = completed(runs)
        assert run.statics[("Base", "o")] is not None

    def test_ctor_runs_field_inits(self):
        _, runs = run_all(
            "class Box { Object v = new Object(); }"
            " class A { static Object o; static void main() {"
            " Box b = new Box(); A.o = b.v; } }"
        )
        (run,) = completed(runs)
        assert run.statics[("A", "o")] is not None

    def test_super_ctor_chain(self):
        _, runs = run_all(
            "class Ctx { }"
            " class Base { Ctx c; Base(Ctx c) { this.c = c; } }"
            " class Sub extends Base { Sub(Ctx c) { super(c); } }"
            " class A { static Ctx got; static void main() {"
            " Ctx ctx = new Ctx(); Sub s = new Sub(ctx); A.got = s.c; } }"
        )
        (run,) = completed(runs)
        assert run.statics[("A", "got")] is not None

    def test_early_return_skips_rest(self):
        _, runs = run_all(
            "class A { static Object o;"
            " static void maybe(int x) {"
            "   if (x > 0) { return; }"
            "   A.o = new Object(); }"
            " static void main() { A.maybe(1); } }"
        )
        (run,) = completed(runs)
        assert run.statics.get(("A", "o")) is None

    def test_recursion_bounded_by_call_depth(self):
        _, runs = run_all(
            "class A { static void loop() { A.loop(); }"
            " static void main() { A.loop(); } }",
            max_call_depth=8,
        )
        assert runs and runs[0].status == "aborted"


class TestControlFlowDesugaring:
    def test_break_exits_loop(self):
        _, runs = run_all(
            "class A { static Object o; static void main() {"
            " int i = 0; while (i < 10) {"
            "   if (i == 2) { break; }"
            "   i = i + 1; }"
            " if (i == 2) { A.o = new Object(); } } }"
        )
        assert any(r.statics.get(("A", "o")) is not None for r in completed(runs))
        assert all(r.statics.get(("A", "o")) is not None for r in completed(runs))

    def test_continue_skips_rest_of_iteration(self):
        _, runs = run_all(
            "class A { static Object o; static void main() {"
            " int i = 0; int hits = 0;"
            " while (i < 4) {"
            "   i = i + 1;"
            "   if (i == 2) { continue; }"
            "   hits = hits + 1; }"
            " if (hits == 3) { A.o = new Object(); } } }"
        )
        assert completed(runs)
        assert all(r.statics.get(("A", "o")) is not None for r in completed(runs))

    def test_vec_push_example_runs(self):
        # The paper's Figure 1 program executes without polluting EMPTY.
        source = """
        class Activity { }
        class Main { static void main() { Act a = new Act(); a.onCreate(); } }
        class Act extends Activity {
            static Vec objs;
            void onCreate() {
                Vec acts = new Vec();
                acts.push(this);
                Act.objs = new Vec();
                Act.objs.push("hello");
            }
        }
        class Vec {
            static Object[] EMPTY;
            int sz; int cap; Object[] tbl;
            Vec() {
                if (Vec.EMPTY == null) { Vec.EMPTY = new Object[1]; }
                this.sz = 0; this.cap = 0 - 1; this.tbl = Vec.EMPTY;
            }
            void push(Object val) {
                Object[] oldtbl = this.tbl;
                if (this.sz >= this.cap) {
                    this.cap = this.tbl.length * 2;
                    this.tbl = new Object[this.cap];
                    for (int i = 0; i < this.sz; i++) { this.tbl[i] = oldtbl[i]; }
                }
                this.tbl[this.sz] = val;
                this.sz = this.sz + 1;
            }
        }
        """
        prog, runs = run_all(source)
        good = completed(runs)
        assert good
        # No run ever stores an Activity into the shared EMPTY array: the
        # concrete ground truth for the paper's refutation.
        empty_sites = set()
        for run in good:
            empty = run.statics.get(("Vec", "EMPTY"))
            assert empty is not None
            assert empty.elems == {}

    def test_heap_reaches_detects_leak(self):
        source = """
        class Activity { }
        class Act extends Activity { }
        class Holder { static Object cache; }
        class Main { static void main() { Holder.cache = new Act(); } }
        """
        prog, runs = run_all(source)
        (run,) = completed(runs)
        hits = heap_reaches(run.statics, prog.class_table, {"Activity"})
        assert hits and hits[0][0] == ("Holder", "cache")
