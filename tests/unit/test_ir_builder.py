"""Unit tests for AST → structured-IR lowering."""

import pytest

from repro.ir import (
    AtomicStmt,
    Choice,
    Loop,
    Seq,
    compile_program,
    walk_commands,
    walk_statements,
)
from repro.ir import instructions as ins
from repro.ir.builder import LoweringError
from repro.ir.program import CLINIT, ENTRY_METHOD, FIN_VAR, INIT, RET_VAR


def commands_of(program, qname):
    return list(program.commands_of(qname))


def cmd_types(program, qname):
    return [type(c).__name__ for c in commands_of(program, qname)]


class TestBasicLowering:
    def test_assignment_chain(self):
        prog = compile_program(
            "class A { void m() { int x = 1; int y = x; } }", want_entry=False
        )
        cmds = commands_of(prog, "A.m")
        assert [str(c) for c in cmds] == ["x := 1", "y := x"]

    def test_field_write_lowered(self):
        prog = compile_program(
            "class A { A f; void m(A o) { this.f = o; } }", want_entry=False
        )
        cmds = commands_of(prog, "A.m")
        assert isinstance(cmds[0], ins.FieldWrite)
        assert cmds[0].base == "this" and cmds[0].field_name == "f"

    def test_nested_field_read_flattened(self):
        prog = compile_program(
            "class A { A f; A g; void m() { A x = this.f.g; } }", want_entry=False
        )
        names = cmd_types(prog, "A.m")
        assert names == ["FieldRead", "FieldRead", "Assign"]

    def test_static_access(self):
        prog = compile_program(
            "class A { static A inst; void m() { A x = A.inst; A.inst = x; } }",
            want_entry=False,
        )
        names = cmd_types(prog, "A.m")
        assert "StaticRead" in names and "StaticWrite" in names

    def test_array_ops(self):
        prog = compile_program(
            "class A { void m(Object[] xs, Object o) {"
            " xs[0] = o; Object y = xs[1]; int n = xs.length; } }",
            want_entry=False,
        )
        names = cmd_types(prog, "A.m")
        assert "ArrayWrite" in names and "ArrayRead" in names and "ArrayLen" in names

    def test_string_literal_is_allocation(self):
        prog = compile_program(
            'class A { void m() { Object s = "hello"; } }', want_entry=False
        )
        cmds = commands_of(prog, "A.m")
        assert isinstance(cmds[0], ins.New)
        assert cmds[0].site.kind == "string"

    def test_new_object_emits_ctor_call(self):
        prog = compile_program("class A { void m() { A x = new A(); } }", want_entry=False)
        cmds = commands_of(prog, "A.m")
        assert isinstance(cmds[0], ins.New)
        assert isinstance(cmds[1], ins.Invoke)
        assert cmds[1].method_name == INIT and cmds[1].kind == "special"

    def test_virtual_call(self):
        prog = compile_program(
            "class A { void h(int x) { } void m() { this.h(3); } }", want_entry=False
        )
        call = [c for c in commands_of(prog, "A.m") if isinstance(c, ins.Invoke)][0]
        assert call.kind == "virtual" and call.receiver == "this"
        assert call.args == [ins.IntAtom(3)]

    def test_call_result_bound(self):
        prog = compile_program(
            "class A { int h() { return 1; } void m() { int x = this.h(); } }",
            want_entry=False,
        )
        call = [c for c in commands_of(prog, "A.m") if isinstance(c, ins.Invoke)][0]
        assert call.lhs is not None

    def test_nondet_lowered(self):
        prog = compile_program(
            "class A { void m() { boolean b = nondet(); } }", want_entry=False
        )
        assert any(isinstance(c, ins.Nondet) for c in commands_of(prog, "A.m"))

    def test_ref_equality_flagged(self):
        prog = compile_program(
            "class A { void m(A x, A y) { boolean b = x == y; } }", want_entry=False
        )
        binop = [c for c in commands_of(prog, "A.m") if isinstance(c, ins.BinOpCmd)][0]
        assert binop.ref_operands

    def test_int_equality_not_flagged(self):
        prog = compile_program(
            "class A { void m(int x, int y) { boolean b = x == y; } }", want_entry=False
        )
        binop = [c for c in commands_of(prog, "A.m") if isinstance(c, ins.BinOpCmd)][0]
        assert not binop.ref_operands


class TestControlFlow:
    def test_if_becomes_choice_with_assumes(self):
        prog = compile_program(
            "class A { void m(int x) { if (x < 3) { x = 1; } else { x = 2; } } }",
            want_entry=False,
        )
        body = prog.methods["A.m"].body
        choices = [s for s in walk_statements(body) if isinstance(s, Choice)]
        assert len(choices) == 1
        then_branch, else_branch = choices[0].branches
        first_then = next(walk_commands(then_branch))
        first_else = next(walk_commands(else_branch))
        assert isinstance(first_then, ins.Assume) and first_then.polarity
        assert isinstance(first_else, ins.Assume) and not first_else.polarity
        # The guard stays an unlowered pure expression.
        assert isinstance(first_then.expr, ins.PBin)

    def test_while_becomes_loop_plus_exit_assume(self):
        prog = compile_program(
            "class A { void m(int n) { int i = 0; while (i < n) { i = i + 1; } } }",
            want_entry=False,
        )
        body = prog.methods["A.m"].body
        loops = [s for s in walk_statements(body) if isinstance(s, Loop)]
        assert len(loops) == 1
        assumes = [c for c in walk_commands(body) if isinstance(c, ins.Assume)]
        polarities = sorted(a.polarity for a in assumes)
        assert polarities == [False, True]

    def test_impure_guard_is_lowered_to_temp(self):
        prog = compile_program(
            "class A { boolean p() { return true; }"
            " void m() { if (this.p()) { int x = 1; } } }",
            want_entry=False,
        )
        cmds = commands_of(prog, "A.m")
        assume = [c for c in cmds if isinstance(c, ins.Assume)][0]
        assert isinstance(assume.expr, ins.PVar)
        assert any(isinstance(c, ins.Invoke) for c in cmds)

    def test_pure_field_guard_stays_symbolic(self):
        prog = compile_program(
            "class A { int sz; int cap;"
            " void m() { if (this.sz >= this.cap) { int x = 1; } } }",
            want_entry=False,
        )
        assume = [c for c in commands_of(prog, "A.m") if isinstance(c, ins.Assume)][0]
        expr = assume.expr
        assert isinstance(expr, ins.PBin) and expr.op == ">="
        assert isinstance(expr.left, ins.PField)

    def test_tail_return_has_no_fin_flag(self):
        prog = compile_program(
            "class A { int m() { return 3; } }", want_entry=False
        )
        cmds = commands_of(prog, "A.m")
        assert [str(c) for c in cmds] == [f"{RET_VAR} := 3"]

    def test_early_return_uses_fin_flag(self):
        prog = compile_program(
            "class A { int m(int x) { if (x < 0) { return 0; } int y = x; return y; } }",
            want_entry=False,
        )
        cmds = commands_of(prog, "A.m")
        fin_writes = [
            c
            for c in cmds
            if isinstance(c, ins.Assign) and c.lhs == FIN_VAR
        ]
        assert len(fin_writes) >= 2  # prologue reset + set on early return

    def test_break_lowered_with_flag(self):
        prog = compile_program(
            "class A { void m(int n) { int i = 0;"
            " while (i < n) { if (i == 3) { break; } i = i + 1; } } }",
            want_entry=False,
        )
        cmds = commands_of(prog, "A.m")
        brk_writes = [
            c for c in cmds if isinstance(c, ins.Assign) and c.lhs.startswith("$brk")
        ]
        assert brk_writes

    def test_continue_lowered_with_flag(self):
        prog = compile_program(
            "class A { void m(int n) { int i = 0;"
            " while (i < n) { i = i + 1; if (i == 2) { continue; } int j = i; } } }",
            want_entry=False,
        )
        cmds = commands_of(prog, "A.m")
        cnt_writes = [
            c for c in cmds if isinstance(c, ins.Assign) and c.lhs.startswith("$cnt")
        ]
        assert cnt_writes

    def test_local_shadowing_renamed(self):
        prog = compile_program(
            "class A { void m() { if (true) { int x = 1; } if (true) { int x = 2; } } }",
            want_entry=False,
        )
        assigns = [
            c.lhs
            for c in commands_of(prog, "A.m")
            if isinstance(c, ins.Assign) and not c.lhs.startswith("$")
        ]
        assert len(set(assigns)) == 2


class TestSynthesis:
    def test_every_class_gets_ctor(self):
        prog = compile_program("class A { }", want_entry=False)
        assert f"A.{INIT}" in prog.methods
        assert f"Object.{INIT}" in prog.methods
        assert f"String.{INIT}" in prog.methods

    def test_ctor_calls_super_then_field_inits(self):
        prog = compile_program(
            "class B { } class A extends B { A f = new A(); }", want_entry=False
        )
        cmds = commands_of(prog, f"A.{INIT}")
        assert isinstance(cmds[0], ins.Invoke) and cmds[0].decl_class == "B"
        assert any(isinstance(c, ins.FieldWrite) for c in cmds)

    def test_explicit_super_call_used(self):
        prog = compile_program(
            "class Ctx { } class B { Ctx c; B(Ctx c) { this.c = c; } }"
            " class A extends B { A(Ctx c) { super(c); } }",
            want_entry=False,
        )
        cmds = commands_of(prog, f"A.{INIT}")
        supers = [c for c in cmds if isinstance(c, ins.Invoke) and c.kind == "special"]
        assert supers and supers[0].decl_class == "B"
        assert len(supers[0].args) == 1

    def test_missing_explicit_super_rejected(self):
        with pytest.raises(LoweringError):
            compile_program(
                "class Ctx { } class B { B(Ctx c) { } } class A extends B { A() { } }",
                want_entry=False,
            )

    def test_super_not_first_rejected(self):
        with pytest.raises(LoweringError):
            compile_program(
                "class B { B() { } } class A extends B {"
                " A() { int x = 1; super(); } }",
                want_entry=False,
            )

    def test_clinit_synthesized_for_static_inits(self):
        prog = compile_program(
            "class A { static Object x = new Object(); }", want_entry=False
        )
        assert f"A.{CLINIT}" in prog.methods
        cmds = commands_of(prog, f"A.{CLINIT}")
        assert any(isinstance(c, ins.StaticWrite) for c in cmds)

    def test_entry_calls_clinits_then_main(self):
        prog = compile_program(
            "class A { static Object x = new Object();"
            " static void main() { } }"
        )
        assert prog.entry == ENTRY_METHOD
        cmds = commands_of(prog, ENTRY_METHOD)
        assert cmds[0].method_name == CLINIT
        assert cmds[-1].method_name == "main"

    def test_no_main_no_entry(self):
        prog = compile_program("class A { }")
        assert prog.entry is None

    def test_labels_unique_and_registered(self):
        prog = compile_program(
            "class A { static void main() { int x = 1; if (x < 2) { x = 2; } } }"
        )
        labels = [c.label for _, c in prog.all_commands()]
        assert len(labels) == len(set(labels))
        for label in labels:
            assert prog.commands[label] is not None
            assert prog.method_of_label(label) is not None

    def test_alloc_sites_registered_with_hints(self):
        prog = compile_program(
            "class Vec { } class A { void m() {"
            ' Vec v = new Vec(); Object[] a = new Object[1]; Object s = "x"; } }',
            want_entry=False,
        )
        hints = [site.hint for site in prog.alloc_sites]
        assert "vec0" in hints
        assert "arr0" in hints
        assert "str0" in hints

    def test_stats(self):
        prog = compile_program(
            "class A { static void main() { int i = 0; while (i < 3) { i = i + 1; } } }"
        )
        stats = prog.stats()
        assert stats["loops"] == 1
        assert stats["methods"] >= 4
