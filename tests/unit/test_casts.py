"""Tests for casts, instanceof, and throw — frontend through refutation."""

import pytest

from repro.ir import Interpreter, compile_program
from repro.ir import instructions as ins
from repro.lang import ast, frontend, parse_program
from repro.lang.errors import TypeCheckError
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig
from repro.symbolic.stats import REFUTED, WITNESSED


def loc_names(locs):
    return {str(l) for l in locs}


class TestFrontend:
    def test_cast_parses(self):
        unit = parse_program(
            "class A { void m(Object o) { A a = (A) o; } }"
        )
        decl = unit.classes[0].methods[0].body.stmts[0]
        assert isinstance(decl.init, ast.Cast)

    def test_parenthesized_expr_not_cast(self):
        unit = parse_program("class A { void m(int x) { int y = (x) + 1; } }")
        decl = unit.classes[0].methods[0].body.stmts[0]
        assert isinstance(decl.init, ast.Binary)

    def test_cast_of_call_argument(self):
        frontend(
            "class A { void h(A a) { } void m(Object o) { this.h((A) o); } }"
        )

    def test_instanceof_parses_at_relational_level(self):
        unit = parse_program(
            "class A { void m(Object o) { boolean b = o instanceof A && true; } }"
        )
        decl = unit.classes[0].methods[0].body.stmts[0]
        assert isinstance(decl.init, ast.Binary)
        assert isinstance(decl.init.left, ast.InstanceOf)

    def test_throw_parses(self):
        unit = parse_program("class A { void m() { throw new A(); } }")
        assert isinstance(unit.classes[0].methods[0].body.stmts[0], ast.Throw)

    def test_cast_of_primitive_rejected(self):
        with pytest.raises(TypeCheckError):
            frontend("class A { void m(int x) { Object o = (Object) x; } }")

    def test_instanceof_primitive_rejected(self):
        with pytest.raises(TypeCheckError):
            frontend("class A { void m(int x) { boolean b = x instanceof A; } }")

    def test_throw_primitive_rejected(self):
        with pytest.raises(TypeCheckError):
            frontend("class A { void m() { throw 3; } }")

    def test_unknown_cast_target_rejected(self):
        with pytest.raises(TypeCheckError):
            frontend("class A { void m(Object o) { Object x = (Nope) o; } }")


class TestInterpreter:
    def run(self, source):
        return Interpreter(compile_program(source)).explore()

    def test_successful_downcast(self):
        runs = self.run(
            "class A { } class M { static Object got;"
            " static void main() { Object o = new A(); A a = (A) o;"
            " M.got = a; } }"
        )
        assert any(r.status == "completed" and r.statics[("M", "got")] for r in runs)

    def test_failing_cast_aborts(self):
        runs = self.run(
            "class A { } class B { } class M { static void main() {"
            " Object o = new B(); A a = (A) o; } }"
        )
        assert runs[0].status == "aborted"
        assert "ClassCast" in runs[0].reason

    def test_cast_of_null_succeeds(self):
        runs = self.run(
            "class A { } class M { static void main() {"
            " Object o = null; A a = (A) o; } }"
        )
        assert all(r.status == "completed" for r in runs)

    def test_instanceof_true_false_null(self):
        runs = self.run(
            "class A { } class B { } class M { static Object flag;"
            " static void main() {"
            " Object o = new A();"
            " boolean t = o instanceof A;"
            " boolean f = o instanceof B;"
            " Object n = null;"
            " boolean fn = n instanceof A;"
            " if (t && !f && !fn) { M.flag = new Object(); } } }"
        )
        assert all(r.statics.get(("M", "flag")) is not None for r in runs)

    def test_throw_aborts_and_keeps_prefix_effects(self):
        runs = self.run(
            "class Err { } class M { static Object before; static Object after;"
            " static void main() {"
            " M.before = new Object();"
            " throw new Err();"
            " } }"
        )
        (run,) = runs
        assert run.status == "aborted"
        assert run.statics.get(("M", "before")) is not None


class TestPointsTo:
    def test_cast_filters_points_to_set(self):
        prog = compile_program(
            "class A { } class B { } class M { static void main() {"
            " Object o = new A();"
            " if (nondet()) { o = new B(); }"
            " A a = (A) o; } }"
        )
        res = analyze(prog)
        assert loc_names(res.pt_local("M.main", "o")) == {"a0", "b0"}
        assert loc_names(res.pt_local("M.main", "a")) == {"a0"}

    def test_cast_keeps_subclasses(self):
        prog = compile_program(
            "class A { } class Sub extends A { } class M { static void main() {"
            " Object o = new Sub(); A a = (A) o; } }"
        )
        res = analyze(prog)
        assert loc_names(res.pt_local("M.main", "a")) == {"sub0"}


class TestRefutation:
    def test_code_after_throw_unreachable(self):
        prog = compile_program(
            "class Err { } class Box { Object v; }"
            " class M { static void main() {"
            " Box b = new Box();"
            " throw new Err();"
            " } }"
        )
        res = analyze(prog)
        # No heap edges exist at all here; check throw blocks a store.
        prog2 = compile_program(
            "class Err { } class Box { Object v; }"
            " class M { static void go(Box b, Object o, int x) {"
            "   if (x == 1) { throw new Err(); b.v = o; } }"
            " static void main() {"
            "   M.go(new Box(), new Object(), 1); } }"
        )
        res2 = analyze(prog2)
        edges = [e for e in res2.graph.heap_edges() if e.field == "v"]
        assert edges
        engine = Engine(res2)
        assert engine.refute_edge(edges[0]).status == REFUTED

    def test_cast_type_refutes_wrong_site(self):
        # Flow-insensitively `a` could be a0 or b0... but the cast filters
        # b0 already in the graph; exercise instanceof instead.
        prog = compile_program(
            "class A { } class B { } class Box { Object v; }"
            " class M { static void main() {"
            " Object o = new A();"
            " if (nondet()) { o = new B(); }"
            " Box box = new Box();"
            " if (o instanceof A) { box.v = o; } } }"
        )
        res = analyze(prog)
        by_dst = {
            str(e.dst): e for e in res.graph.heap_edges() if e.field == "v"
        }
        assert set(by_dst) == {"a0", "b0"}
        engine = Engine(res)
        # instanceof A is true only for the A instance.
        assert engine.refute_edge(by_dst["b0"]).status == REFUTED
        assert engine.refute_edge(by_dst["a0"]).status == WITNESSED

    def test_negative_instanceof_refutes(self):
        prog = compile_program(
            "class A { } class B { } class Box { Object v; }"
            " class M { static void main() {"
            " Object o = new A();"
            " if (nondet()) { o = new B(); }"
            " Box box = new Box();"
            " if (!(o instanceof A)) { box.v = o; } } }"
        )
        res = analyze(prog)
        by_dst = {str(e.dst): e for e in res.graph.heap_edges() if e.field == "v"}
        engine = Engine(res)
        assert engine.refute_edge(by_dst["a0"]).status == REFUTED
        assert engine.refute_edge(by_dst["b0"]).status == WITNESSED


class TestCastCheckClientPrimitive:
    def test_cast_failure_site_detectable(self):
        # The building block of the downcast-safety client: the points-to
        # set at the cast shows which sites could fail.
        prog = compile_program(
            "class A { } class B { } class M { static void main() {"
            " Object o = new B(); A a = (A) o; } }"
        )
        res = analyze(prog)
        cast = next(
            c for _, c in res.program.all_commands() if isinstance(c, ins.CastCmd)
        )
        incompatible = [
            loc
            for loc in res.pt_local("M.main", cast.src)
            if not prog.class_table.site_is_instance(loc.site, cast.class_name)
        ]
        assert incompatible
