"""Unit tests for the mini-Java parser."""

import pytest

from repro.lang import ast, parse_program
from repro.lang.errors import ParseError
from repro.lang.pretty import pretty_program


def parse_one_class(source):
    unit = parse_program(source)
    assert len(unit.classes) == 1
    return unit.classes[0]


def parse_stmts(body_source):
    cls = parse_one_class("class C { void m() { %s } }" % body_source)
    return cls.methods[0].body.stmts


def parse_expr(expr_source):
    stmts = parse_stmts(f"int x = {expr_source};")
    assert isinstance(stmts[0], ast.LocalDecl)
    return stmts[0].init


class TestDeclarations:
    def test_empty_class(self):
        cls = parse_one_class("class Foo { }")
        assert cls.name == "Foo"
        assert cls.superclass is None
        assert cls.fields == []
        assert cls.methods == []

    def test_extends(self):
        cls = parse_one_class("class Act extends Activity { }")
        assert cls.superclass == "Activity"

    def test_field_with_modifiers_and_init(self):
        cls = parse_one_class("class C { private static final Vec objs = new Vec(); }")
        (fld,) = cls.fields
        assert fld.name == "objs"
        assert fld.is_static and fld.is_final
        assert isinstance(fld.init, ast.NewObject)

    def test_array_field_type(self):
        cls = parse_one_class("class C { Object[] tbl; }")
        assert cls.fields[0].decl_type == ast.ArrayType(ast.ClassType("Object"))

    def test_method_signature(self):
        cls = parse_one_class("class C { static int f(int a, boolean b) { return 0; } }")
        (mth,) = cls.methods
        assert mth.is_static
        assert mth.ret_type == ast.INT
        assert [p.name for p in mth.params] == ["a", "b"]

    def test_constructor_recognized(self):
        cls = parse_one_class("class Vec { Vec() { } }")
        (mth,) = cls.methods
        assert mth.is_constructor
        assert mth.name == "<init>"

    def test_void_method(self):
        cls = parse_one_class("class C { void m() { } }")
        assert cls.methods[0].ret_type == ast.VOID


class TestStatements:
    def test_local_decl_with_class_type(self):
        (stmt,) = parse_stmts("Vec acts = new Vec();")
        assert isinstance(stmt, ast.LocalDecl)
        assert stmt.decl_type == ast.ClassType("Vec")

    def test_local_decl_array_type(self):
        (stmt,) = parse_stmts("Object[] oldtbl = null;")
        assert isinstance(stmt, ast.LocalDecl)
        assert stmt.decl_type == ast.ArrayType(ast.ClassType("Object"))

    def test_assignment_vs_expr_stmt(self):
        stmts = parse_stmts("x = y; x.m();")
        assert isinstance(stmts[0], ast.AssignStmt)
        assert isinstance(stmts[1], ast.ExprStmt)

    def test_field_write(self):
        (stmt,) = parse_stmts("this.sz = 0;")
        assert isinstance(stmt, ast.AssignStmt)
        assert isinstance(stmt.lhs, ast.FieldAccess)

    def test_array_write(self):
        (stmt,) = parse_stmts("this.tbl[i] = val;")
        assert isinstance(stmt.lhs, ast.ArrayIndex)

    def test_if_else(self):
        (stmt,) = parse_stmts("if (a) { } else { b = c; }")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_dangling_else_binds_to_inner_if(self):
        (stmt,) = parse_stmts("if (a) if (b) x = y; else x = z;")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is None
        inner = stmt.then
        assert isinstance(inner, ast.If)
        assert inner.orelse is not None

    def test_while(self):
        (stmt,) = parse_stmts("while (i < n) { i = i + 1; }")
        assert isinstance(stmt, ast.While)

    def test_for_desugars_to_while(self):
        (stmt,) = parse_stmts("for (int i = 0; i < n; i++) { sum = sum + i; }")
        assert isinstance(stmt, ast.Block)
        init, loop = stmt.stmts
        assert isinstance(init, ast.LocalDecl)
        assert isinstance(loop, ast.While)
        body = loop.body
        assert isinstance(body, ast.Block)
        # Original body plus the update.
        assert len(body.stmts) == 2
        update = body.stmts[1]
        assert isinstance(update, ast.AssignStmt)
        assert isinstance(update.rhs, ast.Binary) and update.rhs.op == "+"

    def test_increment_statement_desugars(self):
        (stmt,) = parse_stmts("i++;")
        assert isinstance(stmt, ast.AssignStmt)
        assert isinstance(stmt.rhs, ast.Binary)

    def test_compound_assignment_desugars(self):
        (stmt,) = parse_stmts("i += 2;")
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.rhs.op == "+"

    def test_return_with_and_without_value(self):
        stmts = parse_stmts("return x; return;")
        assert stmts[0].value is not None
        assert stmts[1].value is None

    def test_break_continue(self):
        stmts = parse_stmts("while (true) { break; continue; }")
        body = stmts[0].body
        assert isinstance(body.stmts[0], ast.Break)
        assert isinstance(body.stmts[1], ast.Continue)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_rel_over_and(self):
        expr = parse_expr("a < b && c < d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_parens_override_precedence(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_not(self):
        expr = parse_expr("!done")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "!"

    def test_chained_field_access(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.name == "c"
        assert isinstance(expr.target, ast.FieldAccess)

    def test_method_call_with_args(self):
        expr = parse_expr("acts.push(x, 1)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "push"
        assert len(expr.args) == 2

    def test_bare_call(self):
        expr = parse_expr("helper(x)")
        assert isinstance(expr, ast.Call)
        assert expr.target is None

    def test_nondet_builtin(self):
        expr = parse_expr("nondet()")
        assert isinstance(expr, ast.NondetCall)

    def test_new_object(self):
        expr = parse_expr("new Vec()")
        assert isinstance(expr, ast.NewObject)

    def test_new_array(self):
        expr = parse_expr("new Object[this.cap]")
        assert isinstance(expr, ast.NewArray)
        assert expr.elem_type == ast.ClassType("Object")

    def test_array_length(self):
        expr = parse_expr("tbl.length")
        # Parsed as plain field access; the checker rewrites to ArrayLength.
        assert isinstance(expr, ast.FieldAccess)

    def test_super_call(self):
        cls = parse_one_class("class C { C(Ctx c) { super(c); } }")
        stmt = cls.methods[0].body.stmts[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.SuperCall)

    def test_null_and_literals(self):
        assert isinstance(parse_expr("null"), ast.NullLit)
        assert parse_expr("true").value is True
        assert parse_expr("17").value == 17
        assert parse_expr('"hi"').value == "hi"


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class { }",
            "class C",
            "class C { void m( { } }",
            "class C { void m() { x = ; } }",
            "class C { void m() { if x { } } }",
            "class C { int ; }",
        ],
    )
    def test_malformed_inputs_raise(self, source):
        with pytest.raises(ParseError):
            parse_program(source)


def test_pretty_round_trip():
    source = """
    class Vec {
        static final Object[] EMPTY = new Object[1];
        int sz;
        Vec() { this.sz = 0; }
        void push(Object val) {
            Object[] oldtbl = this.tbl;
            if (this.sz >= this.cap) {
                this.tbl = new Object[this.cap];
                for (int i = 0; i < this.sz; i++) { this.tbl[i] = oldtbl[i]; }
            }
            this.tbl[this.sz] = val;
            this.sz = this.sz + 1;
        }
    }
    """
    unit1 = parse_program(source)
    printed = pretty_program(unit1)
    unit2 = parse_program(printed)
    assert pretty_program(unit2) == printed
