"""Unit tests for the Android client: library, lifecycle, harness, driver."""

import pytest

from repro.android import (
    CONTAINER_CLASSES,
    HARNESS_CLASS,
    LIBRARY_SOURCE,
    LeakChecker,
    build_full_source,
    generate_harness,
    library_class_names,
)
from repro.android.leaks import ALARM_CONFIRMED, ALARM_REFUTED
from repro.android.lifecycle import handlers_of, is_event_handler
from repro.lang import frontend, parse_program


class TestLibrary:
    def test_library_typechecks_standalone(self):
        frontend(LIBRARY_SOURCE)

    def test_library_class_names(self):
        names = library_class_names()
        for expected in ("Activity", "Context", "Vec", "HashMap", "CursorAdapter"):
            assert expected in names

    def test_container_classes_exist_in_library(self):
        assert CONTAINER_CLASSES <= library_class_names()

    def test_vec_uses_null_object_pattern(self):
        checked = frontend(LIBRARY_SOURCE)
        vec = checked.table.get("Vec")
        assert "EMPTY" in vec.fields and vec.fields["EMPTY"].is_static

    def test_adapter_chain_reaches_context(self):
        checked = frontend(LIBRARY_SOURCE)
        fld = checked.table.lookup_field("ResourceCursorAdapter", "mContext")
        assert fld is not None and fld.decl_class == "CursorAdapter"


class TestLifecycle:
    def make_table(self, source):
        return frontend(source + LIBRARY_SOURCE).table

    def test_on_methods_are_handlers(self):
        table = self.make_table("class A extends Activity { void onCreate() { } }")
        handlers = handlers_of(table, "A")
        assert [h.name for h in handlers] == ["onCreate"]

    def test_non_on_methods_excluded(self):
        table = self.make_table(
            "class A extends Activity { void helper() { } void once() { } }"
        )
        assert handlers_of(table, "A") == []

    def test_lifecycle_ordering(self):
        table = self.make_table(
            "class A extends Activity {"
            " void onDestroy() { } void onCreate() { } void onResume() { } }"
        )
        names = [h.name for h in handlers_of(table, "A")]
        assert names == ["onCreate", "onResume", "onDestroy"]

    def test_inherited_handlers_found(self):
        table = self.make_table(
            "class Base extends Activity { void onCreate() { } }"
            " class A extends Base { void onClick() { } }"
        )
        names = {h.name for h in handlers_of(table, "A")}
        assert names == {"onCreate", "onClick"}

    def test_is_event_handler_requires_instance_method(self):
        table = self.make_table(
            "class A extends Activity { static void onWeird() { } }"
        )
        method = table.get("A").methods["onWeird"]
        assert not is_event_handler(method)


class TestHarness:
    def test_harness_compiles_with_app(self):
        source = build_full_source(
            "class A extends Activity { void onCreate() { } }"
        )
        checked = frontend(source)
        assert HARNESS_CLASS in checked.table

    def test_harness_calls_each_handler_once_guarded(self):
        app = (
            "class A extends Activity {"
            " void onCreate() { } void onDestroy() { } }"
        )
        checked = frontend(app + LIBRARY_SOURCE)
        harness = generate_harness(checked.table, {"A"})
        assert harness.count("onCreate()") == 1
        assert harness.count("onDestroy()") == 1
        assert harness.count("nondet()") == 2

    def test_harness_instantiates_every_activity(self):
        app = (
            "class A extends Activity { void onCreate() { } }"
            " class B extends Activity { void onCreate() { } }"
        )
        checked = frontend(app + LIBRARY_SOURCE)
        harness = generate_harness(checked.table, {"A", "B"})
        assert "new A(" in harness and "new B(" in harness

    def test_context_parameter_receives_activity(self):
        app = "class A extends Activity { void onAttach(Context c) { } }"
        checked = frontend(app + LIBRARY_SOURCE)
        harness = generate_harness(checked.table, {"A"})
        assert "act0.onAttach(act0)" in harness

    def test_primitive_parameters_get_defaults(self):
        app = "class A extends Activity { void onScroll(int dx, boolean fast) { } }"
        checked = frontend(app + LIBRARY_SOURCE)
        harness = generate_harness(checked.table, {"A"})
        assert "onScroll(0, false)" in harness

    def test_library_initializers_run_before_app(self):
        # The combined unit puts the library first so Vec.EMPTY is
        # initialized before any app <clinit> allocates a Vec.
        source = build_full_source(
            "class S { static Vec v = new Vec(); }"
            " class A extends Activity { void onCreate() { } }"
        )
        unit = parse_program(source)
        names = [cls.name for cls in unit.classes]
        assert names.index("Vec") < names.index("S")

    def test_non_activity_classes_not_driven(self):
        app = "class Util { void onSomething() { } }"
        checked = frontend(app + LIBRARY_SOURCE)
        harness = generate_harness(checked.table, {"Util"})
        assert "onSomething" not in harness


class TestLeakChecker:
    def test_direct_static_leak_confirmed(self):
        report = LeakChecker(
            "class A extends Activity {"
            " static Activity leaked;"
            " void onCreate() { A.leaked = this; } }",
            "direct",
        ).run()
        alarm = next(a for a in report.alarms if a.root.field == "leaked")
        assert alarm.status == ALARM_CONFIRMED
        assert alarm.witnessed_path is not None

    def test_no_static_no_alarm(self):
        report = LeakChecker(
            "class A extends Activity { Activity self;"
            " void onCreate() { this.self = this; } }",
            "instance-only",
        ).run()
        assert report.num_alarms == 0

    def test_guarded_never_enabled_refuted(self):
        report = LeakChecker(
            "class A extends Activity {"
            " static boolean keep = false;"
            " static Activity cache;"
            " void onCreate() { if (A.keep) { A.cache = this; } } }",
            "guarded",
        ).run()
        alarm = next(a for a in report.alarms if a.root.field == "cache")
        assert alarm.status == ALARM_REFUTED

    def test_report_counts_consistent(self):
        report = LeakChecker(
            "class A extends Activity {"
            " static Activity leaked;"
            " void onCreate() { A.leaked = this; } }",
            "counts",
        ).run()
        assert report.num_alarms == report.refuted_alarms + len(report.reported_alarms)
        assert report.refuted_fields <= report.fields

    def test_handler_interplay(self):
        # The leak only happens if onCreate ran before onClick; the harness
        # lifecycle ordering makes that feasible: confirmed.
        report = LeakChecker(
            "class A extends Activity {"
            " static Activity cache;"
            " Activity pending;"
            " void onCreate() { this.pending = this; }"
            " void onClick() { A.cache = this.pending; } }",
            "interplay",
        ).run()
        alarm = next(a for a in report.alarms if a.root.field == "cache")
        assert alarm.status == ALARM_CONFIRMED

    def test_annotated_flag_suppresses_container_statics(self):
        app = (
            "class A extends Activity {"
            " void onCreate() { Vec v = new Vec(); v.push(this); } }"
        )
        plain = LeakChecker(app, "ann", annotated=False).run()
        annotated = LeakChecker(app, "ann", annotated=True).run()
        assert annotated.num_alarms <= plain.num_alarms
        assert annotated.num_alarms == 0
