"""Unit tests for the persistent verdict store (:mod:`repro.perf.store`):
key canonicalization, write-behind persistence, LRU eviction, refuted-state
round-trips, and the corruption/versioning fallback ("any doubt about the
file means a cold run, one warning, never an error")."""

import os
import sqlite3
import warnings

import pytest

from repro.ir.instructions import AllocSite
from repro.perf import store as perf_store
from repro.perf.store import (
    SCHEMA_VERSION,
    StoreInvalid,
    VerdictStore,
    encode_key,
    solver_fingerprint,
    store_path,
)
from repro.pointsto.graph import AbsLoc
from repro.symbolic import Query


@pytest.fixture(autouse=True)
def detached():
    """Every test starts and ends with no process-wide store and a clean
    rejection memo (attach warns only once per directory per process)."""
    perf_store.deactivate()
    perf_store._REJECTED.clear()
    yield
    perf_store.deactivate()
    perf_store._REJECTED.clear()


def loc(name):
    return AbsLoc(AllocSite(hash(name) % 99_991, "Object", "M.m", hint=name))


def query_with_region(region):
    q = Query("M.m")
    q.set_local("x", q.new_ref(region))
    return q


def open_store(tmp_path, **kwargs) -> VerdictStore:
    return VerdictStore(str(tmp_path / "verdicts.sqlite"), **kwargs)


CANON_A = ((("le", (1, 2)),), frozenset({0}))
CANON_B = ((("le", (3, 4)),), frozenset({0, 1}))


class TestKeys:
    def test_encode_key_is_deterministic_plain_bytes(self):
        assert encode_key(CANON_A) == encode_key(CANON_A)
        assert isinstance(encode_key(CANON_A), bytes)
        assert encode_key(CANON_A) != encode_key(CANON_B)

    def test_nonnull_set_order_does_not_matter(self):
        sig = (("le", (1, 2)),)
        assert encode_key((sig, frozenset({2, 0, 1}))) == encode_key(
            (sig, frozenset({1, 2, 0}))
        )

    def test_fingerprint_is_short_stable_hex(self):
        fp = solver_fingerprint()
        assert fp == solver_fingerprint()
        int(fp, 16)


class TestPersistence:
    def test_put_get_roundtrip_within_one_open(self, tmp_path):
        store = open_store(tmp_path)
        assert store.get("comp", CANON_A) is None
        store.put("comp", CANON_A, False)
        assert store.get("comp", CANON_A) is False
        assert store.hits == 1 and store.misses == 1
        store.close()

    def test_verdicts_survive_close_and_reopen(self, tmp_path):
        store = open_store(tmp_path)
        store.put("comp", CANON_A, False)
        store.put("mono", CANON_B, True)
        store.close()

        reopened = open_store(tmp_path)
        assert reopened.get("comp", CANON_A) is False
        assert reopened.get("mono", CANON_B) is True
        reopened.close()

    def test_kinds_are_separate_namespaces(self, tmp_path):
        store = open_store(tmp_path)
        store.put("comp", CANON_A, False)
        assert store.get("mono", CANON_A) is None
        assert store.get("part", CANON_A) is None
        store.close()

    def test_write_behind_flush_lands_in_sqlite(self, tmp_path):
        store = open_store(tmp_path)
        store.put("comp", CANON_A, True)
        store.get("comp", CANON_A)
        store.flush()
        db = sqlite3.connect(store.path)
        rows = db.execute(
            "SELECT kind, verdict, hits FROM verdicts"
        ).fetchall()
        db.close()
        store.close()
        assert rows == [("comp", 1, 1)]

    def test_refuted_roundtrip_and_hit_tallies(self, tmp_path):
        store = open_store(tmp_path)
        key = ("loop", 1)
        entry = (key, query_with_region(frozenset({loc("a0")})))
        assert store.put_refuted("scope-1", [entry]) == 1
        store.flush()
        loaded = store.load_refuted("scope-1")
        assert len(loaded) == 1 and loaded[0][0] == key
        assert store.load_refuted("other-scope") == []

        store.note_refuted_hits("scope-1", {key: 5})
        store.flush()
        db = sqlite3.connect(store.path)
        (hits,) = db.execute("SELECT hits FROM refuted").fetchone()
        db.close()
        store.close()
        assert hits == 5

    def test_duplicate_refuted_entries_dedup_by_digest(self, tmp_path):
        store = open_store(tmp_path)
        entry = (("loop", 1), query_with_region(frozenset({loc("a0")})))
        store.put_refuted("s", [entry])
        store.put_refuted("s", [entry])
        store.flush()
        assert len(store.load_refuted("s")) == 1
        store.close()


class TestEviction:
    def test_lru_eviction_keeps_recently_hit_rows(self, tmp_path):
        store = open_store(tmp_path, max_entries=2)
        canons = [((("le", (i, i + 1)),), frozenset()) for i in range(3)]
        store.put("comp", canons[0], True)
        store.put("comp", canons[1], True)
        store.flush()
        # A hit bumps last_hit: row 0 becomes more recent than row 1.
        store.get("comp", canons[0])
        store.flush()
        store.put("comp", canons[2], True)
        store.flush()
        db = sqlite3.connect(store.path)
        (count,) = db.execute("SELECT count(*) FROM verdicts").fetchone()
        keys = {bytes(row[0]) for row in db.execute("SELECT key FROM verdicts")}
        db.close()
        assert count == 2
        assert encode_key(canons[0]) in keys, "the hit row was evicted"
        assert encode_key(canons[1]) not in keys, "the LRU row survived"
        assert store.evictions == 1
        store.close()

    def test_prune_returns_rows_deleted(self, tmp_path):
        store = open_store(tmp_path)
        for i in range(6):
            store.put("comp", ((("le", (i, 0)),), frozenset()), True)
        assert store.prune(2) == 4
        assert store.stats()["entries"] == 2
        # The configured cap is restored after the synchronous prune.
        assert store.max_entries != 2
        store.close()

    def test_clear_drops_everything(self, tmp_path):
        store = open_store(tmp_path)
        store.put("comp", CANON_A, True)
        store.put_refuted(
            "s", [(("loop", 1), query_with_region(frozenset({loc("a0")})))]
        )
        store.clear()
        stats = store.stats()
        assert stats["entries"] == 0 and stats["refuted_entries"] == 0
        assert store.get("comp", CANON_A) is None
        store.close()


class TestValidation:
    def _meta_rewrite(self, tmp_path, key, value):
        store = open_store(tmp_path)
        store.put("comp", CANON_A, True)
        store.close()
        db = sqlite3.connect(str(tmp_path / "verdicts.sqlite"))
        with db:
            db.execute("UPDATE meta SET value=? WHERE key=?", (value, key))
        db.close()

    def test_schema_mismatch_raises_store_invalid(self, tmp_path):
        self._meta_rewrite(tmp_path, "schema_version", str(SCHEMA_VERSION + 1))
        with pytest.raises(StoreInvalid, match="schema version"):
            open_store(tmp_path)

    def test_fingerprint_mismatch_raises_store_invalid(self, tmp_path):
        self._meta_rewrite(tmp_path, "solver_fingerprint", "0" * 16)
        with pytest.raises(StoreInvalid, match="fingerprint"):
            open_store(tmp_path)

    def test_truncated_database_raises_store_invalid(self, tmp_path):
        path = tmp_path / "verdicts.sqlite"
        path.write_bytes(b"SQLite format 3\x00" + b"\x00" * 64)
        with pytest.raises(StoreInvalid, match="unreadable"):
            open_store(tmp_path)

    def test_attach_falls_back_cold_with_single_warning(self, tmp_path):
        """The acceptance behavior: a corrupt store must never fail the
        run — attach warns once for the directory and the process stays
        on cold in-memory caches."""
        (tmp_path / "verdicts.sqlite").write_bytes(b"not a database at all")
        with pytest.warns(RuntimeWarning, match="cold in-memory caches"):
            assert perf_store.attach(str(tmp_path)) is None
        assert perf_store.ACTIVE is None
        # Second engine construction against the same directory: silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert perf_store.attach(str(tmp_path)) is None

    def test_attach_warns_cold_on_fingerprint_mismatch(self, tmp_path):
        self._meta_rewrite(tmp_path, "solver_fingerprint", "f" * 16)
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert perf_store.attach(str(tmp_path)) is None
        assert perf_store.ACTIVE is None


class TestAttach:
    def test_attach_is_idempotent_for_same_dir(self, tmp_path):
        first = perf_store.attach(str(tmp_path))
        assert first is not None and perf_store.ACTIVE is first
        assert perf_store.attach(str(tmp_path)) is first

    def test_attach_none_deactivates(self, tmp_path):
        perf_store.attach(str(tmp_path))
        assert perf_store.ACTIVE is not None
        perf_store.attach(None)
        assert perf_store.ACTIVE is None

    def test_switching_dirs_closes_previous(self, tmp_path):
        first = perf_store.attach(str(tmp_path / "a"))
        second = perf_store.attach(str(tmp_path / "b"))
        assert second is not None and second is not first
        assert perf_store.ACTIVE is second

    def test_env_var_resolves_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert perf_store.resolve_cache_dir(None) == str(tmp_path / "env")
        assert perf_store.resolve_cache_dir("explicit") == "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert perf_store.resolve_cache_dir(None) is None

    def test_stats_for_dir_missing_file_returns_none(self, tmp_path):
        assert perf_store.stats_for_dir(str(tmp_path)) is None
        assert not os.path.exists(store_path(str(tmp_path)))

    def test_stats_for_dir_reports_unreadable_store(self, tmp_path):
        (tmp_path / "verdicts.sqlite").write_bytes(b"garbage")
        stats = perf_store.stats_for_dir(str(tmp_path))
        assert stats is not None and "error" in stats

    def test_stats_shape(self, tmp_path):
        store = perf_store.attach(str(tmp_path))
        store.put("comp", CANON_A, False)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["fingerprint"] == solver_fingerprint()
        assert stats["bytes"] > 0
        assert stats["writes"] == 1
