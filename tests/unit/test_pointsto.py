"""Unit tests for the Andersen points-to analysis and its companions."""

import pytest

from repro.ir import compile_program
from repro.pointsto import (
    ELEMS,
    ContainerSensitive,
    ContextInsensitive,
    ObjectSensitive,
    StaticFieldNode,
    analyze,
    find_alarms,
    find_heap_path,
    reaches,
)


def pta(source, **kwargs):
    prog = compile_program(source)
    return analyze(prog, **kwargs)


def loc_names(locs):
    return {str(loc) for loc in locs}


class TestBasicFlow:
    def test_new_flows_to_var(self):
        res = pta("class A { static void main() { Object o = new Object(); } }")
        assert loc_names(res.pt_local("A.main", "o")) == {"object0"}

    def test_copy_propagation(self):
        res = pta(
            "class A { static void main() {"
            " Object o = new Object(); Object p = o; } }"
        )
        assert res.pt_local("A.main", "p") == res.pt_local("A.main", "o")

    def test_field_store_load(self):
        res = pta(
            "class Box { Object v; } class A { static void main() {"
            " Box b = new Box(); b.v = new Object(); Object x = b.v; } }"
        )
        assert loc_names(res.pt_local("A.main", "x")) == {"object0"}

    def test_static_store_load(self):
        res = pta(
            "class A { static Object cache; static void main() {"
            " A.cache = new Object(); Object x = A.cache; } }"
        )
        assert loc_names(res.pt_static("A", "cache")) == {"object0"}
        assert loc_names(res.pt_local("A.main", "x")) == {"object0"}

    def test_array_store_load(self):
        res = pta(
            "class A { static void main() {"
            " Object[] xs = new Object[2]; xs[0] = new Object(); Object x = xs[1]; } }"
        )
        (arr,) = res.pt_local("A.main", "xs")
        assert loc_names(res.pt_field(arr, ELEMS)) == {"object0"}
        assert loc_names(res.pt_local("A.main", "x")) == {"object0"}

    def test_flow_insensitivity_merges_strong_updates(self):
        # Flow-insensitive analysis cannot see that v is overwritten.
        res = pta(
            "class Box { Object v; } class A { static void main() {"
            " Box b = new Box(); b.v = new Object(); b.v = new String(); } }"
        )
        (box,) = res.pt_local("A.main", "b")
        assert loc_names(res.pt_field(box, "v")) == {"object0", "string0"}

    def test_null_contributes_nothing(self):
        res = pta("class A { static void main() { Object o = null; } }")
        assert res.pt_local("A.main", "o") == frozenset()


class TestCallsAndCallGraph:
    def test_param_and_return_flow(self):
        res = pta(
            "class A { static Object id(Object x) { return x; }"
            " static void main() { Object o = A.id(new Object()); } }"
        )
        assert loc_names(res.pt_local("A.main", "o")) == {"object0"}

    def test_virtual_dispatch_by_points_to(self):
        res = pta(
            "class Base { Object make() { return new Object(); } }"
            " class Sub extends Base { Object make() { return new String(); } }"
            " class M { static void main() {"
            "   Base b = new Sub(); Object o = b.make(); } }"
        )
        # Only Sub.make is a target, so only string0 flows to o.
        assert loc_names(res.pt_local("M.main", "o")) == {"string0"}

    def test_imprecise_dispatch_unions_targets(self):
        res = pta(
            "class Base { Object make() { return new Object(); } }"
            " class Sub extends Base { Object make() { return new String(); } }"
            " class M { static void main() {"
            "   Base b = new Base(); Base c = new Sub();"
            "   if (nondet()) { b = c; }"
            "   Object o = b.make(); } }"
        )
        assert loc_names(res.pt_local("M.main", "o")) == {"object0", "string0"}

    def test_unreachable_method_not_analyzed(self):
        res = pta(
            "class A { static void dead() { Object o = new Object(); }"
            " static void main() { } }"
        )
        assert "A.dead" not in res.call_graph.reachable_methods

    def test_callers_recorded(self):
        res = pta(
            "class A { static void h() { } static void main() { A.h(); A.h(); } }"
        )
        callers = res.callers_of("A.h")
        assert {qname for qname, _ in callers} == {"A.main"}
        assert len(callers) == 2  # two distinct call sites

    def test_ctor_treated_as_call(self):
        res = pta(
            "class Box { Object v; Box(Object o) { this.v = o; } }"
            " class A { static void main() { Box b = new Box(new Object()); } }"
        )
        (box,) = res.pt_local("A.main", "b")
        assert loc_names(res.pt_field(box, "v")) == {"object0"}

    def test_recursion_terminates(self):
        res = pta(
            "class A { static Object f(Object x, int n) {"
            "   if (n == 0) { return x; } return A.f(x, n - 1); }"
            " static void main() { Object o = A.f(new Object(), 3); } }"
        )
        assert loc_names(res.pt_local("A.main", "o")) == {"object0"}


class TestContextSensitivity:
    TWO_BOXES = (
        "class Box { Object v; void set(Object o) { this.v = o; } }"
        " class A { static void main() {"
        "   Box b1 = new Box(); Box b2 = new Box();"
        "   b1.set(new Object()); b2.set(new String());"
        "   Object x = b1.v; } }"
    )

    def test_context_insensitive_conflates_receivers(self):
        res = pta(self.TWO_BOXES, policy=ContextInsensitive())
        assert loc_names(res.pt_local("A.main", "x")) == {"object0", "string0"}

    def test_object_sensitive_separates_receivers(self):
        res = pta(self.TWO_BOXES, policy=ObjectSensitive(1))
        assert loc_names(res.pt_local("A.main", "x")) == {"object0"}

    def test_container_policy_separates_only_containers(self):
        res = pta(
            self.TWO_BOXES,
            policy=ContainerSensitive(containers={"Box"}),
        )
        assert loc_names(res.pt_local("A.main", "x")) == {"object0"}

    def test_container_policy_ignores_non_containers(self):
        res = pta(
            self.TWO_BOXES,
            policy=ContainerSensitive(containers={"SomethingElse"}),
        )
        assert loc_names(res.pt_local("A.main", "x")) == {"object0", "string0"}

    def test_heap_context_names_allocations_per_receiver(self):
        source = (
            "class Vec { Object[] tbl; void grow() { this.tbl = new Object[4]; } }"
            " class A { static void main() {"
            "   Vec v1 = new Vec(); Vec v2 = new Vec(); v1.grow(); v2.grow(); } }"
        )
        res = pta(source, policy=ContainerSensitive(containers={"Vec"}))
        locs = set()
        for v in ("v1", "v2"):
            (vec,) = res.pt_local("A.main", v)
            locs |= res.pt_field(vec, "tbl")
        # Two distinct array locations, one per receiver: vec0.arr0 / vec1.arr0.
        assert len(locs) == 2
        assert {str(l) for l in locs} == {"vec0.arr0", "vec1.arr0"}


class TestAnnotations:
    SHARED_EMPTY = (
        "class Vec { static Object[] EMPTY; Object[] tbl;"
        "   Vec() { if (Vec.EMPTY == null) { Vec.EMPTY = new Object[1]; }"
        "           this.tbl = Vec.EMPTY; }"
        "   void add(Object o) { this.tbl[0] = o; } }"
        " class A { static void main() {"
        "   Vec v = new Vec(); v.add(new String()); } }"
    )

    def test_unannotated_pollutes_shared_array(self):
        res = pta(self.SHARED_EMPTY)
        (empty,) = res.pt_static("Vec", "EMPTY")
        assert loc_names(res.pt_field(empty, ELEMS)) == {"string0"}

    def test_annotation_suppresses_contents(self):
        res = pta(self.SHARED_EMPTY, empty_statics={("Vec", "EMPTY")})
        (empty,) = res.pt_static("Vec", "EMPTY")
        assert res.pt_field(empty, ELEMS) == frozenset()
        assert empty in res.suppressed


class TestProducers:
    def test_field_write_producer_recorded(self):
        res = pta(
            "class Box { Object v; } class A { static void main() {"
            " Box b = new Box(); b.v = new Object(); } }"
        )
        edges = [e for e in res.graph.heap_edges() if e.field == "v"]
        assert len(edges) == 1
        labels = res.producers_of(edges[0])
        assert len(labels) == 1
        assert str(res.program.commands[labels[0]]).startswith("b.v :=")

    def test_static_write_producer_recorded(self):
        res = pta(
            "class A { static Object o; static void main() { A.o = new Object(); } }"
        )
        edges = list(res.graph.static_edges())
        assert len(edges) == 1
        assert len(res.producers_of(edges[0])) == 1

    def test_multiple_producers(self):
        res = pta(
            "class Box { Object v; } class A { static void main() {"
            " Box b = new Box(); Object o = new Object();"
            " if (nondet()) { b.v = o; } else { b.v = o; } } }"
        )
        edges = [e for e in res.graph.heap_edges() if e.field == "v"]
        assert len(res.producers_of(edges[0])) == 2


class TestModRef:
    def test_direct_field_write(self):
        res = pta(
            "class Box { Object v; void set(Object o) { this.v = o; } }"
            " class A { static void main() { new Box().set(null); } }"
        )
        mod = res.modref.method_mod("Box.set")
        assert mod.writes_field("v")
        assert not mod.writes_field("w")

    def test_transitive_mod_through_call(self):
        res = pta(
            "class Box { Object v; void set(Object o) { this.v = o; } }"
            " class A { static void go(Box b) { b.set(null); }"
            " static void main() { A.go(new Box()); } }"
        )
        assert res.modref.method_mod("A.go").writes_field("v")

    def test_static_mod(self):
        res = pta(
            "class A { static Object o; static void touch() { A.o = null; }"
            " static void main() { A.touch(); } }"
        )
        assert res.modref.method_mod("A.touch").writes_static("A", "o")

    def test_pure_method_has_empty_mod(self):
        res = pta(
            "class A { static int f(int x) { return x + 1; }"
            " static void main() { int y = A.f(2); } }"
        )
        assert res.modref.method_mod("A.f").is_empty()


class TestHeapPaths:
    LEAKY = (
        "class Activity { }"
        " class Act extends Activity { }"
        " class Holder { Object item; }"
        " class A { static Holder root; static void main() {"
        "   Holder h = new Holder(); A.root = h; h.item = new Act(); } }"
    )

    def test_path_found_static_to_activity(self):
        res = pta(self.LEAKY)
        alarms = find_alarms(res.graph, res.program.class_table, "Activity")
        assert len(alarms) == 1
        root, target = alarms[0]
        assert root == StaticFieldNode("A", "root")
        path = find_heap_path(res.graph, root, target)
        assert path is not None and len(path) == 2
        assert path[0].is_static_root
        assert path[1].field == "item"

    def test_removing_edge_disconnects(self):
        res = pta(self.LEAKY)
        root, target = find_alarms(res.graph, res.program.class_table, "Activity")[0]
        path = find_heap_path(res.graph, root, target)
        removed = {path[1]}
        assert find_heap_path(res.graph, root, target, removed) is None
        assert not reaches(res.graph, root, target, removed)

    def test_alternative_path_survives_removal(self):
        res = pta(
            "class Activity { } class Act extends Activity { }"
            " class Holder { Object a; Object b; }"
            " class M { static Holder root; static void main() {"
            "   Holder h = new Holder(); M.root = h;"
            "   Act act = new Act(); h.a = act; h.b = act; } }"
        )
        root, target = find_alarms(res.graph, res.program.class_table, "Activity")[0]
        path = find_heap_path(res.graph, root, target)
        removed = {path[1]}
        other = find_heap_path(res.graph, root, target, removed)
        assert other is not None
        assert other[1] != path[1]

    def test_no_alarm_without_static_root(self):
        res = pta(
            "class Activity { } class Act extends Activity { }"
            " class M { static void main() { Act a = new Act(); } }"
        )
        assert find_alarms(res.graph, res.program.class_table, "Activity") == []

    def test_dot_rendering(self):
        res = pta(self.LEAKY)
        dot = res.graph.to_dot()
        assert dot.startswith("digraph")
        assert "item" in dot


class TestCallSiteSensitivity:
    FACTORY = (
        "class Box { Object v; }"
        " class F { static Box make(Object o) {"
        "   Box b = new Box(); b.v = o; return b; } }"
        " class M { static void main() {"
        "   Box b1 = F.make(new Object());"
        "   Box b2 = F.make(new String());"
        "   Object x = b1.v; } }"
    )

    def test_zero_cfa_conflates_call_sites(self):
        from repro.pointsto import ContextInsensitive

        res = pta(self.FACTORY, policy=ContextInsensitive())
        assert loc_names(res.pt_local("M.main", "x")) == {"object0", "string0"}

    def test_one_cfa_separates_call_sites(self):
        from repro.pointsto import CallSiteSensitive

        res = pta(self.FACTORY, policy=CallSiteSensitive(1))
        hints = {loc.site.hint for loc in res.pt_local("M.main", "x")}
        assert hints == {"object0"}

    def test_object_sensitivity_cannot_help_static_factories(self):
        from repro.pointsto import ObjectSensitive

        # The factory is static: no receiver to discriminate on.
        res = pta(self.FACTORY, policy=ObjectSensitive(1))
        assert loc_names(res.pt_local("M.main", "x")) == {"object0", "string0"}

    def test_kcfa_refutation_still_sound(self):
        from repro.pointsto import CallSiteSensitive
        from repro.symbolic import Engine
        from repro.symbolic.stats import WITNESSED

        res = pta(self.FACTORY, policy=CallSiteSensitive(1))
        engine = Engine(res)
        for edge in res.graph.heap_edges():
            # Every remaining edge under 1-CFA is real: must be witnessed.
            assert engine.refute_edge(edge).status == WITNESSED

    def test_k_must_be_positive(self):
        from repro.pointsto import CallSiteSensitive

        with pytest.raises(ValueError):
            CallSiteSensitive(0)
