"""Tests for search-journal provenance (:mod:`repro.obs.provenance`):
kill-reason classification, per-query journals, prune attribution,
exporters, certificates, and journal survival across worker pools."""

import json

import pytest

from repro.engine import RefutationDriver
from repro.ir import compile_program
from repro.obs import metrics, provenance, trace
from repro.obs.provenance import (
    BUDGET_TIMEOUT,
    CALLEE_SKIP_DROP,
    CONTROL_UNREACHABLE,
    INSTANCE_CONSTRAINT,
    KILL_REASONS,
    LOOP_INVARIANT_DROP,
    REFUTED_CACHE_HIT,
    SOLVER_UNSAT,
    WORKLIST_SUBSUMED,
    RunJournal,
    SearchJournal,
    classify_kill,
    render_certificate,
    to_dot,
)
from repro.pointsto import analyze
from repro.symbolic import Engine, SearchConfig

# The PR 1 dead-branch program: Box.v -> object0 is refuted (the branch
# assigning `new Object()` is dead), Box.v -> string0 is witnessed.
DEAD_BRANCH = """
class Box { Object v; }
class Main {
    static void main() {
        int flag = 0;
        Object o = new String();
        if (flag == 1) { o = new Object(); }
        Box b = new Box();
        b.v = o;
    }
}
"""

# Refuted purely by instance constraints: the overwrite o := new String()
# kills the Object binding before it can reach the heap write.
PURE_INSTANCE = """
class Box { Object v; }
class Main {
    static void main() {
        Box b = new Box();
        Object o = new Object();
        o = new String();
        b.v = o;
    }
}
"""

# Needs loop-invariant inference: the producer is inside a loop, behind a
# dead guard; the irrelevant j-choice sends two states through the loop
# head, so the fixpoint drops the second (loop-invariant-drop), and the
# dead guard contradicts flag := 0 outside the loop (solver-unsat).
LOOP_INVARIANT = """
class Box { Object v; }
class Main {
    static void main() {
        Box b = new Box();
        int flag = 0;
        int i = 0;
        int j = 0;
        while (i < 3) {
            if (j == 0) { j = 1; } else { j = 2; }
            if (flag == 1) { b.v = new Object(); }
            i = i + 1;
        }
        b.v = new String();
    }
}
"""


@pytest.fixture(autouse=True)
def no_leftover_journal():
    provenance.disable()
    yield
    provenance.disable()


def _pta(source):
    return analyze(compile_program(source))


def _refute_all(source, config=None, journal=True):
    """Run every heap edge of ``source`` through one engine; returns
    (results-by-str(edge), journal-or-None)."""
    book = provenance.install() if journal else None
    pta = _pta(source)
    engine = Engine(pta, config or SearchConfig())
    results = {}
    for edge in sorted(pta.graph.heap_edges(), key=str):
        results[str(edge)] = engine.refute_edge(edge)
    provenance.disable()
    return results, book


# ---------------------------------------------------------------------------
# classify_kill
# ---------------------------------------------------------------------------


class TestClassifyKill:
    def test_taxonomy_is_closed(self):
        assert set(KILL_REASONS) == {
            INSTANCE_CONSTRAINT,
            SOLVER_UNSAT,
            LOOP_INVARIANT_DROP,
            WORKLIST_SUBSUMED,
            REFUTED_CACHE_HIT,
            CALLEE_SKIP_DROP,
            BUDGET_TIMEOUT,
            CONTROL_UNREACHABLE,
            provenance.HISTORY_SUBSUMED,
        }

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("instance constraint: a0 from ∅", INSTANCE_CONSTRAINT),
            ("separation: strong update", INSTANCE_CONSTRAINT),
            ("kind mismatch", INSTANCE_CONSTRAINT),
            ("pure constraints unsatisfiable", SOLVER_UNSAT),
            ("control: callee never completes normally", CONTROL_UNREACHABLE),
            ("entry: initial values contradict query", SOLVER_UNSAT),
            ("entry: constraint on uninitialized local", INSTANCE_CONSTRAINT),
            (None, SOLVER_UNSAT),
        ],
    )
    def test_raw_reason_mapping(self, raw, expected):
        assert classify_kill(raw) == expected

    def test_every_classification_is_in_the_taxonomy(self):
        for raw in ("instance constraint", "pure constraints", "control",
                    "entry: x", "dispatch", "narrow", None, "???"):
            assert classify_kill(raw) in KILL_REASONS


# ---------------------------------------------------------------------------
# SearchJournal / RunJournal mechanics
# ---------------------------------------------------------------------------


class TestSearchJournal:
    def test_spawn_kill_witness_events(self):
        sj = SearchJournal("e")
        a = sj.new_state(0, 1)
        b = sj.new_state(a, 2)
        sj.kill(b, 2, SOLVER_UNSAT, "contradiction")
        sj.witness(a, 1)
        sj.close("witnessed")
        assert sj.states == 2
        assert sj.kills == 1
        assert sj.kill_counts == {SOLVER_UNSAT: 1}
        assert sj.witness_sid == a
        fates = sj.fates()
        assert fates[b].reason == SOLVER_UNSAT

    def test_kill_counts_exact_beyond_event_cap(self):
        sj = SearchJournal("e", max_events=3)
        sids = [sj.new_state(0, i) for i in range(3)]
        for sid in sids:
            sj.kill(sid, 0, SOLVER_UNSAT)
        assert len(sj.events) == 3  # capped
        assert sj.dropped_events == 3
        assert sj.kill_counts == {SOLVER_UNSAT: 3}  # exact regardless

    def test_close_publishes_kill_metrics(self):
        name = f"executor.kill.{SOLVER_UNSAT}"
        before = metrics.counter(name).value
        sj = SearchJournal("e")
        sj.kill(sj.new_state(0, 1), 1, SOLVER_UNSAT)
        sj.close("refuted")
        assert metrics.counter(name).value == before + 1

    def test_to_dict_round_trip(self):
        sj = SearchJournal("edge x", kind="edge")
        sid = sj.new_state(0, 7, detail="producer")
        sj.kill(sid, 7, INSTANCE_CONSTRAINT, "boom")
        sj.close("refuted")
        back = SearchJournal.from_dict(sj.to_dict())
        assert back.description == "edge x"
        assert back.status == "refuted"
        assert back.kill_counts == sj.kill_counts
        assert [e.to_row() for e in back.events] == [
            e.to_row() for e in sj.events
        ]


class TestRunJournal:
    def test_install_disable_enabled(self):
        assert not provenance.enabled()
        book = provenance.install()
        assert provenance.enabled()
        assert provenance.get_journal() is book
        provenance.disable()
        assert provenance.get_journal() is None

    def test_drain_and_absorb(self):
        a = RunJournal()
        sj = a.open_search("e1")
        sj.kill(sj.new_state(0, 1), 1, SOLVER_UNSAT)
        sj.close("refuted")
        payloads = a.drain()
        assert a.searches == []
        b = RunJournal()
        b.absorb(payloads)
        assert [s.description for s in b.searches] == ["e1"]
        assert b.attribution() == {SOLVER_UNSAT: 1}

    def test_jsonl_round_trip(self, tmp_path):
        book = RunJournal()
        sj = book.open_search("edge a")
        sj.kill(sj.new_state(0, 3), 3, INSTANCE_CONSTRAINT)
        sj.close("refuted")
        path = tmp_path / "journal.jsonl"
        book.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["attribution"] == {INSTANCE_CONSTRAINT: 1}
        back = RunJournal.read_jsonl(str(path))
        assert back.attribution() == book.attribution()
        assert [s.description for s in back.searches] == ["edge a"]


# ---------------------------------------------------------------------------
# Engine integration: journaling the backwards search
# ---------------------------------------------------------------------------


class TestEngineJournaling:
    def test_disabled_by_default_no_journal_no_kill_reasons(self):
        results, book = _refute_all(DEAD_BRANCH, journal=False)
        assert book is None
        for result in results.values():
            assert result.kill_reasons == {}

    def test_refuted_edge_every_dead_branch_has_a_typed_kill(self):
        results, book = _refute_all(DEAD_BRANCH)
        (sj,) = book.searches_for("box0.v -> object0")
        assert sj.status == "refuted"
        assert sj.kills >= 1
        for event in sj.events:
            if event.kind == provenance.KILLED:
                assert event.reason in KILL_REASONS
                assert event.detail  # every kill says why
        # Leaves of the spawn tree are exactly the killed states.
        children = sj.children()
        leaves = {
            e.sid
            for e in sj.events
            if e.kind == provenance.SPAWNED and e.sid not in children
        }
        assert leaves == set(sj.fates())

    def test_witnessed_edge_records_the_witness(self):
        results, book = _refute_all(DEAD_BRANCH)
        (sj,) = book.searches_for("box0.v -> string0")
        assert sj.status == "witnessed"
        assert sj.witness_sid is not None

    def test_stats_roll_up_kill_reasons(self):
        book = provenance.install()
        pta = _pta(DEAD_BRANCH)
        engine = Engine(pta, SearchConfig())
        for edge in sorted(pta.graph.heap_edges(), key=str):
            engine.refute_edge(edge)
        provenance.disable()
        assert engine.stats.kill_reasons == book.attribution()

    def test_pinned_kill_counts_pure_instance_constraints(self):
        results, book = _refute_all(PURE_INSTANCE)
        refuted = results["box0.v -> object0"]
        assert refuted.status == "refuted"
        assert refuted.kill_reasons == {INSTANCE_CONSTRAINT: 1}

    def test_pinned_kill_counts_loop_invariant_inference(self):
        results, book = _refute_all(LOOP_INVARIANT)
        refuted = results["box0.v -> object0"]
        assert refuted.status == "refuted"
        assert refuted.kill_reasons == {
            SOLVER_UNSAT: 1,
            LOOP_INVARIANT_DROP: 1,
        }

    def test_budget_timeout_kills_are_journaled(self):
        book = provenance.install()
        pta = _pta(LOOP_INVARIANT)
        engine = Engine(pta, SearchConfig(path_budget=2))
        edge = next(
            e for e in pta.graph.heap_edges() if str(e) == "box0.v -> object0"
        )
        result = engine.refute_edge(edge)
        provenance.disable()
        assert result.status == "timeout"
        assert BUDGET_TIMEOUT in result.kill_reasons

    def test_fact_searches_carry_the_description(self):
        from repro.clients import analyze_casts

        book = provenance.install()
        pta = _pta(
            """
            class Main { static void main() {
                int flag = 0;
                Object o = new String();
                if (flag == 1) { o = new Object(); }
                String s = (String) o;
            } }
            """
        )
        analyze_casts(pta)
        provenance.disable()
        kinds = {sj.kind for sj in book.searches}
        assert kinds == {"fact"}
        assert all("cast" in sj.description for sj in book.searches)


# ---------------------------------------------------------------------------
# Attribution: journal == stats == report (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestAttribution:
    def _run_driver(self, jobs=1, backend=None):
        book = provenance.install()
        pta = _pta(LOOP_INVARIANT)
        driver = RefutationDriver(
            pta, SearchConfig(), jobs=jobs, backend=backend
        )
        driver.refute_edges(sorted(pta.graph.heap_edges(), key=str))
        report = driver.build_report(app="t", command="check")
        driver.close()
        provenance.disable()
        return report, book

    def test_report_attribution_equals_journal_kill_events(self):
        report, book = self._run_driver()
        attribution = report.attribution
        journal_kills = book.attribution()
        assert attribution["kills"] == journal_kills
        assert attribution["total_kills"] == sum(journal_kills.values())
        # ... and both equal a recount of the raw journal kill events.
        recount = {}
        for sj in book.searches:
            for event in sj.events:
                if event.kind == provenance.KILLED:
                    recount[event.reason] = recount.get(event.reason, 0) + 1
        assert recount == journal_kills

    def test_attribution_survives_the_thread_pool(self):
        report, book = self._run_driver(jobs=2, backend="thread")
        assert report.attribution["kills"] == book.attribution()
        assert report.attribution["total_kills"] >= 1

    def test_attribution_in_report_json_round_trip(self):
        from repro.engine import RunReport

        report, _ = self._run_driver()
        back = RunReport.from_json(report.to_json())
        assert back.attribution == report.attribution
        assert json.loads(report.to_json())["attribution"] == report.attribution


# ---------------------------------------------------------------------------
# Exporters and certificates
# ---------------------------------------------------------------------------


class TestExporters:
    def test_dot_export_names_kill_reasons_on_leaves(self):
        _, book = _refute_all(DEAD_BRANCH)
        searches = book.searches_for("box0.v -> object0")
        dot = to_dot(searches)
        assert dot.startswith("digraph")
        assert "fillcolor=salmon" in dot  # killed leaves are colored
        assert INSTANCE_CONSTRAINT in dot and SOLVER_UNSAT in dot

    def test_dot_export_marks_the_witness(self):
        _, book = _refute_all(DEAD_BRANCH)
        dot = to_dot(book.searches_for("box0.v -> string0"))
        assert "witnessed" in dot and "fillcolor=palegreen" in dot

    def test_certificate_names_every_dead_branch_reason(self):
        _, book = _refute_all(DEAD_BRANCH)
        text = render_certificate("box0.v -> object0", book, status="refuted")
        (sj,) = book.searches_for("box0.v -> object0")
        assert "refutation certificate" in text
        for reason in sj.kill_counts:
            assert reason in text
        # The per-branch lines carry the human detail, not just the type.
        assert "killed" in text

    def test_certificate_for_witnessed_search(self):
        _, book = _refute_all(DEAD_BRANCH)
        text = render_certificate(
            "box0.v -> string0", book, status="witnessed"
        )
        assert "WITNESSED" in text


# ---------------------------------------------------------------------------
# Worker pools: journals, metrics, and spans survive process hops
# ---------------------------------------------------------------------------


class TestProcessPoolObservability:
    @pytest.fixture()
    def process_run(self):
        # Forked workers inherit the process-wide solver memo; start cold
        # so the searches genuinely run (and count) inside the workers
        # instead of being served from tables warmed by earlier tests.
        from repro.perf.memo import SOLVER_MEMO

        SOLVER_MEMO.clear()
        tracer = trace.install()
        book = provenance.install()
        pta = _pta(DEAD_BRANCH)
        driver = RefutationDriver(
            pta, SearchConfig(), jobs=2, backend="process"
        )
        if driver.backend != "process":
            trace.disable()
            provenance.disable()
            pytest.skip("process backend unavailable on this platform")
        before = {
            name: metrics.counter(name).value
            for name in (
                "executor.states_explored",
                "solver.checks",
            )
        }
        driver.refute_edges(sorted(pta.graph.heap_edges(), key=str))
        report = driver.build_report(app="t", command="check")
        driver.close()
        trace.disable()
        provenance.disable()
        return report, book, tracer, before

    def test_worker_metrics_merge_into_parent_registry(self, process_run):
        report, book, tracer, before = process_run
        # The searches ran in worker processes; without the snapshot merge
        # the parent's executor/solver counters would not move at all.
        assert (
            metrics.counter("executor.states_explored").value
            > before["executor.states_explored"]
        )
        assert metrics.counter("solver.checks").value > before["solver.checks"]

    def test_worker_journals_merge_into_parent(self, process_run):
        report, book, tracer, before = process_run
        assert {sj.description for sj in book.searches} == {
            "box0.v -> object0",
            "box0.v -> string0",
        }
        assert report.attribution["kills"] == book.attribution()

    def test_worker_spans_merge_with_distinct_pids(self, process_run):
        report, book, tracer, before = process_run
        chrome = tracer.to_chrome_trace()
        events = chrome["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) >= 2  # parent + at least one worker row
        names = {
            e["args"]["name"]
            for e in events
            if e["name"] == "process_name"
        }
        assert any(n.startswith("repro worker") for n in names)
        # Worker searches appear as spans with remapped, unique ids.
        span_ids = [
            e["args"]["span_id"] for e in events if e["ph"] == "X"
        ]
        assert len(span_ids) == len(set(span_ids))
        assert any(
            e["name"] == "executor.search" and e["pid"] != chrome_pid(chrome)
            for e in events
            if e["ph"] == "X"
        )


def chrome_pid(chrome) -> int:
    """The parent pid of a Chrome trace (its first process_name meta)."""
    return next(
        e["pid"]
        for e in chrome["traceEvents"]
        if e["name"] == "process_name"
        and e["args"]["name"] == "repro refutation pipeline"
    )


# ---------------------------------------------------------------------------
# CLI: --journal and the explain subcommand
# ---------------------------------------------------------------------------


APP = """
class A extends Activity {
    static boolean keep = false;
    static Activity cache;
    static Activity leaked;
    void onCreate() { if (A.keep) { A.cache = this; } A.leaked = this; }
}
"""


class TestExplainCli:
    @pytest.fixture()
    def run_artifacts(self, tmp_path):
        from repro.cli import main

        app = tmp_path / "app.mj"
        app.write_text(APP)
        report = tmp_path / "report.json"
        journal = tmp_path / "journal.jsonl"
        code = main(
            [
                "check",
                str(app),
                "--json-report",
                str(report),
                "--journal",
                str(journal),
            ]
        )
        assert code == 1  # the leaked alarm survives
        return app, report, journal, tmp_path

    def test_explain_refuted_edge_renders_certificate(
        self, run_artifacts, capsys
    ):
        from repro.cli import main

        app, report, journal, tmp_path = run_artifacts
        dot = tmp_path / "refuted.dot"
        code = main(
            [
                "explain",
                "--report",
                str(report),
                "--journal",
                str(journal),
                "--status",
                "refuted",
                "--dot",
                str(dot),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "refutation certificate" in out
        assert "A.cache" in out
        assert "killed" in out
        assert dot.read_text().startswith("digraph")

    def test_explain_witnessed_edge_renders_path_narrative(
        self, run_artifacts, capsys
    ):
        from repro.cli import main

        app, report, journal, _ = run_artifacts
        code = main(
            [
                "explain",
                "--report",
                str(report),
                "--status",
                "witnessed",
                "--source",
                str(app),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "witness for A.leaked" in out
        assert "A.leaked := this" in out

    def test_process_pool_metrics_flag_reports_worker_counters(
        self, tmp_path
    ):
        from repro.cli import main

        app = tmp_path / "app.mj"
        app.write_text(APP)
        metrics_file = tmp_path / "metrics.json"
        before = metrics.counter("executor.states_explored").value
        main(
            [
                "check",
                str(app),
                "--jobs",
                "2",
                "--backend",
                "process",
                "--metrics",
                str(metrics_file),
            ]
        )
        dump = json.loads(metrics_file.read_text())
        # The searches ran in worker processes; the dump (written after the
        # driver merged worker snapshots) must include their effort.
        assert dump["executor.states_explored"]["value"] > before
        assert dump["solver.checks"]["value"] > 0

    def test_explain_list_and_bad_edge(self, run_artifacts, capsys):
        from repro.cli import main

        app, report, journal, _ = run_artifacts
        assert main(["explain", "--report", str(report), "--list"]) == 0
        out = capsys.readouterr().out
        assert "A.cache" in out and "A.leaked" in out
        assert (
            main(
                ["explain", "--report", str(report), "--edge", "no-such-edge"]
            )
            == 2
        )


# ---------------------------------------------------------------------------
# Facade: AnalysisRequest(journal=True) -> result.certificate(...)
# ---------------------------------------------------------------------------


DEAD_CAST = """
class Main { static void main() {
    int flag = 0;
    Object o = new String();
    if (flag == 1) { o = new Object(); }
    String s = (String) o;
} }
"""


class TestFacadeJournal:
    def test_analyze_attaches_journal_and_certificate(self):
        from repro.api import analyze

        result = analyze(client="casts", source=DEAD_CAST, journal=True)
        assert result.journal is not None
        assert not provenance.enabled()  # facade cleans up after itself
        refuted = next(
            r for r in result.report.records if r.status == "refuted"
        )
        text = result.certificate(refuted.description)
        assert "refutation certificate" in text
        assert "killed" in text

    def test_certificate_without_journal_raises(self):
        from repro.api import analyze

        result = analyze(client="casts", source=DEAD_CAST)
        assert result.journal is None
        with pytest.raises(ValueError):
            result.certificate("anything")
