"""White-box tests for executor internals: continuations, callee skipping,
dispatch filtering, and the generic fact-checking entry point."""

import pytest

from repro.ir import compile_program
from repro.ir import instructions as ins
from repro.pointsto import ELEMS, analyze
from repro.pointsto.modref import ModSet
from repro.symbolic import Engine, Query, SearchConfig
from repro.symbolic.executor import EnterMethodTask, StmtTask
from repro.symbolic.stats import REFUTED, WITNESSED


def setup(source, **cfg):
    program = compile_program(source)
    pta = analyze(program)
    return program, pta, Engine(pta, SearchConfig(**cfg))


def label_of(program, text):
    for label, cmd in program.commands.items():
        if str(cmd) == text:
            return label
    raise AssertionError(f"no command {text!r}")


class TestContinuations:
    SOURCE = (
        "class M { static void main() {"
        " int a = 1;"
        " if (a < 2) { int b = 2; }"
        " int c = 3; } }"
    )

    def test_continuation_ends_with_method_entry(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "c := 3")
        k = engine._continuation_before("M.main", label)
        tasks = []
        while k != ():
            task, k = k
            tasks.append(task)
        assert isinstance(tasks[-1], EnterMethodTask)
        assert tasks[-1].qname == "M.main"

    def test_continuation_covers_preceding_siblings(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "c := 3")
        k = engine._continuation_before("M.main", label)
        texts = []
        while k != ():
            task, k = k
            if isinstance(task, StmtTask):
                from repro.ir.printer import print_stmt

                texts.append(print_stmt(task.stmt))
        joined = "\n".join(texts)
        assert "a := 1" in joined
        assert "choice" in joined
        assert "c := 3" not in joined  # exclusive of the target command

    def test_continuation_inside_branch(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "b := 2")
        k = engine._continuation_before("M.main", label)
        texts = []
        while k != ():
            task, k = k
            if isinstance(task, StmtTask):
                from repro.ir.printer import print_stmt

                texts.append(print_stmt(task.stmt))
        joined = "\n".join(texts)
        # Inside the branch: the guard assume precedes, the other branch
        # does not appear, and the whole choice is not re-executed.
        assert "assume (a < 2)" in joined
        assert "choice" not in joined

    def test_continuation_inside_loop_adds_loop_task(self):
        program, pta, engine = setup(
            "class M { static void main() {"
            " int i = 0;"
            " while (i < 3) { int x = 9; i = i + 1; } } }"
        )
        label = label_of(program, "x := 9")
        k = engine._continuation_before("M.main", label)
        from repro.ir.stmts import Loop

        kinds = []
        while k != ():
            task, k = k
            if isinstance(task, StmtTask):
                kinds.append(type(task.stmt).__name__)
        assert "Loop" in kinds  # saturation scheduled for the partial iteration


class TestSkipCall:
    def test_skip_drops_modified_fields_only(self):
        program, pta, engine = setup(
            "class Box { Object v; Object w; }"
            " class M { static void touch(Box b) { b.v = null; }"
            " static void main() { M.touch(new Box()); } }"
        )
        invoke = next(
            c
            for _, c in program.all_commands()
            if isinstance(c, ins.Invoke) and c.method_name == "touch"
        )
        q = Query("M.main")
        base = q.new_ref(pta.pt_local("M.main", "$t0") or None)
        v_val = q.new_ref(None)
        w_val = q.new_ref(None)
        q.set_field(base, "v", v_val)
        q.set_field(base, "w", w_val)
        mod = pta.modref.method_mod("M.touch")
        engine._skip_call(invoke, q, mod)
        assert q.get_field(base, "v") is None  # touched field dropped
        assert q.get_field(base, "w") is not None  # untouched field kept

    def test_skip_drops_allocated_instances(self):
        program, pta, engine = setup(
            "class Box { Object v; }"
            " class M { static Object make() { return new Object(); }"
            " static void main() { Object o = M.make(); } }"
        )
        invoke = next(
            c
            for _, c in program.all_commands()
            if isinstance(c, ins.Invoke) and c.method_name == "make"
        )
        mod = pta.modref.method_mod("M.make")
        q = Query("M.main")
        made = q.new_ref(pta.pt_local("M.main", "o"))  # from the callee's site
        other = q.new_ref(None)
        q.set_field(other, "v", made)
        engine._skip_call(invoke, q, mod)
        # The instance the callee may allocate must not survive the skip.
        assert q.get_field(other, "v") is None

    def test_unknown_callee_drops_heap(self):
        program, pta, engine = setup("class M { static void main() { } }")
        invoke = ins.Invoke(None, None, "mystery", [], "Nowhere", "static")
        invoke.label = -1
        mod = ModSet()
        mod.calls_unknown = True
        q = Query("M.main")
        base = q.new_ref(None)
        q.set_field(base, "f", q.new_ref(None))
        q.set_static("C", "g", q.new_ref(None))
        local = q.new_data()
        q.set_local("keepme", local)
        engine._skip_call(invoke, q, mod)
        assert not q.field_cells and not q.statics
        assert q.get_local("keepme") is not None  # caller locals survive


class TestDispatchFiltering:
    def test_receiver_region_filters_targets(self):
        program, pta, engine = setup(
            "class Base { Object make() { return new Object(); } }"
            " class Sub extends Base { Object make() { return new String(); } }"
            " class M { static void main() {"
            "   Base b = new Base();"
            "   if (nondet()) { b = new Sub(); }"
            "   Object o = b.make(); } }"
        )
        invoke = next(
            c
            for _, c in program.all_commands()
            if isinstance(c, ins.Invoke) and c.method_name == "make"
        )
        callees = sorted(pta.callees_of(invoke.label))
        assert callees == ["Base.make", "Sub.make"]
        q = Query("M.main")
        recv = q.new_ref(
            frozenset(l for l in pta.pt_local("M.main", "b") if str(l) == "sub0")
        )
        q.set_local(invoke.receiver, recv)
        filtered = engine._filter_dispatch(invoke, q, callees)
        assert filtered == ["Sub.make"]


class TestRefuteFactAt:
    SOURCE = (
        "class A { } class B { } class M { static void main() {"
        " Object o = new A();"
        " int k = 0;"
        " if (k == 1) { o = new B(); }"
        " int probe = 7; } }"
    )

    def test_feasible_fact_witnessed(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "probe := 7")
        a_locs = frozenset(l for l in pta.pt_local("M.main", "o") if str(l) == "a0")
        result = engine.refute_fact_at(label, [("o", a_locs)])
        assert result.status == WITNESSED

    def test_infeasible_fact_refuted(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "probe := 7")
        b_locs = frozenset(l for l in pta.pt_local("M.main", "o") if str(l) == "b0")
        result = engine.refute_fact_at(label, [("o", b_locs)])
        assert result.status == REFUTED

    def test_empty_region_trivially_refuted(self):
        program, pta, engine = setup(self.SOURCE)
        label = label_of(program, "probe := 7")
        result = engine.refute_fact_at(label, [("o", frozenset())])
        assert result.status == REFUTED
