"""The one-call programmatic facade: build → point-to → refute → report.

Each analysis client historically had its own entry point, argument order,
and return shape. This module fronts all four with a single pair of types:

>>> from repro.api import AnalysisRequest, analyze
>>> result = analyze(AnalysisRequest(client="casts", source=src))
>>> result.verified, result.status, result.stats.items
(True, 'verified', 3)

or, equivalently, keyword-only::

    result = analyze(client="immutability", source=src, class_name="Box")

``analyze`` accepts the program in any stage of preparation — raw
mini-Java ``source``, a built IR ``program``, or a finished points-to
``pta`` — runs the missing front half of the pipeline, constructs a
:class:`~repro.engine.RefutationDriver` with the requested parallelism,
dispatches to the client, and returns the shared
:class:`~repro.clients.result.AnalysisResult` protocol (``.verified``,
``.status``, ``.results``, ``.stats``, ``.report``). The attached
:class:`~repro.engine.report.RunReport` carries per-job records and, when
tracing is installed (:func:`repro.obs.trace.install`), per-phase timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .clients.casts import analyze_casts
from .clients.encapsulation import analyze_encapsulation
from .clients.immutability import analyze_immutability
from .clients.reachability import analyze_reachability
from .clients.result import WIRE_SCHEMA_VERSION, AnalysisResult, AnalysisStats
from .symbolic import SearchConfig

CLIENTS = ("reachability", "casts", "immutability", "encapsulation")

SCHEMA_VERSION = WIRE_SCHEMA_VERSION

#: The per-client selector fields, flat on :class:`AnalysisRequest`.
_SELECTOR_FIELDS = (
    "root_class",
    "root_field",
    "target_class",
    "site",
    "class_name",
    "owner_class",
    "field_name",
)

#: Which selector fields each client consults. ``analyze`` validates a
#: request against this table *before* running the pipeline front half, so
#: a selector the chosen client would silently ignore is an error instead.
SELECTORS: dict[str, frozenset] = {
    "casts": frozenset(),
    "immutability": frozenset({"class_name"}),
    "encapsulation": frozenset({"owner_class", "field_name"}),
    "reachability": frozenset(
        {"root_class", "root_field", "target_class", "site"}
    ),
}

#: Fields that cannot cross the wire: live objects and callbacks.
_LOCAL_ONLY_FIELDS = ("program", "pta", "config", "context_policy", "on_event")

#: The v1 wire schema: every field of :class:`AnalysisRequest` that
#: serializes. Everything else is process-local (`_LOCAL_ONLY_FIELDS`).
_WIRE_FIELDS = (
    "client",
    "source",
    "include_library",
    *_SELECTOR_FIELDS,
    "jobs",
    "deadline",
    "budget",
    "memoize",
    "subsumption",
    "partition",
    "backend",
    "journal",
    "schedule",
    "portfolio",
    "steal",
    "slow_query_ms",
    "cache_dir",
)


@dataclass
class AnalysisRequest:
    """Everything one analysis run needs, in one declarative object.

    Exactly one of ``source`` / ``program`` / ``pta`` must be given; the
    facade runs whatever remains of the front half of the pipeline.
    Selector fields are per-client: ``root_class``/``root_field``/
    ``target_class`` or ``site`` for ``reachability``, ``class_name`` for
    ``immutability``, ``owner_class``/``field_name`` for
    ``encapsulation``; ``casts`` needs none."""

    client: str  # one of CLIENTS
    # -- program input, in increasing stages of preparation ----------------
    source: Optional[str] = None  # mini-Java source text
    program: Optional["object"] = None  # built repro.ir Program
    pta: Optional["object"] = None  # finished PointsToResult
    include_library: bool = False  # wrap source in the Android library+harness
    # -- per-client selectors ----------------------------------------------
    root_class: Optional[str] = None
    root_field: Optional[str] = None
    target_class: Optional[str] = None
    site: Optional[str] = None
    class_name: Optional[str] = None
    owner_class: Optional[str] = None
    field_name: Optional[str] = None
    # -- analysis / refutation-driver knobs --------------------------------
    context_policy: Optional["object"] = None  # pointsto ContextPolicy
    jobs: int = 1
    deadline: Optional[float] = None
    budget: Optional[int] = None  # path_budget override
    #: Cache toggles (repro.perf): ``None`` keeps the config's value,
    #: ``False`` ablates the layer (CLI --no-memo / --no-subsumption /
    #: --no-partition).
    memoize: Optional[bool] = None
    subsumption: Optional[bool] = None
    partition: Optional[bool] = None
    #: Worker pool flavor for ``jobs > 1``: "thread" (default) or "process".
    backend: Optional[str] = None
    #: Record a per-query search journal for the run and attach it to the
    #: result (``result.journal``, ``result.certificate(desc)``). If a
    #: journal is already installed process-wide it is reused.
    journal: bool = False
    #: Scheduling knobs (repro.engine.schedule): ``None``/``False`` keep
    #: the config's values. ``schedule`` selects the worklist/dispatch
    #: policy ("lifo" or "priority"), ``portfolio`` enables cheap-first
    #: budget rungs (CLI --portfolio), ``steal`` enables path-level work
    #: stealing on the thread backend (CLI --steal).
    schedule: Optional[str] = None
    portfolio: bool = False
    steal: bool = False
    #: Slow-query flight-recorder threshold override in milliseconds
    #: (CLI --slow-query-ms); ``None`` keeps the config's default.
    slow_query_ms: Optional[float] = None
    #: Persistent cross-run verdict store directory (CLI --cache-dir, env
    #: REPRO_CACHE_DIR); ``None`` keeps the config's value (persistence
    #: stays off unless the environment variable is set).
    cache_dir: Optional[str] = None
    config: Optional[SearchConfig] = None
    on_event: Optional[Callable[[object], None]] = None

    # -- v1 wire schema -----------------------------------------------------

    def to_dict(self) -> dict:
        """The v1 wire rendering of this request: plain JSON-serializable
        values plus a ``schema_version`` stamp. Raises :class:`ValueError`
        when a process-local field (``program``/``pta``/``config``/
        ``context_policy``/``on_event``) is set — those hold live objects;
        send ``source=`` over the wire instead."""
        local = [
            name
            for name in _LOCAL_ONLY_FIELDS
            if getattr(self, name) is not None
        ]
        if local:
            raise ValueError(
                f"{', '.join(f'{n}=' for n in local)} cannot cross the wire"
                " (live process-local objects); serve-side requests carry"
                " source= and let the daemon build the rest"
            )
        out: dict = {"schema_version": SCHEMA_VERSION}
        for name in _WIRE_FIELDS:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisRequest":
        """Rebuild a request from its v1 wire dict. Rejects unknown fields
        and unsupported schema versions with a message naming both the
        offender and what the schema accepts."""
        if not isinstance(data, dict):
            raise ValueError(
                f"AnalysisRequest.from_dict needs a dict, got {type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {version!r}: this build speaks"
                f" version {SCHEMA_VERSION}"
            )
        unknown = sorted(set(data) - set(_WIRE_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown AnalysisRequest field(s) {', '.join(unknown)};"
                f" the v1 wire schema accepts {', '.join(_WIRE_FIELDS)}"
            )
        if "client" not in data:
            raise ValueError("AnalysisRequest.from_dict needs client=")
        return cls(**data)


def validate_selectors(request: AnalysisRequest) -> None:
    """Check the request's selector fields against the per-client table
    *before* any pipeline work: a selector the client would ignore raises,
    and missing required selectors raise with the field names spelled out."""
    allowed = SELECTORS[request.client]
    given = {
        name
        for name in _SELECTOR_FIELDS
        if getattr(request, name) is not None
    }
    misapplied = sorted(given - allowed)
    if misapplied:
        accepts = (
            f"accepts {', '.join(sorted(f + '=' for f in allowed))}"
            if allowed
            else "takes no selectors"
        )
        raise ValueError(
            f"selector(s) {', '.join(f + '=' for f in misapplied)} do not"
            f" apply to client {request.client!r}, which {accepts}"
        )
    if request.client == "immutability":
        if "class_name" not in given:
            raise ValueError("immutability needs class_name=")
    elif request.client == "encapsulation":
        missing = sorted({"owner_class", "field_name"} - given)
        if missing:
            raise ValueError(
                f"encapsulation needs {' and '.join(f + '=' for f in missing)}"
            )
    elif request.client == "reachability":
        triple = {"root_class", "root_field", "target_class"}
        if "site" in given:
            if given & triple:
                raise ValueError(
                    "reachability takes site= or the"
                    " root_class=/root_field=/target_class= triple, not both"
                )
        elif given < triple:
            raise ValueError(
                "reachability needs site= or all of root_class=,"
                " root_field=, and target_class="
            )


def _resolve_pta(request: AnalysisRequest) -> "object":
    given = [
        name
        for name in ("source", "program", "pta")
        if getattr(request, name) is not None
    ]
    if len(given) > 1:
        raise ValueError(
            "AnalysisRequest needs exactly one of source=, program=, or"
            f" pta=; got {' and '.join(f'{n}=' for n in given)}"
        )
    if request.pta is not None:
        if request.context_policy is not None:
            raise ValueError("context_policy has no effect on a finished pta=")
        return request.pta
    from .ir import build_program
    from .pointsto import analyze as pointsto_analyze

    program = request.program
    if program is None:
        if request.source is None:
            raise ValueError(
                "AnalysisRequest needs one of source=, program=, or pta="
            )
        program = build_program(frontend_source(request))
    return pointsto_analyze(program, policy=request.context_policy)


def frontend_source(request: AnalysisRequest) -> "object":
    """Run the frontend over the request's source text, wrapping it in the
    Android library+harness first when ``include_library`` asks for it."""
    from .lang import frontend

    source = request.source
    if request.include_library:
        from .android.harness import build_full_source

        source = build_full_source(source)
    return frontend(source)


def _resolve_config(request: AnalysisRequest) -> SearchConfig:
    config = request.config or SearchConfig()
    if request.budget is not None:
        config = config.copy(path_budget=request.budget)
    if request.memoize is not None:
        config = config.copy(memoize_solver=request.memoize)
    if request.subsumption is not None:
        config = config.copy(state_subsumption=request.subsumption)
    if request.partition is not None:
        config = config.copy(partition_solver=request.partition)
    if request.schedule is not None:
        config = config.copy(schedule=request.schedule)
    if request.portfolio:
        config = config.copy(portfolio=True)
    if request.steal:
        config = config.copy(work_stealing=True)
    if request.slow_query_ms is not None:
        config = config.copy(slow_query_ms=request.slow_query_ms)
    if request.cache_dir is not None:
        config = config.copy(cache_dir=request.cache_dir)
    return config


def analyze(request: Optional[AnalysisRequest] = None, /, **kwargs) -> AnalysisResult:
    """Run one analysis client end to end and return its
    :class:`AnalysisResult`. Pass an :class:`AnalysisRequest`, or its
    fields as keywords — ``analyze(client="casts", source=src)``."""
    if request is None:
        request = AnalysisRequest(**kwargs)
    elif kwargs:
        raise TypeError("pass an AnalysisRequest or keywords, not both")
    if request.client not in CLIENTS:
        raise ValueError(
            f"unknown client {request.client!r}; expected one of {CLIENTS}"
        )
    validate_selectors(request)
    pta = _resolve_pta(request)
    config = _resolve_config(request)
    from .engine import RefutationDriver
    from .obs import provenance

    journal = provenance.get_journal()
    installed = False
    if request.journal and journal is None:
        journal = provenance.install()
        installed = True
    driver = RefutationDriver(
        pta,
        config,
        jobs=request.jobs,
        deadline=request.deadline,
        backend=request.backend,
        on_event=request.on_event,
    )
    try:
        result = _run_client(request, pta, config, driver)
    finally:
        driver.close()
        if installed:
            provenance.disable()
    if request.journal:
        result.journal = journal
    return result


def _run_client(
    request: AnalysisRequest, pta: "object", config: SearchConfig, driver: "object"
) -> AnalysisResult:
    """Dispatch a validated request to its client against a caller-supplied
    refuter. Shared between :func:`analyze` (fresh driver per call) and the
    serve session (one persistent driver across requests; clients never
    close an engine they did not create)."""
    if request.client == "casts":
        return analyze_casts(pta, config=config, engine=driver)
    if request.client == "immutability":
        return analyze_immutability(
            pta, request.class_name, config=config, engine=driver
        )
    if request.client == "encapsulation":
        return analyze_encapsulation(
            pta,
            request.owner_class,
            request.field_name,
            config=config,
            engine=driver,
        )
    return analyze_reachability(
        pta,
        request.root_class,
        request.root_field,
        request.target_class,
        site=request.site,
        config=config,
        engine=driver,
    )


__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisStats",
    "analyze",
    "validate_selectors",
    "CLIENTS",
    "SELECTORS",
    "SCHEMA_VERSION",
]
