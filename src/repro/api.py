"""The one-call programmatic facade: build → point-to → refute → report.

Each analysis client historically had its own entry point, argument order,
and return shape. This module fronts all four with a single pair of types:

>>> from repro.api import AnalysisRequest, analyze
>>> result = analyze(AnalysisRequest(client="casts", source=src))
>>> result.verified, result.status, result.stats.items
(True, 'verified', 3)

or, equivalently, keyword-only::

    result = analyze(client="immutability", source=src, class_name="Box")

``analyze`` accepts the program in any stage of preparation — raw
mini-Java ``source``, a built IR ``program``, or a finished points-to
``pta`` — runs the missing front half of the pipeline, constructs a
:class:`~repro.engine.RefutationDriver` with the requested parallelism,
dispatches to the client, and returns the shared
:class:`~repro.clients.result.AnalysisResult` protocol (``.verified``,
``.status``, ``.results``, ``.stats``, ``.report``). The attached
:class:`~repro.engine.report.RunReport` carries per-job records and, when
tracing is installed (:func:`repro.obs.trace.install`), per-phase timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .clients.casts import analyze_casts
from .clients.encapsulation import analyze_encapsulation
from .clients.immutability import analyze_immutability
from .clients.reachability import analyze_reachability
from .clients.result import AnalysisResult, AnalysisStats
from .symbolic import SearchConfig

CLIENTS = ("reachability", "casts", "immutability", "encapsulation")


@dataclass
class AnalysisRequest:
    """Everything one analysis run needs, in one declarative object.

    Exactly one of ``source`` / ``program`` / ``pta`` must be given; the
    facade runs whatever remains of the front half of the pipeline.
    Selector fields are per-client: ``root_class``/``root_field``/
    ``target_class`` or ``site`` for ``reachability``, ``class_name`` for
    ``immutability``, ``owner_class``/``field_name`` for
    ``encapsulation``; ``casts`` needs none."""

    client: str  # one of CLIENTS
    # -- program input, in increasing stages of preparation ----------------
    source: Optional[str] = None  # mini-Java source text
    program: Optional["object"] = None  # built repro.ir Program
    pta: Optional["object"] = None  # finished PointsToResult
    include_library: bool = False  # wrap source in the Android library+harness
    # -- per-client selectors ----------------------------------------------
    root_class: Optional[str] = None
    root_field: Optional[str] = None
    target_class: Optional[str] = None
    site: Optional[str] = None
    class_name: Optional[str] = None
    owner_class: Optional[str] = None
    field_name: Optional[str] = None
    # -- analysis / refutation-driver knobs --------------------------------
    context_policy: Optional["object"] = None  # pointsto ContextPolicy
    jobs: int = 1
    deadline: Optional[float] = None
    budget: Optional[int] = None  # path_budget override
    #: Cache toggles (repro.perf): ``None`` keeps the config's value,
    #: ``False`` ablates the layer (CLI --no-memo / --no-subsumption /
    #: --no-partition).
    memoize: Optional[bool] = None
    subsumption: Optional[bool] = None
    partition: Optional[bool] = None
    #: Worker pool flavor for ``jobs > 1``: "thread" (default) or "process".
    backend: Optional[str] = None
    #: Record a per-query search journal for the run and attach it to the
    #: result (``result.journal``, ``result.certificate(desc)``). If a
    #: journal is already installed process-wide it is reused.
    journal: bool = False
    config: Optional[SearchConfig] = None
    on_event: Optional[Callable[[object], None]] = None


def _resolve_pta(request: AnalysisRequest) -> "object":
    if request.pta is not None:
        if request.context_policy is not None:
            raise ValueError("context_policy has no effect on a finished pta=")
        return request.pta
    from .ir import build_program
    from .pointsto import analyze as pointsto_analyze

    program = request.program
    if program is None:
        if request.source is None:
            raise ValueError(
                "AnalysisRequest needs one of source=, program=, or pta="
            )
        from .lang import frontend

        source = request.source
        if request.include_library:
            from .android.harness import build_full_source

            source = build_full_source(source)
        program = build_program(frontend(source))
    return pointsto_analyze(program, policy=request.context_policy)


def _resolve_config(request: AnalysisRequest) -> SearchConfig:
    config = request.config or SearchConfig()
    if request.budget is not None:
        config = config.copy(path_budget=request.budget)
    if request.memoize is not None:
        config = config.copy(memoize_solver=request.memoize)
    if request.subsumption is not None:
        config = config.copy(state_subsumption=request.subsumption)
    if request.partition is not None:
        config = config.copy(partition_solver=request.partition)
    return config


def analyze(request: Optional[AnalysisRequest] = None, /, **kwargs) -> AnalysisResult:
    """Run one analysis client end to end and return its
    :class:`AnalysisResult`. Pass an :class:`AnalysisRequest`, or its
    fields as keywords — ``analyze(client="casts", source=src)``."""
    if request is None:
        request = AnalysisRequest(**kwargs)
    elif kwargs:
        raise TypeError("pass an AnalysisRequest or keywords, not both")
    if request.client not in CLIENTS:
        raise ValueError(
            f"unknown client {request.client!r}; expected one of {CLIENTS}"
        )
    pta = _resolve_pta(request)
    config = _resolve_config(request)
    from .engine import RefutationDriver
    from .obs import provenance

    journal = provenance.get_journal()
    installed = False
    if request.journal and journal is None:
        journal = provenance.install()
        installed = True
    driver = RefutationDriver(
        pta,
        config,
        jobs=request.jobs,
        deadline=request.deadline,
        backend=request.backend,
        on_event=request.on_event,
    )
    try:
        if request.client == "casts":
            result = analyze_casts(pta, config=config, engine=driver)
        elif request.client == "immutability":
            if request.class_name is None:
                raise ValueError("immutability needs class_name=")
            result = analyze_immutability(
                pta, request.class_name, config=config, engine=driver
            )
        elif request.client == "encapsulation":
            if request.owner_class is None or request.field_name is None:
                raise ValueError(
                    "encapsulation needs owner_class= and field_name="
                )
            result = analyze_encapsulation(
                pta,
                request.owner_class,
                request.field_name,
                config=config,
                engine=driver,
            )
        else:
            result = analyze_reachability(
                pta,
                request.root_class,
                request.root_field,
                request.target_class,
                site=request.site,
                config=config,
                engine=driver,
            )
    finally:
        driver.close()
        if installed:
            provenance.disable()
    if request.journal:
        result.journal = journal
    return result


__all__ = ["AnalysisRequest", "AnalysisResult", "AnalysisStats", "analyze", "CLIENTS"]
