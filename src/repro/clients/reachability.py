"""Generic heap-reachability assertions.

The paper's introduction: "A heap reachability checker would also enable a
developer to write statically checkable assertions about, for example,
object lifetimes, encapsulation of fields, or immutability of objects."

This module provides that checker over arbitrary programs (no Android
library or harness required): assert that no instance of a target class —
or of a specific allocation site — is ever reachable from a given static
field. The verification loop is the same edge-refutation / re-routing loop
as the leak client (Section 2 of the paper), scheduled through the
parallel :class:`repro.engine.RefutationDriver`."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..engine import RefutationDriver
from ..pointsto import PointsToResult, find_heap_path
from ..pointsto.graph import AbsLoc, HeapEdge, StaticFieldNode
from ..symbolic import Engine, SearchConfig
from .result import AnalysisResult, AnalysisStats, make_result

HOLDS = "holds"  # the assertion is verified (all paths refuted)
VIOLATED = "violated"  # a fully witnessed heap path exists
INCONCLUSIVE = "inconclusive"  # timeouts prevented a verdict

#: Every client entry point accepts either a bare serial engine or the
#: parallel driver; bare engines keep the seed's one-edge-at-a-time walk.
Refuter = Union[Engine, RefutationDriver]


@dataclass
class ReachabilityResult:
    root: StaticFieldNode
    target: AbsLoc
    status: str
    witnessed_path: Optional[list[HeapEdge]] = None
    refuted_edges: int = 0
    timeouts: int = 0


def _resolve_refuter(
    pta: PointsToResult,
    config: Optional[SearchConfig],
    engine: Optional[Refuter],
    jobs: int,
    deadline: Optional[float],
) -> Refuter:
    if engine is not None:
        return engine
    return RefutationDriver(
        pta, config or SearchConfig(), jobs=jobs, deadline=deadline
    )


def _refute_path(
    refuter: Refuter, path: list[HeapEdge]
) -> Iterable[tuple[HeapEdge, "object"]]:
    if isinstance(refuter, RefutationDriver):
        return refuter.refute_path(path)
    return ((edge, refuter.refute_edge(edge)) for edge in path)


def _refute_reachability(
    pta: PointsToResult,
    engine: Refuter,
    root: StaticFieldNode,
    target: AbsLoc,
    shared_refuted: Optional[set] = None,
) -> ReachabilityResult:
    """The Section 2 loop: find a heap path, refute edges, re-route.

    ``engine`` may be a serial :class:`Engine` or a
    :class:`RefutationDriver`; with a driver the edges of each candidate
    path are refuted across the worker pool."""
    refuted: set[HeapEdge] = shared_refuted if shared_refuted is not None else set()
    refuted_count = 0
    timeouts = 0
    while True:
        path = find_heap_path(pta.graph, root, target, refuted)
        if path is None:
            return ReachabilityResult(root, target, HOLDS, None, refuted_count, timeouts)
        progressed = False
        saw_timeout = False
        for edge, result in _refute_path(engine, path):
            if result.refuted:
                refuted.add(edge)
                refuted_count += 1
                progressed = True
                break
            if result.timed_out:
                saw_timeout = True
                timeouts += 1
        if not progressed:
            status = INCONCLUSIVE if saw_timeout else VIOLATED
            return ReachabilityResult(
                root, target, status, path, refuted_count, timeouts
            )


def refute_reachability(
    pta: PointsToResult,
    engine: Refuter,
    root: StaticFieldNode,
    target: AbsLoc,
    shared_refuted: Optional[set] = None,
) -> ReachabilityResult:
    """Deprecated alias for the single-pair refutation loop.

    Use :func:`analyze_reachability` (or :func:`repro.api.analyze`) for the
    normalized entry point; this shim remains for callers of the original
    signature."""
    warnings.warn(
        "refute_reachability() is deprecated; use"
        " repro.clients.analyze_reachability() or repro.api.analyze()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _refute_reachability(pta, engine, root, target, shared_refuted)


def assert_unreachable(
    pta: PointsToResult,
    root_class: str,
    root_field: str,
    target_class: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[ReachabilityResult]:
    """Check "no instance of ``target_class`` is ever reachable from the
    static field ``root_class.root_field``". Returns one result per target
    abstract location connected in the flow-insensitive graph (empty list
    means the points-to analysis already proves the assertion)."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    root = StaticFieldNode(root_class, root_field)
    table = pta.program.class_table
    targets = [
        loc
        for loc in pta.graph.all_abs_locs()
        if not loc.is_array
        and loc.site.kind == "object"
        and table.site_is_instance(loc.site, target_class)
    ]
    shared: set[HeapEdge] = set()
    results = []
    for target in sorted(targets, key=str):
        if find_heap_path(pta.graph, root, target) is None:
            continue  # not even flow-insensitively reachable
        results.append(_refute_reachability(pta, refuter, root, target, shared))
    return results


def assert_not_leaked(
    pta: PointsToResult,
    site_hint: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[ReachabilityResult]:
    """Escape-to-static check for one allocation site: is any instance
    allocated at the site named ``site_hint`` (e.g. ``"box0"``) reachable
    from *any* static field? The lifetime-assertion flavor of the client."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    targets = [
        loc for loc in pta.graph.all_abs_locs() if loc.site.hint == site_hint
    ]
    roots = sorted(
        {
            node
            for node in pta.graph.pts
            if isinstance(node, StaticFieldNode) and pta.graph.pts[node]
        },
        key=str,
    )
    shared: set[HeapEdge] = set()
    results = []
    for root in roots:
        for target in sorted(targets, key=str):
            if find_heap_path(pta.graph, root, target) is None:
                continue
            results.append(_refute_reachability(pta, refuter, root, target, shared))
    return results


def verified(results: list[ReachabilityResult]) -> bool:
    """True when the assertion holds: every connected pair was refuted."""
    return all(r.status == HOLDS for r in results)


def _finalize(
    refuter: Refuter, engine: Optional[Refuter], command: str
) -> Optional["object"]:
    """Snapshot the run report and release the pool when we own the driver.

    Every normalized ``analyze_*`` entry point funnels through here: if the
    refuter is a :class:`RefutationDriver` its structured
    :class:`~repro.engine.report.RunReport` is attached to the result, and
    the worker pool is shut down unless the caller supplied the driver
    (then its lifecycle is theirs)."""
    report = None
    if isinstance(refuter, RefutationDriver):
        report = refuter.build_report(command=command)
        if engine is None:
            refuter.close()
    return report


def _tally_reachability(results: list[ReachabilityResult]) -> AnalysisStats:
    stats = AnalysisStats(items=len(results))
    for r in results:
        if r.status == HOLDS:
            stats.verified_items += 1
        elif r.status == VIOLATED:
            stats.violated_items += 1
        else:
            stats.inconclusive_items += 1
    return stats


def analyze_reachability(
    pta: PointsToResult,
    root_class: Optional[str] = None,
    root_field: Optional[str] = None,
    target_class: Optional[str] = None,
    *,
    site: Optional[str] = None,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> AnalysisResult:
    """Normalized heap-reachability client.

    Two flavors share one entry point: pass ``root_class``/``root_field``/
    ``target_class`` to assert "no ``target_class`` instance is reachable
    from the static field ``root_class.root_field``"
    (:func:`assert_unreachable`), or pass ``site=`` to assert "nothing
    allocated at this site escapes to any static field"
    (:func:`assert_not_leaked`). Returns an
    :class:`~repro.clients.result.AnalysisResult` whose ``results`` are the
    familiar :class:`ReachabilityResult` objects."""
    if site is None and None in (root_class, root_field, target_class):
        raise ValueError(
            "analyze_reachability needs either site=... or all of"
            " root_class/root_field/target_class"
        )
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    if site is not None:
        results = assert_not_leaked(pta, site, config, refuter)
    else:
        results = assert_unreachable(
            pta, root_class, root_field, target_class, config, refuter
        )
    report = _finalize(refuter, engine, "reachability")
    return make_result(
        "reachability", results, _tally_reachability(results), report
    )
