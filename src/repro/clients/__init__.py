"""Additional heap-reachability clients beyond the Android leak detector —
the applications the paper's introduction sketches: downcast safety,
lifetime/escape assertions, and field-encapsulation checking.

Every client answers through the shared
:class:`~repro.clients.result.AnalysisResult` protocol via its normalized
``analyze_*`` entry point (or the :func:`repro.api.analyze` facade). The
original per-client entry points (``check_casts``, ``check_immutable``,
``check_encapsulation``, ``refute_reachability``, …) remain as thin
deprecated shims.
"""

from .casts import (
    POSSIBLY_UNSAFE,
    SAFE,
    UNKNOWN,
    CastReport,
    analyze_casts,
    check_casts,
    unsafe_casts,
)
from .encapsulation import (
    ExposureResult,
    analyze_encapsulation,
    check_encapsulation,
    encapsulated,
)
from .immutability import (
    IMMUTABLE,
    MUTATED,
    ImmutabilityReport,
    MutationSite,
    analyze_immutability,
    check_immutable,
)
from .reachability import (
    HOLDS,
    INCONCLUSIVE,
    VIOLATED,
    ReachabilityResult,
    analyze_reachability,
    assert_not_leaked,
    assert_unreachable,
    refute_reachability,
    verified,
)
from .result import AnalysisResult, AnalysisStats

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "POSSIBLY_UNSAFE",
    "SAFE",
    "UNKNOWN",
    "CastReport",
    "analyze_casts",
    "check_casts",
    "unsafe_casts",
    "ExposureResult",
    "analyze_encapsulation",
    "check_encapsulation",
    "encapsulated",
    "IMMUTABLE",
    "MUTATED",
    "ImmutabilityReport",
    "MutationSite",
    "analyze_immutability",
    "check_immutable",
    "HOLDS",
    "INCONCLUSIVE",
    "VIOLATED",
    "ReachabilityResult",
    "analyze_reachability",
    "assert_not_leaked",
    "assert_unreachable",
    "refute_reachability",
    "verified",
]
