"""Additional heap-reachability clients beyond the Android leak detector —
the applications the paper's introduction sketches: downcast safety,
lifetime/escape assertions, and field-encapsulation checking."""

from .casts import POSSIBLY_UNSAFE, SAFE, UNKNOWN, CastReport, check_casts, unsafe_casts
from .encapsulation import ExposureResult, check_encapsulation, encapsulated
from .immutability import (
    IMMUTABLE,
    MUTATED,
    ImmutabilityReport,
    MutationSite,
    check_immutable,
)
from .reachability import (
    HOLDS,
    INCONCLUSIVE,
    VIOLATED,
    ReachabilityResult,
    assert_not_leaked,
    assert_unreachable,
    refute_reachability,
    verified,
)

__all__ = [
    "POSSIBLY_UNSAFE",
    "SAFE",
    "UNKNOWN",
    "CastReport",
    "check_casts",
    "unsafe_casts",
    "ExposureResult",
    "check_encapsulation",
    "encapsulated",
    "IMMUTABLE",
    "MUTATED",
    "ImmutabilityReport",
    "MutationSite",
    "check_immutable",
    "HOLDS",
    "INCONCLUSIVE",
    "VIOLATED",
    "ReachabilityResult",
    "assert_not_leaked",
    "assert_unreachable",
    "refute_reachability",
    "verified",
]
