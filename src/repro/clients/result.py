"""The shared result protocol every analysis client reports through.

Historically the four clients each invented their own return shape
(``list[CastReport]``, ``ImmutabilityReport``, ``list[ExposureResult]``,
``list[ReachabilityResult]``) and their own notion of "verified". The
:class:`AnalysisResult` protocol normalizes them: every client — and the
:func:`repro.api.analyze` facade fronting them — answers with

* ``verified`` — did the refuter discharge *every* obligation?
* ``status`` — ``verified`` / ``violated`` / ``inconclusive`` (timeouts
  prevented a verdict but nothing was witnessed);
* ``results`` — the client's per-item detail objects, unchanged, so no
  information the legacy entry points returned is lost;
* ``stats`` — uniform obligation counts (:class:`AnalysisStats`);
* ``report`` — the structured per-job :class:`~repro.engine.report.RunReport`
  when the client ran on a driver it owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.report import RunReport

VERIFIED = "verified"
VIOLATED = "violated"
INCONCLUSIVE = "inconclusive"

#: Version stamp of the v1 wire schema shared by
#: :meth:`repro.api.AnalysisRequest.to_dict` and
#: :meth:`AnalysisResult.to_dict`. Bump together with any
#: breaking change to either payload.
WIRE_SCHEMA_VERSION = 1


@dataclass
class AnalysisStats:
    """Uniform per-obligation counts across every client."""

    items: int = 0  # independent proof obligations examined
    verified_items: int = 0  # discharged (refuted / proved safe)
    violated_items: int = 0  # witnessed (a concrete path program survives)
    inconclusive_items: int = 0  # timeout / budget prevented a verdict
    seconds: float = 0.0  # driver wall-clock, when a driver ran the batch
    path_programs: int = 0  # total search effort, when a driver ran it

    def to_dict(self) -> dict:
        return {
            "items": self.items,
            "verified_items": self.verified_items,
            "violated_items": self.violated_items,
            "inconclusive_items": self.inconclusive_items,
            "seconds": self.seconds,
            "path_programs": self.path_programs,
        }


@dataclass
class AnalysisResult:
    """What every client (and :func:`repro.api.analyze`) returns."""

    client: str  # reachability | casts | immutability | encapsulation
    verified: bool
    status: str  # verified | violated | inconclusive
    results: list = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    report: Optional[RunReport] = None
    #: The run's search journal (:class:`repro.obs.provenance.RunJournal`)
    #: when the request asked for one (``AnalysisRequest(journal=True)``).
    journal: Optional[object] = None

    def to_dict(self) -> dict:
        """The v1 wire rendering: JSON-serializable, journal excluded
        (journals are process-local; render them with
        :meth:`certificate` and ship the string). Per-item detail keeps
        each client's ``str()`` rendering plus its ``status`` when the
        item type has one."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "client": self.client,
            "verified": self.verified,
            "status": self.status,
            "results": [
                {"description": str(r), "status": getattr(r, "status", None)}
                for r in self.results
            ],
            "stats": self.stats.to_dict(),
            "report": self.report.to_dict() if self.report is not None else None,
        }

    def certificate(self, description: str) -> str:
        """The refutation certificate (or search provenance) for one job,
        rendered from the attached journal. ``description`` matches the
        job's record description (exact, else substring)."""
        if self.journal is None:
            raise ValueError(
                "no journal attached: run the analysis with"
                " AnalysisRequest(journal=True)"
            )
        from ..obs import provenance

        status = None
        if self.report is not None:
            for record in self.report.records:
                if (
                    record.description == description
                    or description in record.description
                ):
                    status = record.status
                    break
        return provenance.render_certificate(
            description, self.journal, status=status
        )

    def __str__(self) -> str:
        s = self.stats
        return (
            f"{self.client}: {self.status}"
            f" ({s.verified_items}/{s.items} obligations discharged"
            f"{f', {s.violated_items} violated' if s.violated_items else ''}"
            f"{f', {s.inconclusive_items} inconclusive' if s.inconclusive_items else ''})"
        )


def overall_status(stats: AnalysisStats) -> str:
    """The uniform rollup: any witness ⇒ violated; else any timeout ⇒
    inconclusive; else verified (vacuously verified when there were no
    obligations — the up-front analysis already proved the property)."""
    if stats.violated_items:
        return VIOLATED
    if stats.inconclusive_items:
        return INCONCLUSIVE
    return VERIFIED


def make_result(
    client: str,
    results: list,
    stats: AnalysisStats,
    report: Optional[RunReport] = None,
) -> AnalysisResult:
    if report is not None:
        stats.seconds = report.wall_seconds
        stats.path_programs = report.path_programs
    status = overall_status(stats)
    return AnalysisResult(
        client=client,
        verified=status == VERIFIED,
        status=status,
        results=results,
        stats=stats,
        report=report,
    )
