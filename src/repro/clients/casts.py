"""Downcast-safety checking — one of the clients the paper's introduction
motivates ("precise heap reachability information improves ... cast
checking").

For every ``(T) x`` in the program, the flow-insensitive points-to set of
``x`` may contain abstract locations incompatible with ``T`` — a potential
``ClassCastException``. The refutation engine then asks, for each cast:
*can execution reach this cast with* ``x`` *holding an incompatible
instance?* A refutation proves the cast safe; a witness is a concrete path
program to a potential failure.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..engine import RefutationDriver
from ..ir import instructions as ins
from ..pointsto import PointsToResult
from ..pointsto.graph import AbsLoc
from ..symbolic import SearchConfig
from ..symbolic.stats import REFUTED, WITNESSED
from .reachability import Refuter, _finalize, _resolve_refuter
from .result import AnalysisResult, AnalysisStats, make_result

SAFE = "safe"
POSSIBLY_UNSAFE = "possibly-unsafe"
UNKNOWN = "unknown"  # search timed out


@dataclass
class CastReport:
    label: int
    method: str
    cast: ins.CastCmd
    #: Incompatible abstract locations per the points-to analysis.
    suspects: frozenset
    status: str  # safe | possibly-unsafe | unknown
    path_programs: int = 0
    witness_trace: Optional[list[int]] = None

    def __str__(self) -> str:
        return f"({self.cast.class_name}) {self.cast.src} in {self.method}: {self.status}"


def _check_casts(
    pta: PointsToResult,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[CastReport]:
    """Check every reachable cast in the program.

    Each suspicious cast is an independent fact-refutation query; with a
    parallel driver (``jobs > 1``) the queries are fanned out over the
    worker pool. Reports come back in program order either way."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    table = pta.program.class_table
    reports: list[Optional[CastReport]] = []
    # First pass: classify trivially-safe casts, collect the rest as jobs.
    jobs_to_run: list[tuple] = []  # (report index, cmd, qname, suspects)
    for qname in sorted(pta.call_graph.reachable_methods):
        method = pta.program.methods.get(qname)
        if method is None:
            continue
        for cmd in pta.program.commands_of(qname):
            if not isinstance(cmd, ins.CastCmd):
                continue
            suspects = frozenset(
                loc
                for loc in pta.pt_local(qname, cmd.src)
                if not table.site_is_instance(loc.site, cmd.class_name)
            )
            if not suspects:
                reports.append(
                    CastReport(cmd.label, qname, cmd, suspects, SAFE)
                )
                continue
            jobs_to_run.append((len(reports), cmd, qname, suspects))
            reports.append(None)
    # Second pass: run the batch and fill reports back in program order.
    if isinstance(refuter, RefutationDriver):
        results = refuter.refute_facts(
            [
                (
                    cmd.label,
                    [(cmd.src, suspects)],
                    f"cast@L{cmd.label} ({cmd.class_name}) {cmd.src} in {qname}",
                )
                for _, cmd, qname, suspects in jobs_to_run
            ]
        )
    else:
        results = [
            refuter.refute_fact_at(cmd.label, [(cmd.src, suspects)])
            for _, cmd, _, suspects in jobs_to_run
        ]
    for (index, cmd, qname, suspects), result in zip(jobs_to_run, results):
        if result.status == REFUTED:
            status = SAFE
        elif result.status == WITNESSED:
            status = POSSIBLY_UNSAFE
        else:
            status = UNKNOWN
        reports[index] = CastReport(
            cmd.label,
            qname,
            cmd,
            suspects,
            status,
            result.path_programs,
            result.witness_trace,
        )
    return [r for r in reports if r is not None]


def check_casts(
    pta: PointsToResult,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[CastReport]:
    """Deprecated: use :func:`analyze_casts` (or :func:`repro.api.analyze`)
    for the normalized result protocol. Behavior is unchanged."""
    warnings.warn(
        "check_casts() is deprecated; use repro.clients.analyze_casts()"
        " or repro.api.analyze()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_casts(pta, config, engine, jobs, deadline)


def unsafe_casts(reports: list[CastReport]) -> list[CastReport]:
    """Deprecated: filter ``analyze_casts(...).results`` instead."""
    warnings.warn(
        "unsafe_casts() is deprecated; filter analyze_casts(...).results"
        " by status instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return [r for r in reports if r.status != SAFE]


def analyze_casts(
    pta: PointsToResult,
    *,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> AnalysisResult:
    """Normalized downcast-safety client: check every reachable cast and
    report through the shared :class:`~repro.clients.result.AnalysisResult`
    protocol. ``results`` are the familiar :class:`CastReport` objects in
    program order."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    reports = _check_casts(pta, config, refuter)
    report = _finalize(refuter, engine, "casts")
    stats = AnalysisStats(items=len(reports))
    for r in reports:
        if r.status == SAFE:
            stats.verified_items += 1
        elif r.status == POSSIBLY_UNSAFE:
            stats.violated_items += 1
        else:
            stats.inconclusive_items += 1
    return make_result("casts", reports, stats, report)
