"""Downcast-safety checking — one of the clients the paper's introduction
motivates ("precise heap reachability information improves ... cast
checking").

For every ``(T) x`` in the program, the flow-insensitive points-to set of
``x`` may contain abstract locations incompatible with ``T`` — a potential
``ClassCastException``. The refutation engine then asks, for each cast:
*can execution reach this cast with* ``x`` *holding an incompatible
instance?* A refutation proves the cast safe; a witness is a concrete path
program to a potential failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import instructions as ins
from ..pointsto import PointsToResult
from ..pointsto.graph import AbsLoc
from ..symbolic import Engine, SearchConfig
from ..symbolic.stats import REFUTED, WITNESSED

SAFE = "safe"
POSSIBLY_UNSAFE = "possibly-unsafe"
UNKNOWN = "unknown"  # search timed out


@dataclass
class CastReport:
    label: int
    method: str
    cast: ins.CastCmd
    #: Incompatible abstract locations per the points-to analysis.
    suspects: frozenset
    status: str  # safe | possibly-unsafe | unknown
    path_programs: int = 0
    witness_trace: Optional[list[int]] = None

    def __str__(self) -> str:
        return f"({self.cast.class_name}) {self.cast.src} in {self.method}: {self.status}"


def check_casts(
    pta: PointsToResult,
    config: Optional[SearchConfig] = None,
    engine: Optional[Engine] = None,
) -> list[CastReport]:
    """Check every reachable cast in the program."""
    engine = engine or Engine(pta, config or SearchConfig())
    table = pta.program.class_table
    reports: list[CastReport] = []
    for qname in sorted(pta.call_graph.reachable_methods):
        method = pta.program.methods.get(qname)
        if method is None:
            continue
        for cmd in pta.program.commands_of(qname):
            if not isinstance(cmd, ins.CastCmd):
                continue
            suspects = frozenset(
                loc
                for loc in pta.pt_local(qname, cmd.src)
                if not table.site_is_instance(loc.site, cmd.class_name)
            )
            if not suspects:
                reports.append(
                    CastReport(cmd.label, qname, cmd, suspects, SAFE)
                )
                continue
            result = engine.refute_fact_at(cmd.label, [(cmd.src, suspects)])
            if result.status == REFUTED:
                status = SAFE
            elif result.status == WITNESSED:
                status = POSSIBLY_UNSAFE
            else:
                status = UNKNOWN
            reports.append(
                CastReport(
                    cmd.label,
                    qname,
                    cmd,
                    suspects,
                    status,
                    result.path_programs,
                    result.witness_trace,
                )
            )
    return reports


def unsafe_casts(reports: list[CastReport]) -> list[CastReport]:
    return [r for r in reports if r.status != SAFE]
