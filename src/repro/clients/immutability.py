"""Immutability assertions — the last of the paper-intro clients.

"...statically checkable assertions about, for example, object lifetimes,
encapsulation of fields, or **immutability of objects**."

A class is (shallowly) immutable after construction when no field write
outside its own constructors can target one of its instances. The
flow-insensitive points-to sets flag every write whose base *may* be such
an instance; the refutation engine then checks each flagged write: *can
execution reach this write with the base holding an instance of the
class?* All refuted ⇒ immutability verified.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Union

from ..engine import RefutationDriver
from ..ir import instructions as ins
from ..ir.program import INIT
from ..pointsto import PointsToResult
from ..symbolic import SearchConfig
from ..symbolic.stats import REFUTED, WITNESSED
from .reachability import Refuter, _finalize, _resolve_refuter
from .result import AnalysisResult, AnalysisStats, make_result

IMMUTABLE = "immutable"
MUTATED = "mutated"
UNKNOWN = "unknown"


@dataclass
class MutationSite:
    label: int
    method: str
    write: Union[ins.FieldWrite, ins.ArrayWrite]
    status: str  # refuted | witnessed | timeout
    witness_trace: Optional[list[int]] = None


@dataclass
class ImmutabilityReport:
    class_name: str
    status: str  # immutable | mutated | unknown
    sites: list[MutationSite]

    @property
    def verified(self) -> bool:
        return self.status == IMMUTABLE


def _check_immutable(
    pta: PointsToResult,
    class_name: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> ImmutabilityReport:
    """Check that instances of ``class_name`` are never mutated outside
    their own constructors. Each flagged write is an independent
    fact-refutation query, fanned out over the driver's worker pool."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    table = pta.program.class_table
    targets = frozenset(
        loc
        for loc in pta.graph.all_abs_locs()
        if loc.site.kind == "object"
        and table.site_is_instance(loc.site, class_name)
    )
    # First pass: collect every flagged write as one refutation job.
    jobs_to_run: list[tuple] = []  # (cmd, qname, suspects)
    for qname in sorted(pta.call_graph.reachable_methods):
        method = pta.program.methods.get(qname)
        if method is None:
            continue
        # Writes inside the class's own constructors are initialization.
        if method.name == INIT and table.is_subclass(method.class_name, class_name):
            continue
        for cmd in pta.program.commands_of(qname):
            if not isinstance(cmd, (ins.FieldWrite, ins.ArrayWrite)):
                continue
            suspects = targets & pta.pt_local(qname, cmd.base)
            if not suspects:
                continue
            jobs_to_run.append((cmd, qname, suspects))
    # Second pass: refute the batch, then fold verdicts in program order.
    if isinstance(refuter, RefutationDriver):
        results = refuter.refute_facts(
            [
                (cmd.label, [(cmd.base, suspects)], f"write@L{cmd.label} in {qname}")
                for cmd, qname, suspects in jobs_to_run
            ]
        )
    else:
        results = [
            refuter.refute_fact_at(cmd.label, [(cmd.base, suspects)])
            for cmd, _, suspects in jobs_to_run
        ]
    sites: list[MutationSite] = []
    overall = IMMUTABLE
    for (cmd, qname, suspects), result in zip(jobs_to_run, results):
        if result.status == REFUTED:
            status = "refuted"
        elif result.status == WITNESSED:
            status = "witnessed"
            overall = MUTATED
        else:
            status = "timeout"
            if overall == IMMUTABLE:
                overall = UNKNOWN
        sites.append(
            MutationSite(cmd.label, qname, cmd, status, result.witness_trace)
        )
    return ImmutabilityReport(class_name, overall, sites)


def check_immutable(
    pta: PointsToResult,
    class_name: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> ImmutabilityReport:
    """Deprecated: use :func:`analyze_immutability` (or
    :func:`repro.api.analyze`) for the normalized result protocol.
    Behavior is unchanged."""
    warnings.warn(
        "check_immutable() is deprecated; use"
        " repro.clients.analyze_immutability() or repro.api.analyze()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_immutable(pta, class_name, config, engine, jobs, deadline)


def analyze_immutability(
    pta: PointsToResult,
    class_name: str,
    *,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> AnalysisResult:
    """Normalized immutability client. ``results`` are the flagged
    :class:`MutationSite` objects (``check_immutable(...).sites``); the
    rollup status maps ``immutable``/``mutated``/``unknown`` onto the
    shared ``verified``/``violated``/``inconclusive`` vocabulary."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    inner = _check_immutable(pta, class_name, config, refuter)
    report = _finalize(refuter, engine, "immutability")
    stats = AnalysisStats(items=len(inner.sites))
    for site in inner.sites:
        if site.status == "refuted":
            stats.verified_items += 1
        elif site.status == "witnessed":
            stats.violated_items += 1
        else:
            stats.inconclusive_items += 1
    return make_result("immutability", inner.sites, stats, report)
