"""Encapsulation assertions: "objects stored in this field never escape".

The paper's introduction lists "encapsulation of fields" among the
assertions a heap-reachability checker enables. The check here: for a
given instance field ``Owner.f`` (the *representation* of Owner), no
object that ``Owner.f`` may hold is reachable from any static field or
from any *other* class's fields — i.e. the representation is owned.

The flow-insensitive graph reports candidate exposure paths; the
refutation engine then filters the spurious ones exactly as in the leak
client."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..pointsto import PointsToResult, find_heap_path
from ..pointsto.graph import AbsLoc, HeapEdge, StaticFieldNode
from ..symbolic import SearchConfig
from .reachability import (
    HOLDS,
    INCONCLUSIVE,
    VIOLATED,
    Refuter,
    _finalize,
    _refute_reachability,
    _resolve_refuter,
)
from .result import AnalysisResult, AnalysisStats, make_result


@dataclass
class ExposureResult:
    owner_class: str
    field: str
    rep_loc: AbsLoc
    root: StaticFieldNode
    status: str
    witnessed_path: Optional[list[HeapEdge]]


def _check_encapsulation(
    pta: PointsToResult,
    owner_class: str,
    field: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[ExposureResult]:
    """Check that the representation objects held in ``owner_class.field``
    are not reachable from any static field. Returns an
    :class:`ExposureResult` for each candidate exposure the
    flow-insensitive graph reports; an empty list (or all ``holds``) means
    the representation is encapsulated against static exposure."""
    engine = _resolve_refuter(pta, config, engine, jobs, deadline)
    table = pta.program.class_table
    # Representation: everything field `field` of Owner instances may hold.
    rep_locs: set[AbsLoc] = set()
    for loc in pta.graph.all_abs_locs():
        if loc.is_array or loc.site.kind != "object":
            continue
        if loc.class_name in table.classes and table.is_subclass(
            loc.class_name, owner_class
        ):
            rep_locs.update(pta.pt_field(loc, field))
    roots = sorted(
        {
            node
            for node in pta.graph.pts
            if isinstance(node, StaticFieldNode) and pta.graph.pts[node]
        },
        key=str,
    )
    shared: set[HeapEdge] = set()
    results = []
    for rep in sorted(rep_locs, key=str):
        for root in roots:
            if find_heap_path(pta.graph, root, rep) is None:
                continue
            inner = _refute_reachability(pta, engine, root, rep, shared)
            results.append(
                ExposureResult(
                    owner_class,
                    field,
                    rep,
                    root,
                    inner.status,
                    inner.witnessed_path,
                )
            )
    return results


def check_encapsulation(
    pta: PointsToResult,
    owner_class: str,
    field: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[ExposureResult]:
    """Deprecated: use :func:`analyze_encapsulation` (or
    :func:`repro.api.analyze`) for the normalized result protocol.
    Behavior is unchanged."""
    warnings.warn(
        "check_encapsulation() is deprecated; use"
        " repro.clients.analyze_encapsulation() or repro.api.analyze()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_encapsulation(
        pta, owner_class, field, config, engine, jobs, deadline
    )


def encapsulated(results: list[ExposureResult]) -> bool:
    """Deprecated: use ``analyze_encapsulation(...).verified`` instead."""
    warnings.warn(
        "encapsulated() is deprecated; use"
        " analyze_encapsulation(...).verified instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return all(r.status == HOLDS for r in results)


def analyze_encapsulation(
    pta: PointsToResult,
    owner_class: str,
    field: str,
    *,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> AnalysisResult:
    """Normalized encapsulation client. ``results`` are the candidate
    :class:`ExposureResult` objects; ``verified`` means every candidate
    exposure of ``owner_class.field``'s representation was refuted."""
    refuter = _resolve_refuter(pta, config, engine, jobs, deadline)
    results = _check_encapsulation(pta, owner_class, field, config, refuter)
    report = _finalize(refuter, engine, "encapsulation")
    stats = AnalysisStats(items=len(results))
    for r in results:
        if r.status == HOLDS:
            stats.verified_items += 1
        elif r.status == VIOLATED:
            stats.violated_items += 1
        else:
            stats.inconclusive_items += 1
    return make_result("encapsulation", results, stats, report)
