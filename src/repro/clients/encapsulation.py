"""Encapsulation assertions: "objects stored in this field never escape".

The paper's introduction lists "encapsulation of fields" among the
assertions a heap-reachability checker enables. The check here: for a
given instance field ``Owner.f`` (the *representation* of Owner), no
object that ``Owner.f`` may hold is reachable from any static field or
from any *other* class's fields — i.e. the representation is owned.

The flow-insensitive graph reports candidate exposure paths; the
refutation engine then filters the spurious ones exactly as in the leak
client."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pointsto import PointsToResult, find_heap_path
from ..pointsto.graph import AbsLoc, HeapEdge, StaticFieldNode
from ..symbolic import SearchConfig
from .reachability import (
    HOLDS,
    INCONCLUSIVE,
    VIOLATED,
    Refuter,
    _resolve_refuter,
    refute_reachability,
)


@dataclass
class ExposureResult:
    owner_class: str
    field: str
    rep_loc: AbsLoc
    root: StaticFieldNode
    status: str
    witnessed_path: Optional[list[HeapEdge]]


def check_encapsulation(
    pta: PointsToResult,
    owner_class: str,
    field: str,
    config: Optional[SearchConfig] = None,
    engine: Optional[Refuter] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
) -> list[ExposureResult]:
    """Check that the representation objects held in ``owner_class.field``
    are not reachable from any static field. Returns an
    :class:`ExposureResult` for each candidate exposure the
    flow-insensitive graph reports; an empty list (or all ``holds``) means
    the representation is encapsulated against static exposure."""
    engine = _resolve_refuter(pta, config, engine, jobs, deadline)
    table = pta.program.class_table
    # Representation: everything field `field` of Owner instances may hold.
    rep_locs: set[AbsLoc] = set()
    for loc in pta.graph.all_abs_locs():
        if loc.is_array or loc.site.kind != "object":
            continue
        if loc.class_name in table.classes and table.is_subclass(
            loc.class_name, owner_class
        ):
            rep_locs.update(pta.pt_field(loc, field))
    roots = sorted(
        {
            node
            for node in pta.graph.pts
            if isinstance(node, StaticFieldNode) and pta.graph.pts[node]
        },
        key=str,
    )
    shared: set[HeapEdge] = set()
    results = []
    for rep in sorted(rep_locs, key=str):
        for root in roots:
            if find_heap_path(pta.graph, root, rep) is None:
                continue
            inner = refute_reachability(pta, engine, root, rep, shared)
            results.append(
                ExposureResult(
                    owner_class,
                    field,
                    rep,
                    root,
                    inner.status,
                    inner.witnessed_path,
                )
            )
    return results


def encapsulated(results: list[ExposureResult]) -> bool:
    return all(r.status == HOLDS for r in results)
