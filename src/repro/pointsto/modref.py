"""Mod/ref analysis: which heap locations may a method (or statement) write.

The paper computes a mod/ref analysis alongside the points-to analysis and
uses it in two places:

* soundly *skipping* callees when the symbolic call stack exceeds its depth
  bound — constraints the callee might produce are dropped;
* the loop-invariant inference, which drops pure constraints (and bounds
  memory constraints) that the loop body may modify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import instructions as ins
from ..ir.program import IRProgram
from ..ir.stmts import Stmt, walk_commands
from .andersen import CallGraph
from .graph import ELEMS


@dataclass
class ModSet:
    """An over-approximation of the memory a piece of code may write.

    ``alloc_sites`` holds the allocation sites the code may execute
    (transitively): skipping a callee must also drop query constraints on
    instances the callee might *allocate*, otherwise those constraints
    could be carried past their producing allocation and unsoundly refuted
    at the program entry.
    """

    fields: set[str] = field(default_factory=set)  # instance fields (and @elems)
    statics: set[tuple[str, str]] = field(default_factory=set)
    locals: set[str] = field(default_factory=set)  # assigned locals (not transitive)
    alloc_sites: set = field(default_factory=set)  # set[AllocSite]
    calls_unknown: bool = False  # a call with no resolved target

    def update(self, other: "ModSet", include_locals: bool = False) -> None:
        self.fields |= other.fields
        self.statics |= other.statics
        self.alloc_sites |= other.alloc_sites
        self.calls_unknown |= other.calls_unknown
        if include_locals:
            self.locals |= other.locals

    def writes_field(self, name: str) -> bool:
        return self.calls_unknown or name in self.fields

    def writes_static(self, class_name: str, field_name: str) -> bool:
        return self.calls_unknown or (class_name, field_name) in self.statics

    def is_empty(self) -> bool:
        return not self.fields and not self.statics and not self.calls_unknown

    def signature(self) -> tuple:
        """A hashable fingerprint of the summary. Two summaries with equal
        signatures behave identically in every mod/ref consultation (callee
        skipping, loop weakening, branch relevance) — the serve session
        compares signatures across an edit to decide which retained
        verdicts a changed method can actually affect."""
        return (
            frozenset(self.fields),
            frozenset(self.statics),
            frozenset(self.alloc_sites),
            self.calls_unknown,
        )


@dataclass
class RefSet:
    """An over-approximation of the memory a piece of code may *read*."""

    fields: set[str] = field(default_factory=set)
    statics: set[tuple[str, str]] = field(default_factory=set)
    reads_unknown: bool = False  # a call with no resolved target

    def update(self, other: "RefSet") -> None:
        self.fields |= other.fields
        self.statics |= other.statics
        self.reads_unknown |= other.reads_unknown


class ModRefAnalysis:
    """Transitive per-method mod summaries over the resolved call graph."""

    def __init__(self, program: IRProgram, call_graph: CallGraph) -> None:
        self.program = program
        self.call_graph = call_graph
        self._direct: dict[str, ModSet] = {}
        self._summary: dict[str, ModSet] = {}
        self._refs: dict[str, RefSet] = {}  # computed lazily
        self._compute()

    def _compute(self) -> None:
        methods = self.call_graph.reachable_methods & set(self.program.methods)
        for qname in methods:
            self._direct[qname] = self._direct_mod(qname)
            self._summary[qname] = ModSet()
            self._summary[qname].update(self._direct[qname], include_locals=True)
        # Fixpoint over the call graph (handles recursion and cycles).
        changed = True
        while changed:
            changed = False
            for qname in methods:
                summary = self._summary[qname]
                before = (
                    len(summary.fields),
                    len(summary.statics),
                    len(summary.alloc_sites),
                    summary.calls_unknown,
                )
                for cmd in walk_commands(self.program.methods[qname].body):
                    if isinstance(cmd, ins.Invoke):
                        for callee in self.call_graph.callees_of(cmd.label):
                            callee_sum = self._summary.get(callee)
                            if callee_sum is None:
                                summary.calls_unknown = True
                            else:
                                summary.update(callee_sum)
                after = (
                    len(summary.fields),
                    len(summary.statics),
                    len(summary.alloc_sites),
                    summary.calls_unknown,
                )
                if before != after:
                    changed = True

    def _direct_mod(self, qname: str) -> ModSet:
        mod = ModSet()
        method = self.program.methods.get(qname)
        if method is None:
            mod.calls_unknown = True
            return mod
        for cmd in walk_commands(method.body):
            self._command_mod(cmd, mod, include_calls=False)
        return mod

    def _command_mod(self, cmd: ins.Command, mod: ModSet, include_calls: bool) -> None:
        if isinstance(cmd, (ins.New, ins.NewArray)):
            mod.alloc_sites.add(cmd.site)
            mod.locals.add(cmd.lhs)
        elif isinstance(cmd, ins.FieldWrite):
            mod.fields.add(cmd.field_name)
        elif isinstance(cmd, ins.ArrayWrite):
            mod.fields.add(ELEMS)
        elif isinstance(cmd, ins.StaticWrite):
            mod.statics.add((cmd.class_name, cmd.field_name))
        elif isinstance(
            cmd,
            (
                ins.Assign,
                ins.BinOpCmd,
                ins.UnOpCmd,
                ins.FieldRead,
                ins.StaticRead,
                ins.ArrayRead,
                ins.ArrayLen,
                ins.Nondet,
                ins.CastCmd,
                ins.InstanceOfCmd,
            ),
        ):
            lhs = getattr(cmd, "lhs", None)
            if lhs is not None:
                mod.locals.add(lhs)
        elif isinstance(cmd, ins.Invoke):
            if cmd.lhs is not None:
                mod.locals.add(cmd.lhs)
            if include_calls:
                targets = self.call_graph.callees_of(cmd.label)
                if not targets:
                    mod.calls_unknown = True
                for callee in targets:
                    summary = self._summary.get(callee)
                    if summary is None:
                        mod.calls_unknown = True
                    else:
                        mod.update(summary)

    # -- public API ----------------------------------------------------------------

    def method_mod(self, qname: str) -> ModSet:
        """Transitive mod set of a method (callees included)."""
        summary = self._summary.get(qname)
        if summary is None:
            unknown = ModSet()
            unknown.calls_unknown = True
            return unknown
        return summary

    def method_refs(self, qname: str) -> RefSet:
        """Transitive *ref* set of a method: the instance fields and static
        fields it (or any callee) may read. This is the read half of the
        footprint the serve session intersects with a points-to delta: a
        verdict whose visited methods never read a grown field or static
        cannot observe the growth."""
        if not self._refs:
            self._compute_refs()
        refs = self._refs.get(qname)
        if refs is None:
            unknown = RefSet()
            unknown.reads_unknown = True
            return unknown
        return refs

    def footprint_refs(self, qnames) -> RefSet:
        """Union of :meth:`method_refs` over a verdict footprint."""
        out = RefSet()
        for qname in qnames:
            out.update(self.method_refs(qname))
        return out

    def _compute_refs(self) -> None:
        methods = self.call_graph.reachable_methods & set(self.program.methods)
        for qname in methods:
            refs = RefSet()
            for cmd in walk_commands(self.program.methods[qname].body):
                if isinstance(cmd, ins.FieldRead):
                    refs.fields.add(cmd.field_name)
                elif isinstance(cmd, ins.ArrayRead):
                    refs.fields.add(ELEMS)
                elif isinstance(cmd, ins.StaticRead):
                    refs.statics.add((cmd.class_name, cmd.field_name))
            self._refs[qname] = refs
        changed = True
        while changed:
            changed = False
            for qname in methods:
                refs = self._refs[qname]
                before = (len(refs.fields), len(refs.statics), refs.reads_unknown)
                for cmd in walk_commands(self.program.methods[qname].body):
                    if isinstance(cmd, ins.Invoke):
                        for callee in self.call_graph.callees_of(cmd.label):
                            callee_refs = self._refs.get(callee)
                            if callee_refs is None:
                                refs.reads_unknown = True
                            else:
                                refs.update(callee_refs)
                if before != (len(refs.fields), len(refs.statics), refs.reads_unknown):
                    changed = True

    def statement_mod(self, stmt: Stmt) -> ModSet:
        """Mod set of one structured statement (e.g. a loop body), callees
        included, plus the locals it assigns directly."""
        mod = ModSet()
        for cmd in walk_commands(stmt):
            self._command_mod(cmd, mod, include_calls=True)
        return mod
