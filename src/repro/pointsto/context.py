"""Context-sensitivity policies for the points-to analysis.

The paper's evaluation uses WALA's 0-1-Container-CFA: Andersen's analysis
with unlimited object-sensitivity for container classes. We provide three
policies:

* :class:`ContextInsensitive` — plain 0-CFA;
* :class:`ObjectSensitive` — k-object-sensitivity for every instance method;
* :class:`ContainerSensitive` — object-sensitivity only for methods of
  designated container classes (our stand-in for 0-1-Container-CFA; it is
  what gives the paper's ``vec0.arr1`` style of abstract-location naming).

A context is a tuple of allocation sites (the receiver chain). Allocation
heap contexts inherit the allocating method's context, truncated to
``depth``.
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import AllocSite
from .graph import AbsLoc, Context


class ContextPolicy:
    """Decides calling contexts for callees and heap contexts for sites."""

    def callee_context(
        self,
        caller_ctx: Context,
        callee_qname: str,
        callee_class: str,
        receiver: Optional[AbsLoc],
        call_label: int = -1,
    ) -> Context:
        raise NotImplementedError

    def heap_context(self, method_ctx: Context, site: AllocSite) -> Context:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class ContextInsensitive(ContextPolicy):
    """0-CFA: a single context for everything."""

    def callee_context(
        self, caller_ctx, callee_qname, callee_class, receiver, call_label=-1
    ):
        return ()

    def heap_context(self, method_ctx, site):
        return ()

    def describe(self) -> str:
        return "0-CFA"


class ObjectSensitive(ContextPolicy):
    """k-object-sensitivity: instance methods are analyzed once per
    receiver abstract location (receiver chains truncated at ``depth``)."""

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("object-sensitivity depth must be >= 1")
        self.depth = depth

    def callee_context(
        self, caller_ctx, callee_qname, callee_class, receiver, call_label=-1
    ):
        if receiver is None:
            return ()
        chain = (receiver.site,) + receiver.hctx
        return chain[: self.depth]

    def heap_context(self, method_ctx, site):
        return method_ctx[: self.depth]

    def describe(self) -> str:
        return f"{self.depth}-object-sensitive"


class ContainerSensitive(ContextPolicy):
    """Object-sensitivity restricted to container classes — the analogue of
    WALA's 0-1-Container-CFA used in the paper's evaluation.

    Methods of classes in ``containers`` (including their subclasses when a
    class table is provided) are analyzed per receiver; everything else is
    context-insensitive. Allocations inside container methods pick up the
    receiver context, which is what separates ``vec0.arr1`` from
    ``vec1.arr1`` in the paper's Figure 2.
    """

    def __init__(
        self,
        containers: set[str],
        depth: int = 2,
        class_table=None,
    ) -> None:
        self.depth = depth
        if class_table is not None:
            expanded: set[str] = set()
            for name in containers:
                if name in class_table:
                    expanded.update(class_table.subclasses(name))
                else:
                    expanded.add(name)
            self.containers = expanded
        else:
            self.containers = set(containers)

    def callee_context(
        self, caller_ctx, callee_qname, callee_class, receiver, call_label=-1
    ):
        if receiver is None:
            return ()
        if callee_class not in self.containers:
            return ()
        chain = (receiver.site,) + receiver.hctx
        return chain[: self.depth]

    def heap_context(self, method_ctx, site):
        return method_ctx[: self.depth]

    def describe(self) -> str:
        return f"0-{self.depth}-Container-CFA({len(self.containers)} containers)"


class CallSiteSensitive(ContextPolicy):
    """Classic k-CFA: contexts are strings of call-site labels. Included
    for completeness of the substrate (the paper's evaluation uses the
    container variant); useful when receiver objects don't discriminate
    but call sites do (e.g. static factory helpers)."""

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError("k-CFA needs k >= 1")
        self.k = k

    def callee_context(
        self, caller_ctx, callee_qname, callee_class, receiver, call_label=-1
    ):
        if call_label < 0:
            return caller_ctx[-self.k :]
        return (tuple(caller_ctx) + (call_label,))[-self.k :]

    def heap_context(self, method_ctx, site):
        return tuple(method_ctx)[-self.k :]

    def describe(self) -> str:
        return f"{self.k}-CFA"
