"""Andersen-style flow-insensitive, field-sensitive points-to analysis.

The solver is a standard inclusion-constraint worklist algorithm with
on-the-fly call-graph construction and pluggable context sensitivity
(:mod:`repro.pointsto.context`). It is the "obtain a conservative analysis
result" phase of the paper (Section 2): the witness-refutation search later
refines its edges on demand.

Annotation support (the paper's ``Ann?=Y`` configuration): a set of static
fields may be declared *contents-free* — any object that flows into such a
field has its outgoing heap edges suppressed. The paper used a single such
annotation on ``HashMap.EMPTY_TABLE``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir import instructions as ins
from ..ir.program import IRProgram
from ..ir.stmts import walk_commands
from ..obs import metrics, trace
from .context import ContextInsensitive, ContextPolicy
from .graph import (
    ELEMS,
    AbsLoc,
    Context,
    FieldNode,
    Node,
    PointsToGraph,
    StaticFieldNode,
    VarNode,
)


@dataclass
class CallGraph:
    """Call-graph facts gathered during constraint solving."""

    # invoke label -> set of (callee qname, callee context)
    targets: dict[int, set[tuple[str, Context]]] = field(default_factory=dict)
    # callee qname -> set of (caller qname, invoke label)
    callers: dict[str, set[tuple[str, int]]] = field(default_factory=dict)
    reachable: set[tuple[str, Context]] = field(default_factory=set)

    def callees_of(self, label: int) -> set[str]:
        return {qname for qname, _ in self.targets.get(label, set())}

    def callers_of(self, qname: str) -> set[tuple[str, int]]:
        return self.callers.get(qname, set())

    @property
    def reachable_methods(self) -> set[str]:
        return {qname for qname, _ in self.reachable}


class _DeferredOp:
    """A load/store/call constraint waiting on a base variable's pt set."""

    __slots__ = ("kind", "payload", "done")

    def __init__(self, kind: str, payload: tuple) -> None:
        self.kind = kind
        self.payload = payload
        self.done: set[AbsLoc] = set()


class AndersenSolver:
    def __init__(
        self,
        program: IRProgram,
        policy: Optional[ContextPolicy] = None,
        suppressed_contents: Optional[set[AbsLoc]] = None,
    ) -> None:
        self.program = program
        self.policy = policy or ContextInsensitive()
        self.suppressed = suppressed_contents or set()
        self.graph = PointsToGraph()
        self.call_graph = CallGraph()
        self._succ: dict[Node, set[Node]] = {}
        self._deferred: dict[Node, list[_DeferredOp]] = {}
        self._worklist: deque[Node] = deque()
        # Delta propagation (difference propagation in the worklist
        # literature): each queued node carries only its *unpropagated*
        # points-to delta. Membership in ``_pending`` doubles as the
        # worklist dedupe — a node already queued just grows its delta
        # instead of being re-enqueued, and successors/deferred ops only
        # ever see each abstract location once.
        self._pending: dict[Node, set[AbsLoc]] = {}
        # Constraints registered after their base already has a points-to
        # set: applied over the full current set from this queue, then fed
        # deltas like every other op.
        self._fresh_ops: deque[tuple[Node, _DeferredOp]] = deque()
        self._analyzed: set[tuple[str, Context]] = set()
        # Local effort tallies, flushed to the metrics registry once per
        # solve() — the worklist loop is far too hot for per-pop locking.
        self._pops = 0
        self._pts_updates = 0
        self._deferred_applied = 0
        self._noop_skips = 0
        self._delta_propagated = 0

    # -- constraint-graph primitives -------------------------------------------

    def _pts(self, node: Node) -> set[AbsLoc]:
        return self.graph.points_to(node)

    def _add_pts(self, node: Node, locs: Iterable[AbsLoc]) -> None:
        current = self._pts(node)
        new = set(locs) - current
        if new:
            current.update(new)
            self._pts_updates += len(new)
            pending = self._pending.get(node)
            if pending is None:
                self._pending[node] = new
                self._worklist.append(node)
            else:
                # Already queued: merge into its delta instead of queueing a
                # second pop (the re-propagation the old full-set worklist
                # would have performed).
                pending.update(new)
                self._noop_skips += 1

    def _add_copy(self, src: Node, dst: Node) -> None:
        succ = self._succ.setdefault(src, set())
        if dst not in succ:
            succ.add(dst)
            # A new edge must carry the full current set once; growth after
            # that arrives as deltas.
            self._add_pts(dst, self._pts(src))

    def _defer(self, base: Node, op: _DeferredOp) -> None:
        self._deferred.setdefault(base, []).append(op)
        if self._pts(base):
            self._fresh_ops.append((base, op))

    # -- main loop ------------------------------------------------------------------

    def solve(self, roots: Optional[list[str]] = None) -> None:
        if roots is None:
            if self.program.entry is None:
                raise ValueError("program has no entry; pass roots explicitly")
            roots = [self.program.entry]
        with trace.span("pointsto.solve", roots=len(roots)) as sp:
            for root in roots:
                self._ensure_analyzed(root, ())
            while self._worklist or self._fresh_ops:
                while self._fresh_ops:
                    base, op = self._fresh_ops.popleft()
                    self._apply_delta(op, self._pts(base))
                if not self._worklist:
                    continue
                node = self._worklist.popleft()
                self._pops += 1
                delta = self._pending.pop(node, None)
                if not delta:
                    self._noop_skips += 1
                    continue
                for op in self._deferred.get(node, []):
                    self._apply_delta(op, delta)
                self._delta_propagated += len(delta)
                for succ in self._succ.get(node, set()):
                    self._add_pts(succ, delta)
            self.graph.seal()
            sp.set(pops=self._pops, methods=len(self._analyzed))
        metrics.counter("pointsto.worklist_pops").inc(self._pops)
        metrics.counter("pointsto.pts_updates").inc(self._pts_updates)
        metrics.counter("pointsto.deferred_applied").inc(self._deferred_applied)
        metrics.counter("pointsto.noop_pops_skipped").inc(self._noop_skips)
        metrics.counter("pointsto.delta_propagated").inc(self._delta_propagated)
        metrics.counter("pointsto.methods_analyzed").inc(len(self._analyzed))
        metrics.counter("pointsto.solves").inc()
        self._pops = self._pts_updates = self._deferred_applied = 0
        self._noop_skips = self._delta_propagated = 0

    def _apply_delta(self, op: _DeferredOp, locs: set[AbsLoc]) -> None:
        new = locs - op.done
        if not new:
            return
        op.done.update(new)
        self._deferred_applied += len(new)
        for loc in new:
            self._apply_op(op, loc)

    def _apply_op(self, op: _DeferredOp, loc: AbsLoc) -> None:
        if op.kind == "load":
            field_name, lhs_node = op.payload
            self._add_copy(FieldNode(loc, field_name), lhs_node)
        elif op.kind == "store":
            field_name, rhs_node = op.payload
            if loc in self.suppressed:
                return
            self._add_copy(rhs_node, FieldNode(loc, field_name))
        elif op.kind == "cast":
            class_name, lhs_node = op.payload
            if self.program.class_table.site_is_instance(loc.site, class_name):
                self._add_pts(lhs_node, {loc})
        elif op.kind == "call":
            self._apply_call(op.payload, loc)
        else:  # pragma: no cover - defensive
            raise ValueError(op.kind)

    # -- per-method constraint generation ------------------------------------------

    def _ensure_analyzed(self, qname: str, ctx: Context) -> None:
        key = (qname, ctx)
        if key in self._analyzed:
            return
        self._analyzed.add(key)
        self.call_graph.reachable.add(key)
        method = self.program.methods.get(qname)
        if method is None:
            return
        for cmd in walk_commands(method.body):
            self._gen_constraints(qname, ctx, cmd)

    def _var(self, qname: str, var: str, ctx: Context) -> VarNode:
        return VarNode(qname, var, ctx)

    def _gen_constraints(self, qname: str, ctx: Context, cmd: ins.Command) -> None:
        if isinstance(cmd, ins.Assign):
            if isinstance(cmd.rhs, ins.VarAtom):
                self._add_copy(
                    self._var(qname, cmd.rhs.name, ctx), self._var(qname, cmd.lhs, ctx)
                )
        elif isinstance(cmd, (ins.New, ins.NewArray)):
            hctx = self.policy.heap_context(ctx, cmd.site)
            self._add_pts(self._var(qname, cmd.lhs, ctx), {AbsLoc(cmd.site, hctx)})
        elif isinstance(cmd, ins.FieldRead):
            self._defer(
                self._var(qname, cmd.base, ctx),
                _DeferredOp("load", (cmd.field_name, self._var(qname, cmd.lhs, ctx))),
            )
        elif isinstance(cmd, ins.FieldWrite):
            if isinstance(cmd.rhs, ins.VarAtom):
                self._defer(
                    self._var(qname, cmd.base, ctx),
                    _DeferredOp(
                        "store",
                        (cmd.field_name, self._var(qname, cmd.rhs.name, ctx)),
                    ),
                )
        elif isinstance(cmd, ins.StaticRead):
            self._add_copy(
                StaticFieldNode(cmd.class_name, cmd.field_name),
                self._var(qname, cmd.lhs, ctx),
            )
        elif isinstance(cmd, ins.StaticWrite):
            if isinstance(cmd.rhs, ins.VarAtom):
                self._add_copy(
                    self._var(qname, cmd.rhs.name, ctx),
                    StaticFieldNode(cmd.class_name, cmd.field_name),
                )
        elif isinstance(cmd, ins.ArrayRead):
            self._defer(
                self._var(qname, cmd.base, ctx),
                _DeferredOp("load", (ELEMS, self._var(qname, cmd.lhs, ctx))),
            )
        elif isinstance(cmd, ins.ArrayWrite):
            if isinstance(cmd.rhs, ins.VarAtom):
                self._defer(
                    self._var(qname, cmd.base, ctx),
                    _DeferredOp("store", (ELEMS, self._var(qname, cmd.rhs.name, ctx))),
                )
        elif isinstance(cmd, ins.CastCmd):
            # A type-filtered copy: only compatible abstract locations flow.
            self._defer(
                self._var(qname, cmd.src, ctx),
                _DeferredOp("cast", (cmd.class_name, self._var(qname, cmd.lhs, ctx))),
            )
        elif isinstance(cmd, ins.Invoke):
            self._gen_invoke(qname, ctx, cmd)
        # BinOp/UnOp/ArrayLen/InstanceOf/Throw/Assume/Nondet: no pointer flow.

    def _gen_invoke(self, qname: str, ctx: Context, cmd: ins.Invoke) -> None:
        if cmd.kind == "static":
            target = f"{cmd.decl_class}.{cmd.method_name}"
            callee_ctx = self.policy.callee_context(
                ctx, target, cmd.decl_class, None, cmd.label
            )
            self._bind_call(qname, ctx, cmd, target, callee_ctx, receiver_loc=None)
            return
        assert cmd.receiver is not None
        exact: Optional[str] = None
        if cmd.kind == "special":
            exact = self.program.resolve_virtual(cmd.decl_class, cmd.method_name)
            if exact is None:
                return
        self._defer(
            self._var(qname, cmd.receiver, ctx),
            _DeferredOp("call", (qname, ctx, cmd, exact)),
        )

    def _apply_call(self, payload: tuple, receiver_loc: AbsLoc) -> None:
        caller_qname, caller_ctx, cmd, exact = payload
        if exact is not None:
            target = exact
        else:
            target = self.program.resolve_virtual(
                receiver_loc.class_name, cmd.method_name
            )
            if target is None:
                return
        callee_class = target.split(".", 1)[0]
        callee_ctx = self.policy.callee_context(
            caller_ctx, target, callee_class, receiver_loc, cmd.label
        )
        self._bind_call(
            caller_qname, caller_ctx, cmd, target, callee_ctx, receiver_loc
        )

    def _bind_call(
        self,
        caller_qname: str,
        caller_ctx: Context,
        cmd: ins.Invoke,
        target: str,
        callee_ctx: Context,
        receiver_loc: Optional[AbsLoc],
    ) -> None:
        self._ensure_analyzed(target, callee_ctx)
        self.call_graph.targets.setdefault(cmd.label, set()).add((target, callee_ctx))
        self.call_graph.callers.setdefault(target, set()).add(
            (caller_qname, cmd.label)
        )
        callee = self.program.methods.get(target)
        if callee is None:
            return
        params = list(callee.params)
        if not callee.is_static:
            this_node = self._var(target, params[0], callee_ctx)
            if receiver_loc is not None:
                self._add_pts(this_node, {receiver_loc})
            elif cmd.receiver is not None:
                self._add_copy(
                    self._var(caller_qname, cmd.receiver, caller_ctx), this_node
                )
            params = params[1:]
        for param, arg in zip(params, cmd.args):
            if isinstance(arg, ins.VarAtom):
                self._add_copy(
                    self._var(caller_qname, arg.name, caller_ctx),
                    self._var(target, param, callee_ctx),
                )
        if cmd.lhs is not None:
            self._add_copy(
                self._var(target, "$ret", callee_ctx),
                self._var(caller_qname, cmd.lhs, caller_ctx),
            )


def solve(
    program: IRProgram,
    policy: Optional[ContextPolicy] = None,
    empty_statics: Optional[set[tuple[str, str]]] = None,
    roots: Optional[list[str]] = None,
) -> tuple[PointsToGraph, CallGraph, set[AbsLoc]]:
    """Solve the points-to constraints.

    If ``empty_statics`` is given (``Ann?=Y``), the solver runs twice: the
    first pass discovers which abstract locations flow into the annotated
    static fields; the second suppresses their contents.
    Returns (graph, call graph, suppressed abstract locations).
    """
    solver = AndersenSolver(program, policy)
    solver.solve(roots)
    if not empty_statics:
        return solver.graph, solver.call_graph, set()
    suppressed: set[AbsLoc] = set()
    for class_name, field_name in empty_statics:
        suppressed.update(solver.graph.pt_static(class_name, field_name))
    second = AndersenSolver(program, policy, suppressed_contents=suppressed)
    second.solve(roots)
    return second.graph, second.call_graph, suppressed
