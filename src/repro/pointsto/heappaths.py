"""Heap-path enumeration over the points-to graph.

An *alarm* for the leak client is a points-to path from a static field to an
Activity abstract location (Section 2: "an alarm is a points-to path between
a static field and an Activity object"). The refutation driver repeatedly
asks for a path, tries to refute its edges, removes refuted edges, and asks
again until the source and sink are disconnected or a fully witnessed path
is found.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..lang.types import ClassTable
from .graph import AbsLoc, HeapEdge, PointsToGraph, StaticFieldNode


def find_heap_path(
    graph: PointsToGraph,
    root: StaticFieldNode,
    target: AbsLoc,
    removed: Optional[set[HeapEdge]] = None,
) -> Optional[list[HeapEdge]]:
    """Shortest points-to path ``root ↪ ... ↪ target`` avoiding ``removed``
    edges, or None when disconnected."""
    removed = removed or set()
    start_edges = [
        HeapEdge(root, root.field, loc)
        for loc in graph.pt_static(root.class_name, root.field)
    ]
    # BFS over abstract locations; parent pointers recover the edge list.
    parents: dict[AbsLoc, HeapEdge] = {}
    queue: deque[AbsLoc] = deque()
    for edge in start_edges:
        if edge in removed:
            continue
        if edge.dst not in parents:
            parents[edge.dst] = edge
            queue.append(edge.dst)
    # Field successors indexed once per call.
    while queue:
        loc = queue.popleft()
        if loc == target:
            return _reconstruct(parents, loc)
        for edge in _out_edges(graph, loc):
            if edge in removed or edge.dst in parents:
                continue
            parents[edge.dst] = edge
            queue.append(edge.dst)
    return None


def _out_edges(graph: PointsToGraph, loc: AbsLoc) -> Iterable[HeapEdge]:
    from .graph import FieldNode

    for node, targets in graph.pts.items():
        if isinstance(node, FieldNode) and node.loc == loc:
            for dst in targets:
                yield HeapEdge(loc, node.field, dst)


def _reconstruct(parents: dict[AbsLoc, HeapEdge], loc: AbsLoc) -> list[HeapEdge]:
    path: list[HeapEdge] = []
    current: Optional[AbsLoc] = loc
    while current is not None:
        edge = parents[current]
        path.append(edge)
        if edge.is_static_root:
            break
        current = edge.src  # type: ignore[assignment]
    path.reverse()
    return path


def reaches(
    graph: PointsToGraph,
    root: StaticFieldNode,
    target: AbsLoc,
    removed: Optional[set[HeapEdge]] = None,
) -> bool:
    return find_heap_path(graph, root, target, removed) is not None


def target_locations(
    graph: PointsToGraph, class_table: ClassTable, target_class: str
) -> list[AbsLoc]:
    """All abstract locations whose class is ``target_class`` or a subclass."""
    result = []
    for loc in graph.all_abs_locs():
        if loc.is_array or loc.site.kind == "string":
            continue
        if loc.class_name not in class_table.classes:
            continue
        if class_table.is_subclass(loc.class_name, target_class):
            result.append(loc)
    return sorted(result, key=str)


def static_roots(graph: PointsToGraph) -> list[StaticFieldNode]:
    roots = {
        node
        for node in graph.pts
        if isinstance(node, StaticFieldNode) and graph.pts[node]
    }
    return sorted(roots, key=str)


def find_alarms(
    graph: PointsToGraph, class_table: ClassTable, target_class: str = "Activity"
) -> list[tuple[StaticFieldNode, AbsLoc]]:
    """All (static field, target location) pairs connected in the graph —
    the flow-insensitive alarms the refuter will attempt to filter."""
    alarms = []
    targets = target_locations(graph, class_table, target_class)
    for root in static_roots(graph):
        for target in targets:
            if reaches(graph, root, target):
                alarms.append((root, target))
    return alarms
