"""Points-to graph: nodes, abstract locations, and the result structure.

The graph follows Section 3.1 of the paper: vertices are program variables
and abstract locations (``V ⊆ Var ∪ AbsLoc``); edges are ``x ↪ a`` (a
variable may point to an abstract location) and ``a0.f ↪ a1`` (a field of
some object abstracted by ``a0`` may point to an object abstracted by
``a1``). Static fields are modelled as global variables. Array contents use
the pseudo-field ``"@elems"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..ir.instructions import AllocSite

ELEMS = "@elems"

Context = tuple  # a tuple of AllocSite, possibly empty


@dataclass(frozen=True, slots=True)
class AbsLoc:
    """An abstract heap location: an allocation site plus a heap context."""

    site: AllocSite
    hctx: Context = ()

    def __str__(self) -> str:
        if not self.hctx:
            return str(self.site)
        ctx = ".".join(str(s) for s in self.hctx)
        return f"{ctx}.{self.site}"

    @property
    def class_name(self) -> str:
        return self.site.class_name

    @property
    def is_array(self) -> bool:
        return self.site.is_array


@dataclass(frozen=True, slots=True)
class VarNode:
    """A local variable of a method analyzed in a calling context."""

    method: str
    var: str
    ctx: Context = ()

    def __str__(self) -> str:
        suffix = f"@{'.'.join(str(s) for s in self.ctx)}" if self.ctx else ""
        return f"{self.method}:{self.var}{suffix}"


@dataclass(frozen=True, slots=True)
class StaticFieldNode:
    class_name: str
    field: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field}"


@dataclass(frozen=True, slots=True)
class FieldNode:
    """The field ``field`` of objects abstracted by ``loc``."""

    loc: AbsLoc
    field: str

    def __str__(self) -> str:
        return f"{self.loc}.{self.field}"


Node = Union[VarNode, StaticFieldNode, FieldNode]


@dataclass(frozen=True, slots=True)
class HeapEdge:
    """A may points-to edge between heap locations: ``src.field ↪ dst``.

    ``src`` is an :class:`AbsLoc` or, for the root edges of an alarm path,
    a :class:`StaticFieldNode` (in which case ``field`` is the static field
    name itself).
    """

    src: Union[AbsLoc, StaticFieldNode]
    field: str
    dst: AbsLoc

    def __str__(self) -> str:
        if isinstance(self.src, StaticFieldNode):
            return f"{self.src} -> {self.dst}"
        return f"{self.src}.{self.field} -> {self.dst}"

    @property
    def is_static_root(self) -> bool:
        return isinstance(self.src, StaticFieldNode)


class PointsToGraph:
    """The solved flow-insensitive points-to relation."""

    def __init__(self) -> None:
        self.pts: dict[Node, set[AbsLoc]] = {}
        # Local pt sets collapsed over contexts: (method, var) -> set.
        self._local_union: dict[tuple[str, str], set[AbsLoc]] = {}

    # -- construction (used by the solver) -----------------------------------

    def points_to(self, node: Node) -> set[AbsLoc]:
        return self.pts.setdefault(node, set())

    def seal(self) -> None:
        """Precompute the per-variable unions over contexts."""
        self._local_union.clear()
        for node, locs in self.pts.items():
            if isinstance(node, VarNode):
                key = (node.method, node.var)
                self._local_union.setdefault(key, set()).update(locs)

    # -- queries ----------------------------------------------------------------

    def pt_local(self, method: str, var: str) -> frozenset[AbsLoc]:
        """pt(x): the context-collapsed points-to set of a local."""
        return frozenset(self._local_union.get((method, var), frozenset()))

    def pt_static(self, class_name: str, field: str) -> frozenset[AbsLoc]:
        return frozenset(self.pts.get(StaticFieldNode(class_name, field), frozenset()))

    def pt_field(self, loc: AbsLoc, field: str) -> frozenset[AbsLoc]:
        return frozenset(self.pts.get(FieldNode(loc, field), frozenset()))

    def pt_field_of_set(self, locs: frozenset[AbsLoc], field: str) -> frozenset[AbsLoc]:
        """pt(y.f) for y with points-to set ``locs``: the union over the set."""
        result: set[AbsLoc] = set()
        for loc in locs:
            result.update(self.pt_field(loc, field))
        return frozenset(result)

    def heap_edges(self) -> Iterator[HeapEdge]:
        """All ``a.f ↪ b`` edges."""
        for node, locs in self.pts.items():
            if isinstance(node, FieldNode):
                for dst in locs:
                    yield HeapEdge(node.loc, node.field, dst)

    def static_edges(self) -> Iterator[HeapEdge]:
        """All ``C.f ↪ a`` root edges."""
        for node, locs in self.pts.items():
            if isinstance(node, StaticFieldNode):
                for dst in locs:
                    yield HeapEdge(node, node.field, dst)

    def all_abs_locs(self) -> set[AbsLoc]:
        locs: set[AbsLoc] = set()
        for node, targets in self.pts.items():
            locs.update(targets)
            if isinstance(node, FieldNode):
                locs.add(node.loc)
        return locs

    def size(self) -> tuple[int, int]:
        """(number of nodes, number of edges)."""
        nodes = len(self.pts)
        edges = sum(len(v) for v in self.pts.values())
        return nodes, edges

    def to_dot(self) -> str:
        """Render the heap portion of the graph in Graphviz dot format
        (matches the style of Figure 2 in the paper)."""
        lines = ["digraph pointsto {"]
        for edge in self.static_edges():
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [style=bold];')
        for edge in self.heap_edges():
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{edge.field}"];')
        lines.append("}")
        return "\n".join(lines)
