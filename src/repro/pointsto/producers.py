"""Edge producer map: which statements can produce each points-to edge.

The paper (Section 2, "Formulate Queries") needs, for every points-to edge
``e`` to refute, the set of statements that could produce ``e``; it obtains
this by "simple post-processing or instrumentation of the up-front
points-to analysis" (citing the authors' SAS'11 study). We implement the
post-processing variant: for every reachable field/array/static write,
pair up the points-to sets of the base and the stored value.
"""

from __future__ import annotations

from typing import Union

from ..ir import instructions as ins
from ..ir.program import IRProgram
from ..ir.stmts import walk_commands
from .andersen import CallGraph
from .graph import ELEMS, AbsLoc, HeapEdge, PointsToGraph, StaticFieldNode

# Producer-map key: a heap edge identified structurally.
EdgeKey = tuple  # ("heap", AbsLoc, field, AbsLoc) | ("static", class, field, AbsLoc)


def edge_key(edge: HeapEdge) -> EdgeKey:
    if edge.is_static_root:
        src = edge.src
        assert isinstance(src, StaticFieldNode)
        return ("static", src.class_name, src.field, edge.dst)
    return ("heap", edge.src, edge.field, edge.dst)


def compute_producers(
    program: IRProgram, graph: PointsToGraph, call_graph: CallGraph
) -> dict[EdgeKey, list[int]]:
    """Map every heap/static points-to edge to the labels of the statements
    that may produce it. Only edges actually present in the solved graph get
    entries (a write into a suppressed location produces nothing)."""
    producers: dict[EdgeKey, list[int]] = {}

    def record(key: EdgeKey, label: int) -> None:
        producers.setdefault(key, []).append(label)

    for qname in call_graph.reachable_methods:
        method = program.methods.get(qname)
        if method is None:
            continue
        for cmd in walk_commands(method.body):
            if isinstance(cmd, ins.FieldWrite) and isinstance(cmd.rhs, ins.VarAtom):
                values = graph.pt_local(qname, cmd.rhs.name)
                for base in graph.pt_local(qname, cmd.base):
                    targets = graph.pt_field(base, cmd.field_name)
                    for value in values & targets:
                        record(("heap", base, cmd.field_name, value), cmd.label)
            elif isinstance(cmd, ins.ArrayWrite) and isinstance(cmd.rhs, ins.VarAtom):
                values = graph.pt_local(qname, cmd.rhs.name)
                for base in graph.pt_local(qname, cmd.base):
                    targets = graph.pt_field(base, ELEMS)
                    for value in values & targets:
                        record(("heap", base, ELEMS, value), cmd.label)
            elif isinstance(cmd, ins.StaticWrite) and isinstance(cmd.rhs, ins.VarAtom):
                values = graph.pt_local(qname, cmd.rhs.name)
                targets = graph.pt_static(cmd.class_name, cmd.field_name)
                for value in values & targets:
                    record(
                        ("static", cmd.class_name, cmd.field_name, value), cmd.label
                    )
    return producers
