"""May-complete-normally analysis.

The paper "tracks control flow due to thrown exceptions" under the
assumption that exceptions are never caught: a call to a method that can
never complete normally makes every program point after the call
unreachable. This module computes, per reachable method, whether *some*
execution may fall out of the method normally — an over-approximation
(greatest fixpoint, everything assumed completing until proven otherwise),
so using it to refute is sound.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.program import IRProgram
from ..ir.stmts import AtomicStmt, Choice, Loop, Seq, Stmt
from .andersen import CallGraph


class NormalCompletion:
    """``may_complete(qname)`` — False only when every execution of the
    method provably throws."""

    def __init__(self, program: IRProgram, call_graph: CallGraph) -> None:
        self.program = program
        self.call_graph = call_graph
        self._may_complete: dict[str, bool] = {}
        self._compute()

    def may_complete(self, qname: str) -> bool:
        return self._may_complete.get(qname, True)

    def call_may_complete(self, label: int) -> bool:
        """May the call at ``label`` return normally? True when any
        possible callee may complete (or when no callee is resolved)."""
        callees = self.call_graph.callees_of(label)
        if not callees:
            return True
        return any(self.may_complete(callee) for callee in callees)

    def _compute(self) -> None:
        methods = self.call_graph.reachable_methods & set(self.program.methods)
        for qname in methods:
            self._may_complete[qname] = True
        changed = True
        while changed:
            changed = False
            for qname in methods:
                if not self._may_complete[qname]:
                    continue
                body = self.program.methods[qname].body
                if not self._falls_through(body):
                    self._may_complete[qname] = False
                    changed = True

    def _falls_through(self, stmt: Stmt) -> bool:
        if isinstance(stmt, AtomicStmt):
            cmd = stmt.cmd
            if isinstance(cmd, ins.ThrowCmd):
                return False
            if isinstance(cmd, ins.Invoke):
                return self.call_may_complete(cmd.label)
            return True
        if isinstance(stmt, Seq):
            return all(self._falls_through(child) for child in stmt.stmts)
        if isinstance(stmt, Choice):
            return any(self._falls_through(branch) for branch in stmt.branches)
        if isinstance(stmt, Loop):
            return True  # zero iterations always complete
        raise TypeError(f"unknown statement {type(stmt).__name__}")
