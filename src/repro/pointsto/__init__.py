"""Flow-insensitive Andersen points-to analysis with on-the-fly call graph,
context-sensitivity policies, mod/ref, edge producers, and heap paths."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.program import IRProgram
from .andersen import AndersenSolver, CallGraph, solve
from .context import (
    CallSiteSensitive,
    ContainerSensitive,
    ContextInsensitive,
    ContextPolicy,
    ObjectSensitive,
)
from .graph import (
    ELEMS,
    AbsLoc,
    FieldNode,
    HeapEdge,
    Node,
    PointsToGraph,
    StaticFieldNode,
    VarNode,
)
from .heappaths import (
    find_alarms,
    find_heap_path,
    reaches,
    static_roots,
    target_locations,
)
from .incremental import DeltaReport, extend_solution
from .modref import ModRefAnalysis, ModSet, RefSet
from .producers import EdgeKey, compute_producers, edge_key
from .termination import NormalCompletion


@dataclass
class PointsToResult:
    """Everything downstream phases need from the up-front analysis."""

    program: IRProgram
    graph: PointsToGraph
    call_graph: CallGraph
    policy: ContextPolicy
    suppressed: set[AbsLoc]
    producers: dict[EdgeKey, list[int]]
    modref: ModRefAnalysis
    completion: NormalCompletion
    #: The live constraint solver behind ``graph``/``call_graph`` when the
    #: caller asked for it (``analyze(..., retain_solver=True)``); required
    #: by :func:`reanalyze` for edit-level incremental re-solving. ``None``
    #: for one-shot runs so results stay lean and picklable.
    solver: Optional[AndersenSolver] = None

    # -- delegation helpers used heavily by the symbolic executor -----------

    def pt_local(self, method: str, var: str) -> frozenset[AbsLoc]:
        return self.graph.pt_local(method, var)

    def pt_static(self, class_name: str, field_name: str) -> frozenset[AbsLoc]:
        return self.graph.pt_static(class_name, field_name)

    def pt_field(self, loc: AbsLoc, field_name: str) -> frozenset[AbsLoc]:
        return self.graph.pt_field(loc, field_name)

    def pt_field_of_set(
        self, locs: frozenset[AbsLoc], field_name: str
    ) -> frozenset[AbsLoc]:
        return self.graph.pt_field_of_set(locs, field_name)

    def producers_of(self, edge: HeapEdge) -> list[int]:
        return self.producers.get(edge_key(edge), [])

    def callees_of(self, label: int) -> set[str]:
        return self.call_graph.callees_of(label)

    def callers_of(self, qname: str) -> set[tuple[str, int]]:
        return self.call_graph.callers_of(qname)


def analyze(
    program: IRProgram,
    policy: Optional[ContextPolicy] = None,
    empty_statics: Optional[set[tuple[str, str]]] = None,
    roots: Optional[list[str]] = None,
    retain_solver: bool = False,
) -> PointsToResult:
    """Run the full up-front analysis pipeline: points-to + call graph +
    mod/ref + edge producers. ``retain_solver=True`` keeps the live
    :class:`AndersenSolver` on the result so :func:`reanalyze` can extend
    the solution after an additive edit instead of starting over."""
    policy = policy or ContextInsensitive()
    if retain_solver:
        solver_obj = AndersenSolver(program, policy)
        solver_obj.solve(roots)
        suppressed: set[AbsLoc] = set()
        if empty_statics:
            for class_name, field_name in empty_statics:
                suppressed.update(
                    solver_obj.graph.pt_static(class_name, field_name)
                )
            solver_obj = AndersenSolver(
                program, policy, suppressed_contents=suppressed
            )
            solver_obj.solve(roots)
        graph, call_graph = solver_obj.graph, solver_obj.call_graph
    else:
        solver_obj = None
        graph, call_graph, suppressed = solve(
            program, policy, empty_statics, roots
        )
    producers = compute_producers(program, graph, call_graph)
    modref = ModRefAnalysis(program, call_graph)
    completion = NormalCompletion(program, call_graph)
    return PointsToResult(
        program,
        graph,
        call_graph,
        policy,
        suppressed,
        producers,
        modref,
        completion,
        solver_obj,
    )


def reanalyze(
    prev: PointsToResult, changed_methods: set[str]
) -> tuple[PointsToResult, DeltaReport]:
    """Extend a retained solution after an *additive* edit.

    ``prev`` must carry its live solver (``analyze(..., retain_solver=
    True)``) and its program must already have the changed method bodies
    grafted in. Only the changed methods' constraints are re-generated;
    the delta worklist drains their consequences. The summary phases
    (producers, mod/ref, completion) are recomputed in full — they are
    cheap linear passes. Returns the refreshed result (sharing the solver,
    graph, and call graph) plus the :class:`DeltaReport` of where the
    solution grew."""
    if prev.solver is None:
        raise ValueError(
            "reanalyze needs a retained solver: run"
            " analyze(..., retain_solver=True) first"
        )
    delta = extend_solution(prev.solver, changed_methods)
    program = prev.solver.program
    call_graph = prev.solver.call_graph
    producers = compute_producers(program, prev.solver.graph, call_graph)
    modref = ModRefAnalysis(program, call_graph)
    completion = NormalCompletion(program, call_graph)
    result = PointsToResult(
        program,
        prev.solver.graph,
        call_graph,
        prev.policy,
        prev.suppressed,
        producers,
        modref,
        completion,
        prev.solver,
    )
    return result, delta


__all__ = [
    "AndersenSolver",
    "CallGraph",
    "solve",
    "analyze",
    "reanalyze",
    "DeltaReport",
    "extend_solution",
    "PointsToResult",
    "RefSet",
    "ContextPolicy",
    "ContextInsensitive",
    "ObjectSensitive",
    "ContainerSensitive",
    "CallSiteSensitive",
    "ELEMS",
    "AbsLoc",
    "FieldNode",
    "HeapEdge",
    "Node",
    "PointsToGraph",
    "StaticFieldNode",
    "VarNode",
    "ModRefAnalysis",
    "ModSet",
    "NormalCompletion",
    "EdgeKey",
    "compute_producers",
    "edge_key",
    "find_alarms",
    "find_heap_path",
    "reaches",
    "static_roots",
    "target_locations",
]
