"""Flow-insensitive Andersen points-to analysis with on-the-fly call graph,
context-sensitivity policies, mod/ref, edge producers, and heap paths."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.program import IRProgram
from .andersen import AndersenSolver, CallGraph, solve
from .context import (
    CallSiteSensitive,
    ContainerSensitive,
    ContextInsensitive,
    ContextPolicy,
    ObjectSensitive,
)
from .graph import (
    ELEMS,
    AbsLoc,
    FieldNode,
    HeapEdge,
    Node,
    PointsToGraph,
    StaticFieldNode,
    VarNode,
)
from .heappaths import (
    find_alarms,
    find_heap_path,
    reaches,
    static_roots,
    target_locations,
)
from .modref import ModRefAnalysis, ModSet
from .producers import EdgeKey, compute_producers, edge_key
from .termination import NormalCompletion


@dataclass
class PointsToResult:
    """Everything downstream phases need from the up-front analysis."""

    program: IRProgram
    graph: PointsToGraph
    call_graph: CallGraph
    policy: ContextPolicy
    suppressed: set[AbsLoc]
    producers: dict[EdgeKey, list[int]]
    modref: ModRefAnalysis
    completion: NormalCompletion

    # -- delegation helpers used heavily by the symbolic executor -----------

    def pt_local(self, method: str, var: str) -> frozenset[AbsLoc]:
        return self.graph.pt_local(method, var)

    def pt_static(self, class_name: str, field_name: str) -> frozenset[AbsLoc]:
        return self.graph.pt_static(class_name, field_name)

    def pt_field(self, loc: AbsLoc, field_name: str) -> frozenset[AbsLoc]:
        return self.graph.pt_field(loc, field_name)

    def pt_field_of_set(
        self, locs: frozenset[AbsLoc], field_name: str
    ) -> frozenset[AbsLoc]:
        return self.graph.pt_field_of_set(locs, field_name)

    def producers_of(self, edge: HeapEdge) -> list[int]:
        return self.producers.get(edge_key(edge), [])

    def callees_of(self, label: int) -> set[str]:
        return self.call_graph.callees_of(label)

    def callers_of(self, qname: str) -> set[tuple[str, int]]:
        return self.call_graph.callers_of(qname)


def analyze(
    program: IRProgram,
    policy: Optional[ContextPolicy] = None,
    empty_statics: Optional[set[tuple[str, str]]] = None,
    roots: Optional[list[str]] = None,
) -> PointsToResult:
    """Run the full up-front analysis pipeline: points-to + call graph +
    mod/ref + edge producers."""
    policy = policy or ContextInsensitive()
    graph, call_graph, suppressed = solve(program, policy, empty_statics, roots)
    producers = compute_producers(program, graph, call_graph)
    modref = ModRefAnalysis(program, call_graph)
    completion = NormalCompletion(program, call_graph)
    return PointsToResult(
        program, graph, call_graph, policy, suppressed, producers, modref, completion
    )


__all__ = [
    "AndersenSolver",
    "CallGraph",
    "solve",
    "analyze",
    "PointsToResult",
    "ContextPolicy",
    "ContextInsensitive",
    "ObjectSensitive",
    "ContainerSensitive",
    "CallSiteSensitive",
    "ELEMS",
    "AbsLoc",
    "FieldNode",
    "HeapEdge",
    "Node",
    "PointsToGraph",
    "StaticFieldNode",
    "VarNode",
    "ModRefAnalysis",
    "ModSet",
    "NormalCompletion",
    "EdgeKey",
    "compute_producers",
    "edge_key",
    "find_alarms",
    "find_heap_path",
    "reaches",
    "static_roots",
    "target_locations",
]
