"""The serve daemon's stateful core: one loaded program, re-analyzed at
edit granularity.

A :class:`ProgramSession` runs the pipeline front half (frontend → IR →
Andersen with a *retained* solver) once at startup and keeps everything a
later request can reuse:

* the **verdict table** — every per-edge :class:`EdgeResult`, with the
  search footprint recorded (``SearchConfig.record_footprints``);
* the **fact table** — per-fact verdicts for the casts/immutability
  clients, keyed by ``(label, bindings, description)``;
* the persistent :class:`_SessionDriver`, whose shared result cache is
  seeded from the verdict table so repeated or overlapping requests are
  answered without re-searching;
* the process-wide pure-function caches (``SOLVER_MEMO``, the component
  memo), which survive updates untouched because their keys are
  content-addressed, not program-addressed.

On ``update`` the session diffs the edited source against the loaded
program at *method* granularity. An additive edit (old pointer facts all
preserved) is grafted into the retained program and fed through the
Andersen delta worklist (:func:`repro.pointsto.reanalyze`); only verdicts
whose footprint intersects the change — per
:func:`repro.serve.invalidation.verdict_is_stale` — are dropped. Anything
non-additive falls back to a cold rebuild, which conservatively clears
both tables. The pta-scoped :class:`RefutedStateCache` lives and dies
with the driver, i.e. with the pta, never across an update.

Concurrency: many concurrent readers (``analyze``/``explain``/``status``),
updates serialized and exclusive (:class:`_RWLock`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from ..api import (
    _SELECTOR_FIELDS,
    CLIENTS,
    AnalysisRequest,
    _run_client,
    validate_selectors,
)
from ..engine import RefutationDriver
from ..ir import build_program
from ..lang import frontend
from .. import perf
from ..obs import metrics, provenance, telemetry
from ..pointsto import analyze as pointsto_analyze
from ..pointsto import reanalyze
from ..symbolic import SearchConfig
from .invalidation import (
    footprint_signatures,
    graft_method,
    is_additive,
    method_fingerprints,
    program_signature,
    stable_edge_token,
    stable_site_tokens,
    verdict_is_stale,
)

_REQUESTS = metrics.counter("serve.requests")
_INVALIDATED = metrics.counter("serve.invalidated_edges")
_REUSED = metrics.counter("serve.verdicts_reused")


class _RWLock:
    """Many readers or one writer; writers wait for in-flight readers."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._writer = threading.Lock()
        self._readers = 0

    @contextmanager
    def read(self):
        with self._mutex:
            self._readers += 1
            if self._readers == 1:
                self._writer.acquire()
        try:
            yield
        finally:
            with self._mutex:
                self._readers -= 1
                if self._readers == 0:
                    self._writer.release()

    @contextmanager
    def write(self):
        with self._writer:
            yield


def _fact_key(job) -> tuple:
    """Canonical retained-table key for one fact job: the query label,
    the bindings (var name → suspect location set), and the description.
    Labels and :class:`AbsLoc` objects are stable across additive grafts
    for unchanged methods, which is what makes the key survive updates."""
    label, bindings, description = job
    canon = tuple(
        (var, frozenset(locs)) for var, locs in bindings
    )
    return (label, canon, description)


class _SessionDriver(RefutationDriver):
    """A :class:`RefutationDriver` that also answers *fact* jobs from a
    session-owned table. Edge jobs already flow through the driver's
    shared result cache (seeded from the session's verdict table); facts
    have no driver-level cache, so this subclass intercepts
    :meth:`refute_facts`, serves hits, and records misses back into the
    table. Hits count into :attr:`cache_hits` exactly like edge hits."""

    def __init__(self, fact_table: dict, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fact_table = fact_table

    def refute_facts(self, requests):
        results = [None] * len(requests)
        misses, miss_indices = [], []
        for i, job in enumerate(requests):
            hit = self._fact_table.get(_fact_key(job))
            if hit is not None:
                results[i] = hit
                with self._lock:
                    self.cache_hits += 1
                self._record_fact(job[2], hit, "cache")
            else:
                misses.append(job)
                miss_indices.append(i)
        if misses:
            ran = super().refute_facts(misses)
            for i, job, result in zip(miss_indices, misses, ran):
                results[i] = result
                self._fact_table[_fact_key(job)] = result
        return [r for r in results if r is not None]


#: ``analyze`` params: the client plus its selectors. Program input is the
#: session's job — shipping ``source`` here is the ``update`` op's role.
_ANALYZE_FIELDS = frozenset({"client", *_SELECTOR_FIELDS})


class ProgramSession:
    """One loaded program and everything retained across requests."""

    def __init__(
        self,
        source: str,
        *,
        include_library: bool = False,
        config: Optional[SearchConfig] = None,
        context_policy=None,
        jobs: int = 1,
        deadline: Optional[float] = None,
        budget: Optional[int] = None,
        backend: Optional[str] = None,
        journal: bool = False,
    ) -> None:
        self._source = source
        self._include_library = include_library
        base = config or SearchConfig()
        if budget is not None:
            base = base.copy(path_budget=budget)
        #: Footprints are the invalidation currency — always recorded.
        self._config = base.copy(record_footprints=True)
        self._policy = context_policy
        self._jobs = jobs
        self._deadline = deadline
        self._backend = backend
        self._journal = None
        if journal:
            self._journal = provenance.get_journal() or provenance.install()
        self._rw = _RWLock()
        self._verdicts: dict = {}  # EdgeKey -> EdgeResult (with footprint)
        self._facts: dict = {}  # _fact_key -> EdgeResult
        self._updates_applied = 0
        self._closed = False
        #: Session-lifetime lifecycle hub: every driver (including those
        #: created by rebuilds) feeds it, so ``watch`` cursors survive
        #: updates and the ``top`` renderer sees one continuous stream.
        self.hub = telemetry.TelemetryHub()
        self._rebuild(source)

    # -- pipeline front half -------------------------------------------------

    def _full_source(self, source: str) -> str:
        if self._include_library:
            from ..android.harness import build_full_source

            return build_full_source(source)
        return source

    def _rebuild(self, source: str) -> None:
        """Cold path: build everything from scratch and start a fresh
        driver. Callers have already cleared (or decided to keep) the
        verdict and fact tables."""
        program = build_program(frontend(self._full_source(source)))
        self._program = program
        self._pta = pointsto_analyze(
            program, policy=self._policy, retain_solver=True
        )
        self._fingerprints = method_fingerprints(program)
        self._site_tokens = stable_site_tokens(program)
        self._driver = self._new_driver()

    def _new_driver(self) -> _SessionDriver:
        return _SessionDriver(
            self._facts,
            self._pta,
            self._config,
            jobs=self._jobs,
            deadline=self._deadline,
            backend=self._backend,
            on_event=self.hub.sink,
        )

    # -- request ops ---------------------------------------------------------

    def analyze(self, params: dict) -> tuple[dict, dict]:
        """Run one client against the session program. ``params`` is the
        client name plus its selectors — the program is the session's."""
        _REQUESTS.inc()
        for banned in ("source", "program", "pta"):
            if banned in params:
                raise ValueError(
                    f"analyze runs against the session's loaded program;"
                    f" {banned}= is not accepted — use the update op to"
                    " change the program"
                )
        unknown = sorted(set(params) - _ANALYZE_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown analyze param(s) {', '.join(unknown)}; accepted:"
                f" {', '.join(sorted(_ANALYZE_FIELDS))}"
            )
        client = params.get("client")
        if client not in CLIENTS:
            raise ValueError(
                f"unknown client {client!r}; expected one of {CLIENTS}"
            )
        request = AnalysisRequest(**params)
        validate_selectors(request)
        started = time.perf_counter()
        with self._rw.read():
            records_before, hits_before = self._driver.mark()
            result = _run_client(request, self._pta, self._config, self._driver)
            # Re-slice the report to this request's jobs (the client built
            # a driver-lifetime one; the persistent driver accumulates).
            result.report = self._driver.build_report(
                command=request.client, since=records_before
            )
            self._verdicts.update(self._driver.edge_results())
            reused = self._driver.cache_hits - hits_before
        _REUSED.inc(reused)
        seconds = time.perf_counter() - started
        payload = result.to_dict()
        payload["verdicts"] = self.verdict_payloads()
        meta = {
            "seconds": seconds,
            "jobs_run": len(result.report.records),
            "verdicts_reused": reused,
            "cache_tiers": (result.report.cache or {}).get("tiers"),
            "updates_applied": self._updates_applied,
        }
        return payload, meta

    def update(self, params: dict) -> tuple[dict, dict]:
        """Apply an edit and re-analyze incrementally where sound.

        ``params`` carries either ``source`` (the full replacement app
        source) or ``classes`` (``{class name: replacement class text}``
        spliced into the current source). Returns what happened: the
        changed methods, whether the incremental path applied, and how
        many retained verdicts each rule invalidated vs. kept."""
        _REQUESTS.inc()
        unknown = sorted(set(params) - {"source", "classes"})
        if unknown:
            raise ValueError(
                f"unknown update param(s) {', '.join(unknown)}; accepted:"
                " source, classes"
            )
        source = params.get("source")
        classes = params.get("classes")
        if (source is None) == (classes is None):
            raise ValueError("update needs exactly one of source= or classes=")
        started = time.perf_counter()
        with self._rw.write():
            if classes is not None:
                source = splice_classes(self._source, classes)
            new_program = build_program(frontend(self._full_source(source)))
            new_prints = method_fingerprints(new_program)
            if program_signature(new_program) != program_signature(
                self._program
            ):
                return self._full_update(source, started, reason="declarations")
            changed = sorted(
                qname
                for qname, print_ in new_prints.items()
                if self._fingerprints.get(qname) != print_
            )
            if not changed:
                self._source = source
                return (
                    {"mode": "noop", "changed_methods": []},
                    {"seconds": time.perf_counter() - started,
                     "invalidated_edges": 0,
                     "retained_verdicts": len(self._verdicts)},
                )
            additive = all(
                is_additive(
                    self._program.methods[qname], new_program.methods[qname]
                )
                for qname in changed
            )
            if not additive:
                return self._full_update(
                    source, started, reason="non-additive edit"
                )
            return self._incremental_update(
                source, new_program, changed, started
            )

    def _full_update(
        self, source: str, started: float, reason: str
    ) -> tuple[dict, dict]:
        """The conservative path: everything retained is dropped."""
        invalidated = len(self._verdicts)
        _INVALIDATED.inc(invalidated)
        self._verdicts = {}
        self._facts.clear()
        self._driver.close()
        self._source = source
        self._rebuild(source)
        self._updates_applied += 1
        return (
            {"mode": "rebuild", "reason": reason, "changed_methods": None},
            {
                "seconds": time.perf_counter() - started,
                "invalidated_edges": invalidated,
                "retained_verdicts": 0,
            },
        )

    def _incremental_update(
        self, source: str, new_program, changed: list, started: float
    ) -> tuple[dict, dict]:
        changed_set = frozenset(changed)
        # Signatures and producer lists must be captured *before* the
        # graft: reanalyze mutates the retained call graph in place.
        fp_methods = set()
        for result in self._verdicts.values():
            if result.footprint:
                fp_methods |= result.footprint
        for result in self._facts.values():
            if result.footprint:
                fp_methods |= result.footprint
        sigs_before = footprint_signatures(self._pta, fp_methods)
        producers_before = {
            key: sorted(self._pta.producers.get(key, []))
            for key in self._verdicts
        }
        for qname in changed:
            graft_method(self._program, new_program.methods[qname])
        self._pta, delta = reanalyze(self._pta, set(changed))
        sigs_after = footprint_signatures(self._pta, fp_methods)
        surviving: dict = {}
        for key, result in self._verdicts.items():
            producers_now = sorted(self._pta.producers.get(key, []))
            stale = producers_before[key] != producers_now or verdict_is_stale(
                result.footprint,
                changed_set,
                sigs_before,
                sigs_after,
                self._pta.modref,
                delta,
            )
            if not stale:
                surviving[key] = result
        invalidated = len(self._verdicts) - len(surviving)
        facts_dropped = 0
        for key in list(self._facts):
            label = key[0]
            result = self._facts[key]
            if label not in self._program.commands or verdict_is_stale(
                result.footprint,
                changed_set,
                sigs_before,
                sigs_after,
                self._pta.modref,
                delta,
            ):
                del self._facts[key]
                facts_dropped += 1
        _INVALIDATED.inc(invalidated)
        # The driver is pta-scoped (its RefutedStateCache must not outlive
        # the solution it pruned against): retire it and seed a fresh one
        # with the surviving verdicts.
        self._driver.close()
        self._verdicts = surviving
        self._driver = self._new_driver()
        self._driver.seed_results(surviving)
        self._fingerprints = method_fingerprints(self._program)
        self._site_tokens = stable_site_tokens(self._program)
        self._source = source
        self._updates_applied += 1
        return (
            {
                "mode": "incremental",
                "changed_methods": changed,
                "points_to_growth": {
                    "new_points": delta.new_points,
                    "grown_methods": sorted(delta.grown_methods),
                    "grown_fields": sorted(delta.grown_fields),
                    "grown_statics": sorted(map(list, delta.grown_statics)),
                },
            },
            {
                "seconds": time.perf_counter() - started,
                "invalidated_edges": invalidated,
                "invalidated_facts": facts_dropped,
                "retained_verdicts": len(surviving),
            },
        )

    def explain(self, params: dict) -> tuple[dict, dict]:
        """Render the refutation certificate (or search provenance) for
        one retained job, from the session journal."""
        _REQUESTS.inc()
        if self._journal is None:
            raise ValueError(
                "explain needs the session journal: start the daemon with"
                " --journal (or ProgramSession(journal=True))"
            )
        description = params.get("description")
        if not description:
            raise ValueError("explain needs description= (job description)")
        status = None
        with self._rw.read():
            for record in self._driver._records.values():
                if (
                    record.description == description
                    or description in record.description
                ):
                    status = record.status
                    description = record.description
                    break
        certificate = provenance.render_certificate(
            description, self._journal, status=status
        )
        return {"description": description, "status": status,
                "certificate": certificate}, {}

    def status(self) -> tuple[dict, dict]:
        """Session vitals: the loaded program, retained state sizes, and
        the serve/incremental metric counters."""
        _REQUESTS.inc()
        with self._rw.read():
            counters = {
                name: inst.value
                for name, inst in (
                    (name, metrics.REGISTRY.get(name))
                    for name in (
                        "serve.requests",
                        "serve.invalidated_edges",
                        "serve.verdicts_reused",
                        "pointsto.incremental_solves",
                        "pointsto.incremental_new_points",
                        "driver.steals",
                        "driver.priority_inversions",
                    )
                )
                if inst is not None
            }
            cache = perf.cache_report()
            return (
                {
                    "program": self._program.stats(),
                    "retained_verdicts": len(self._verdicts),
                    "retained_facts": len(self._facts),
                    "updates_applied": self._updates_applied,
                    "jobs": self._jobs,
                    "journal": self._journal is not None,
                    "metrics": counters,
                    #: Scheduling efficacy without a full report: the
                    #: per-rung table plus steal/inversion counts.
                    "schedule": self._driver._schedule_section(),
                    "cache_tiers": cache.get("tiers", {}),
                    #: The persistent verdict store this session shares
                    #: with other processes (enabled=False when no
                    #: --cache-dir was given).
                    "store": cache.get("store", {}),
                    "telemetry": self.hub.snapshot(),
                },
                {},
            )

    def metrics_exposition(self, params: dict) -> tuple[dict, dict]:
        """The ``metrics`` op: the process-wide registry, as Prometheus
        text (default) or the raw JSON dump (``format: "json"``)."""
        _REQUESTS.inc()
        fmt = params.get("format", "prometheus")
        if fmt == "prometheus":
            return (
                {
                    "format": "prometheus",
                    "content_type": telemetry.CONTENT_TYPE,
                    "exposition": telemetry.render_prometheus(),
                },
                {},
            )
        if fmt == "json":
            return (
                {"format": "json", "metrics": metrics.REGISTRY.to_dict()},
                {},
            )
        raise ValueError(
            f"unknown metrics format {fmt!r}; expected prometheus or json"
        )

    def watch(self, params: dict) -> tuple[dict, dict]:
        """The ``watch`` op (stdio flavor): cursor-polled lifecycle
        events. Pass the returned ``cursor`` back as ``since`` to resume;
        ``snapshot: true`` additionally returns the derived live state."""
        _REQUESTS.inc()
        since = int(params.get("since", 0))
        limit = max(1, int(params.get("limit", 500)))
        cursor, events = self.hub.events_since(since, limit=limit)
        result = {"cursor": cursor, "events": events}
        if params.get("snapshot"):
            result["snapshot"] = self.hub.snapshot()
        return result, {}

    # -- retained-state views ------------------------------------------------

    def verdict_payloads(self) -> dict[str, dict]:
        """The verdict table rendered through rebuild-independent tokens
        (and without wall-clock seconds): two sessions that agree on the
        program agree on this payload byte for byte."""
        out = {}
        for key, result in self._verdicts.items():
            token = stable_edge_token(key, self._site_tokens)
            out[token] = {
                "status": result.status,
                "refuted": result.refuted,
                "path_programs": result.path_programs,
            }
        return dict(sorted(out.items()))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._driver.close()


# ---------------------------------------------------------------------------
# Per-class source splicing (the `classes` update flavor)
# ---------------------------------------------------------------------------


def split_classes(source: str) -> dict[str, str]:
    """Split mini-Java source into its top-level class texts by brace
    counting, keyed by class name, in order. Comments are assumed not to
    contain unbalanced braces (true of the mini-Java corpus)."""
    out: dict[str, str] = {}
    i = 0
    n = len(source)
    while i < n:
        start = source.find("class ", i)
        if start < 0:
            break
        # Class name: the identifier after "class".
        j = start + len("class ")
        while j < n and source[j].isspace():
            j += 1
        k = j
        while k < n and (source[k].isalnum() or source[k] == "_"):
            k += 1
        name = source[j:k]
        open_brace = source.find("{", k)
        if open_brace < 0:
            break
        depth = 0
        end = open_brace
        for end in range(open_brace, n):
            if source[end] == "{":
                depth += 1
            elif source[end] == "}":
                depth -= 1
                if depth == 0:
                    break
        out[name] = source[start : end + 1]
        i = end + 1
    return out


def splice_classes(source: str, replacements: dict[str, str]) -> str:
    """Replace whole top-level classes in ``source`` by name. Every name
    in ``replacements`` must already exist (adding or removing classes is
    a declaration-level change — ship full ``source`` for that, and the
    session takes the rebuild path)."""
    classes = split_classes(source)
    missing = sorted(set(replacements) - set(classes))
    if missing:
        raise ValueError(
            f"class(es) not in the loaded program: {', '.join(missing)};"
            " to add classes, send a full source= update"
        )
    for name, text in replacements.items():
        source = source.replace(classes[name], text)
    return source
