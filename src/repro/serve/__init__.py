"""The ``repro serve`` daemon: load a program once, answer analysis
requests against retained in-memory state, and re-analyze *edits*
incrementally instead of from scratch.

The pieces, bottom up:

* :mod:`repro.serve.invalidation` — method body fingerprints, additive-edit
  detection, allocation-site grafting, and the rules deciding which
  retained verdicts an edit can actually touch.
* :mod:`repro.serve.session` — :class:`ProgramSession`, the stateful core:
  one program, one retained points-to solution, a verdict table keyed by
  edge, and a persistent refutation driver whose caches survive requests.
* :mod:`repro.serve.protocol` — the v1 request/response envelopes shared
  by both transports.
* :mod:`repro.serve.server` — the stdio JSON-lines loop and the HTTP/JSON
  front end (``repro serve --stdio`` / ``--port N``).
"""

from .protocol import OPS, ProtocolError, Request, error_response, ok_response, parse_request
from .session import ProgramSession
from .server import handle_request, serve_http, serve_stdio

__all__ = [
    "ProgramSession",
    "Request",
    "ProtocolError",
    "OPS",
    "parse_request",
    "ok_response",
    "error_response",
    "handle_request",
    "serve_stdio",
    "serve_http",
]
