"""Transports for the serve daemon.

Both speak the same envelopes (:mod:`repro.serve.protocol`) over one
shared dispatcher (:func:`handle_request`):

* **stdio** — one JSON request per stdin line, one JSON response per
  stdout line. A ready line is emitted first so a supervising process
  knows the (potentially slow) pipeline front half has finished. All
  logging goes to stderr; stdout carries only protocol lines.
* **HTTP** — ``POST /v1`` with a request envelope body; ``GET /v1/status``
  as a convenience for the status op; ``GET /metrics`` serving the
  Prometheus text exposition for scrapers; ``GET /v1/watch`` streaming
  lifecycle events as newline-delimited JSON. Built on the stdlib
  :class:`ThreadingHTTPServer`; the session's reader/writer lock provides
  the concurrency discipline (parallel reads, serialized updates).
"""

from __future__ import annotations

import json
import sys
import threading
import time

from ..obs import telemetry

from .protocol import (
    OPS,
    SCHEMA_VERSION,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .session import ProgramSession


def handle_request(session: ProgramSession, request: Request) -> dict:
    """Dispatch one parsed request to the session; exceptions become
    error envelopes (the daemon never dies on a bad request)."""
    try:
        if request.op == "analyze":
            result, meta = session.analyze(request.params)
        elif request.op == "update":
            result, meta = session.update(request.params)
        elif request.op == "explain":
            result, meta = session.explain(request.params)
        elif request.op == "status":
            result, meta = session.status()
        elif request.op == "metrics":
            result, meta = session.metrics_exposition(request.params)
        elif request.op == "watch":
            result, meta = session.watch(request.params)
        elif request.op == "shutdown":
            result, meta = {"stopping": True}, {}
        else:  # unreachable: parse_request validated op
            raise ProtocolError(f"unknown op {request.op!r}")
        return ok_response(request.id, result, meta)
    except Exception as exc:  # noqa: BLE001 — every failure goes on the wire
        return error_response(request.id, exc)


def ready_line() -> str:
    return json.dumps(
        {
            "ready": True,
            "ok": True,
            "schema_version": SCHEMA_VERSION,
            "ops": list(OPS),
        },
        sort_keys=True,
    )


def serve_stdio(session: ProgramSession, stdin=None, stdout=None) -> int:
    """The JSON-lines loop: read envelopes from stdin until EOF or a
    ``shutdown`` op, answer each on stdout."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stdout.write(ready_line() + "\n")
    stdout.flush()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            request_id = None
            try:
                decoded = json.loads(line)
                if isinstance(decoded, dict):
                    request_id = decoded.get("id")
            except json.JSONDecodeError:
                pass
            stdout.write(encode(error_response(request_id, exc)) + "\n")
            stdout.flush()
            continue
        response = handle_request(session, request)
        stdout.write(encode(response) + "\n")
        stdout.flush()
        if request.op == "shutdown" and response["ok"]:
            break
    return 0


def serve_http(
    session: ProgramSession, port: int, host: str = "127.0.0.1"
) -> int:
    """Serve ``POST /v1`` (request envelopes) and ``GET /v1/status`` until
    a ``shutdown`` op arrives or the process is interrupted."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    shutting_down = threading.Event()

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # stderr, not stdout
            sys.stderr.write(
                f"serve: {self.address_string()} {fmt % args}\n"
            )

        def _send(self, payload: dict, code: int = 200) -> None:
            body = encode(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(
            self, body: str, content_type: str, code: int = 200
        ) -> None:
            raw = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _stream_watch(self, query: str) -> None:
            """Stream lifecycle events as newline-delimited JSON until
            ``timeout`` seconds elapse or ``max`` events were sent.
            Chunk-free HTTP/1.1 streaming: no Content-Length, connection
            closes when the stream ends."""
            from urllib.parse import parse_qs

            params = parse_qs(query)

            def _one(name, default, cast):
                try:
                    return cast(params[name][0])
                except (KeyError, IndexError, ValueError):
                    return default

            cursor = _one("since", 0, int)
            limit = max(1, _one("max", 1000, int))
            timeout = min(60.0, max(0.0, _one("timeout", 10.0, float)))
            self.close_connection = True
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            try:
                hello = {
                    "watch": True,
                    "cursor": cursor,
                    "snapshot": session.hub.snapshot(),
                }
                self.wfile.write(
                    (json.dumps(hello, sort_keys=True) + "\n").encode()
                )
                self.wfile.flush()
                sent = 0
                deadline = time.monotonic() + timeout
                while sent < limit and time.monotonic() < deadline:
                    cursor, rows = session.hub.events_since(
                        cursor, limit=limit - sent
                    )
                    for row in rows:
                        self.wfile.write(
                            (json.dumps(row, sort_keys=True) + "\n").encode()
                        )
                        sent += 1
                    self.wfile.flush()
                    if not rows:
                        time.sleep(0.1)
            except (BrokenPipeError, ConnectionResetError):
                pass  # the watcher hung up; nothing to clean up

        def do_GET(self):  # noqa: N802 — stdlib naming
            path, _, query = self.path.partition("?")
            if path == "/v1/status":
                self._send(handle_request(session, Request(op="status")))
            elif path == "/metrics":
                self._send_text(
                    telemetry.render_prometheus(), telemetry.CONTENT_TYPE
                )
            elif path == "/v1/watch":
                self._stream_watch(query)
            else:
                self._send(
                    error_response(
                        None,
                        ProtocolError(
                            "GET serves /v1/status, /v1/watch, /metrics"
                        ),
                    ),
                    code=404,
                )

        def do_POST(self):  # noqa: N802 — stdlib naming
            if self.path != "/v1":
                self._send(
                    error_response(None, ProtocolError("POST serves /v1 only")),
                    code=404,
                )
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
            try:
                request = parse_request(body.decode("utf-8", "replace"))
            except ProtocolError as exc:
                self._send(error_response(None, exc), code=400)
                return
            response = handle_request(session, request)
            self._send(response, code=200 if response["ok"] else 422)
            if request.op == "shutdown" and response["ok"]:
                shutting_down.set()
                threading.Thread(target=server.shutdown, daemon=True).start()

    server = ThreadingHTTPServer((host, port), Handler)
    sys.stderr.write(
        f"serve: listening on http://{host}:{server.server_address[1]}/v1\n"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
