"""The v1 serve wire protocol: one envelope for both transports.

Requests (one JSON object per stdio line, or one HTTP POST body)::

    {"id": 7, "op": "analyze", "params": {...}, "schema_version": 1}

``id`` is the client's correlation token, echoed verbatim. ``op`` is one
of :data:`OPS`. ``params`` is op-specific and validated by the session.
``schema_version`` is optional on requests (assumed current) but rejected
when it names a version this build does not speak.

Responses::

    {"id": 7, "ok": true,  "result": {...}, "meta": {...}, "schema_version": 1}
    {"id": 7, "ok": false, "error": {"type": "ValueError", "message": "..."},
     "schema_version": 1}

``meta`` carries the per-request accounting the daemon exists to provide:
seconds, jobs run, ``verdicts_reused`` (answered from retained state),
``invalidated_edges`` (for updates), and cache-tier attribution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..clients.result import WIRE_SCHEMA_VERSION

SCHEMA_VERSION = WIRE_SCHEMA_VERSION

OPS = (
    "analyze",
    "update",
    "explain",
    "status",
    "shutdown",
    "metrics",
    "watch",
)


class ProtocolError(ValueError):
    """A malformed request envelope (bad JSON, unknown op, wrong shape)."""


@dataclass
class Request:
    op: str
    id: Any = None
    params: dict = field(default_factory=dict)


def parse_request(data) -> Request:
    """Validate one decoded request envelope. Raises :class:`ProtocolError`
    with a message naming what was wrong and what the schema accepts."""
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"unsupported schema_version {version!r}: this daemon speaks"
            f" version {SCHEMA_VERSION}"
        )
    unknown = sorted(set(data) - {"id", "op", "params", "schema_version"})
    if unknown:
        raise ProtocolError(
            f"unknown request field(s) {', '.join(unknown)}; the envelope"
            " takes id, op, params, schema_version"
        )
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            f"params must be a JSON object, got {type(params).__name__}"
        )
    return Request(op=op, id=data.get("id"), params=params)


def ok_response(
    request_id: Any, result: dict, meta: Optional[dict] = None
) -> dict:
    return {
        "id": request_id,
        "ok": True,
        "result": result,
        "meta": meta or {},
        "schema_version": SCHEMA_VERSION,
    }


def error_response(request_id: Any, exc: BaseException) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
        "schema_version": SCHEMA_VERSION,
    }


def encode(response: dict) -> str:
    """One response as a single JSON line (the stdio framing)."""
    return json.dumps(response, sort_keys=True, default=str)
