"""Hierarchical span tracing with a near-zero-cost disabled default.

The refutation pipeline is instrumented with *spans* — named, timed,
nested intervals::

    from repro.obs import trace

    with trace.span("executor.search", edge=str(edge)):
        ...

By default no tracer is installed and ``trace.span(...)`` returns a shared
no-op context manager: the only cost at every instrumentation point is one
function call and an attribute check, so the hot paths stay hot (the
``benchmarks/obs_overhead.py`` guard keeps it honest).

Installing a :class:`Tracer` (the CLI does this for ``--trace FILE``)
turns every span into a *Chrome trace event*: the export of
:meth:`Tracer.to_chrome_trace` loads directly in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_, showing the per-phase breakdown of
a run — driver jobs, backwards searches, loop-invariant inference, solver
calls — one lane per worker thread.

Span identity is thread-aware: each thread keeps its own span stack, so
spans opened by driver worker threads nest under that worker's lane, never
under another thread's open span. Sinks subscribed with
:meth:`Tracer.add_sink` observe every finished span (the refutation
driver forwards them onto its :class:`~repro.engine.events.EventBus`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Optional

#: The span/metric naming scheme (see docs/observability.md): dotted,
#: ``<layer>.<operation>`` — e.g. ``driver.job``, ``executor.search``,
#: ``solver.check_sat``, ``pointsto.solve``.

SpanSink = Callable[["SpanRecord"], None]


class SpanRecord:
    """One finished span: the unit handed to sinks and the trace export."""

    __slots__ = ("name", "start", "duration", "thread_id", "thread_name",
                 "span_id", "parent_id", "attrs", "pid", "kind")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        thread_id: int,
        thread_name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: dict,
        pid: Optional[int] = None,
        kind: str = "span",
    ) -> None:
        self.name = name
        self.start = start  # seconds since the tracer's epoch
        self.duration = duration  # seconds
        self.thread_id = thread_id  # small per-tracer ordinal, not get_ident()
        self.thread_name = thread_name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        #: Originating process, set only on spans absorbed from a worker
        #: process; None means "this process".
        self.pid = pid
        #: ``"span"`` (a timed interval) or ``"instant"`` (a point event —
        #: rung escalations, steal handoffs; Chrome ``ph: i``).
        self.kind = kind

    def to_chrome_event(self, pid: int) -> dict:
        """A Chrome trace event, microseconds: 'complete' (``ph: X``) for
        spans, thread-scoped 'instant' (``ph: i``) for point events."""
        args = dict(self.attrs)
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        event = {
            "name": self.name,
            "cat": self.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(self.start * 1e6, 3),
            "dur": round(self.duration * 1e6, 3),
            "pid": self.pid if self.pid is not None else pid,
            "tid": self.thread_id,
            "args": args,
        }
        if self.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"  # scope: the emitting worker's thread lane
            del event["dur"]
        return event

    def to_dict(self) -> dict:
        """Plain-data form for shipping across a process boundary."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
            "kind": self.kind,
        }


class _NoopSpan:
    """The shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        """Attribute updates on a disabled span are dropped."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "_state", "name", "attrs", "span_id", "parent_id",
                 "_start")

    def __init__(self, tracer: "Tracer", state: "_ThreadState", name: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self._state = state
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes after the span opened (e.g. the verdict)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        state = self._state
        self.span_id = self._tracer._next_id()
        self.parent_id = state.stack[-1] if state.stack else None
        state.stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        state = self._state
        if state.stack and state.stack[-1] == self.span_id:
            state.stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start=self._start - self._tracer.epoch,
                duration=end - self._start,
                thread_id=state.ordinal,
                thread_name=state.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )


class _ThreadState(threading.local):
    """Per-thread span stack plus a stable small ordinal for trace lanes."""

    def __init__(self) -> None:  # called once per thread by threading.local
        self.stack: list[int] = []
        self.ordinal = -1
        self.name = ""


class Tracer:
    """Collects spans; exports Chrome trace-event JSON.

    Parameters
    ----------
    max_spans:
        Retention cap: beyond it, finished spans are counted but dropped
        (``dropped_spans``) so a pathological run cannot exhaust memory.
        Sinks still observe every span.
    """

    def __init__(self, max_spans: int = 500_000) -> None:
        self.epoch = time.perf_counter()
        #: Wall-clock time of the epoch: ``perf_counter`` epochs are
        #: per-process, so merging worker spans rebases through this.
        self.wall_epoch = time.time()
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._records: list[SpanRecord] = []
        self._sinks: list[SpanSink] = []
        self._lock = threading.Lock()
        self._id_counter = 0
        self._thread_counter = 0
        self._tls = _ThreadState()

    # -- span creation ------------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        state = self._tls
        if state.ordinal < 0:
            with self._lock:
                state.ordinal = self._thread_counter
                self._thread_counter += 1
            state.name = threading.current_thread().name
        return _Span(self, state, name, attrs)

    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration point event in the calling thread's lane
        (Chrome ``ph: i``): rung escalations, work-steal handoffs. Routes
        through :meth:`_record`, so sinks observe it — sinks that roll up
        durations must skip ``kind == "instant"`` records."""
        state = self._tls
        if state.ordinal < 0:
            with self._lock:
                state.ordinal = self._thread_counter
                self._thread_counter += 1
            state.name = threading.current_thread().name
        self._record(
            SpanRecord(
                name=name,
                start=time.perf_counter() - self.epoch,
                duration=0.0,
                thread_id=state.ordinal,
                thread_name=state.name,
                span_id=self._next_id(),
                parent_id=state.stack[-1] if state.stack else None,
                attrs=attrs,
                kind="instant",
            )
        )

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) < self.max_spans:
                self._records.append(record)
            else:
                self.dropped_spans += 1
            sinks = list(self._sinks)
        for sink in sinks:
            sink(record)

    # -- sinks --------------------------------------------------------------

    def add_sink(self, sink: SpanSink) -> None:
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: SpanSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    # -- introspection / export --------------------------------------------

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def drain(self) -> list[SpanRecord]:
        """Hand over (and clear) the retained spans — a worker process
        calls this after each job so spans ship to the parent exactly
        once."""
        with self._lock:
            out = self._records
            self._records = []
        return out

    def absorb(
        self, span_dicts: list[dict], pid: int, wall_epoch: float
    ) -> None:
        """Merge spans drained from a worker process (``SpanRecord.to_dict``
        rows) into this tracer.

        Start times are rebased from the worker's epoch onto ours via the
        wall clock, span ids are remapped through this tracer's counter so
        they stay unique, and records keep the worker ``pid`` so the
        Chrome export shows one process row per worker. Parent links that
        point outside the batch (a span whose parent shipped in an earlier
        drain) are cut rather than left dangling. Absorbed spans route
        through :meth:`_record`, so sinks observe them like local spans."""
        offset = wall_epoch - self.wall_epoch
        remap: dict[int, int] = {}
        for row in span_dicts:
            remap[row["span_id"]] = self._next_id()
        for row in span_dicts:
            self._record(
                SpanRecord(
                    name=row["name"],
                    start=row["start"] + offset,
                    duration=row["duration"],
                    thread_id=row["thread_id"],
                    thread_name=row["thread_name"],
                    span_id=remap[row["span_id"]],
                    parent_id=remap.get(row["parent_id"]),
                    attrs=row.get("attrs", {}),
                    pid=pid,
                    kind=row.get("kind", "span"),
                )
            )

    def phase_totals(self) -> dict[str, float]:
        """Summed seconds per span name — the per-phase timing rollup."""
        totals: dict[str, float] = {}
        for record in self.spans():
            if record.kind == "instant":
                continue
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    def to_chrome_trace(self) -> dict:
        pid = os.getpid()
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro refutation pipeline"},
            }
        ]
        records = self.spans()
        worker_pids: list[int] = sorted(
            {r.pid for r in records if r.pid is not None and r.pid != pid}
        )
        for wpid in worker_pids:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": wpid,
                    "tid": 0,
                    "args": {"name": f"repro worker {wpid}"},
                }
            )
        seen_threads: dict[tuple[int, int], str] = {}
        for record in records:
            rpid = record.pid if record.pid is not None else pid
            seen_threads.setdefault((rpid, record.thread_id), record.thread_name)
        for (rpid, tid), name in sorted(seen_threads.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": rpid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        events.extend(r.to_chrome_event(pid) for r in records)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped_spans},
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)
            fh.write("\n")


class _DisabledTracer:
    """The default: every span request returns the shared no-op span."""

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def instant(self, name: str, **attrs) -> None:
        return None


_DISABLED = _DisabledTracer()
_active: object = _DISABLED


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process-wide active tracer."""
    global _active
    tracer = tracer or Tracer()
    _active = tracer
    return tracer


def disable() -> None:
    """Return to the no-op default."""
    global _active
    _active = _DISABLED


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _active if isinstance(_active, Tracer) else None


def enabled() -> bool:
    return _active is not _DISABLED


def span(name: str, **attrs):
    """Open a span on the active tracer (no-op when tracing is disabled)."""
    return _active.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    """Record a point event on the active tracer (no-op when disabled)."""
    _active.instant(name, **attrs)
