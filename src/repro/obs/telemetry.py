"""Operational telemetry: exposition, live streaming, and the flight recorder.

The other :mod:`repro.obs` substrates (spans, metrics, journals) were
built for one-shot batch runs: install, run, dump a file. A resident
``repro serve`` daemon under portfolio scheduling needs the *operational*
layer on top — the ability to scrape, watch, and post-mortem a process
that never exits. Four pieces, all layered on the existing substrates
rather than new instrumentation:

* :func:`render_prometheus` — a versioned Prometheus text exposition of
  the process-wide metrics registry. Families that the registry keeps as
  flat dotted names (``executor.kill.<reason>``, the solver answer
  tiers, ``driver.rung.<event>.<rung>``, the scheduler counters) are
  folded into properly *labeled* series so one scrape graphs the kill
  taxonomy, cache-tier mix, and rung ladder without regex gymnastics.
  Served as ``GET /metrics`` and the stdio ``metrics`` verb; batch runs
  can stream periodic snapshots to JSONL via :class:`MetricsStreamer`.
* :class:`TelemetryHub` — a bounded, cursor-addressable ring of per-edge
  lifecycle events (scheduled → rung-escalated → stolen → resolved)
  fed straight from the driver's event bus, plus the derived live state
  (in-flight searches, worker utilization, verdict totals) that the
  ``watch`` verb / ``GET /v1/watch`` stream and ``repro top`` render.
* :class:`FlightRecorder` — an always-on bounded ring of recent
  per-search summaries (cost-model estimate vs actual, kill-reason mix,
  footprint size). Any search slower than ``SearchConfig.slow_query_ms``
  is *captured*: its full journal (and trace, when one can be recorded
  without disturbing an installed tracer) is persisted under
  :func:`flight_dir`, so ``repro explain --slow`` works after the fact
  on a run that never passed ``--journal``.
* run-report diffing lives in :mod:`repro.engine.diff` (it needs the
  report model); this module stays importable from anywhere below the
  engine.

Import discipline: this module must not import :mod:`repro.engine` (the
driver imports ``repro.obs``); driver events are therefore consumed by
duck typing on the dataclass name and fields.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from . import metrics, provenance, trace

#: Bumped whenever the exposition's family names/labels change shape.
EXPOSITION_VERSION = 2

#: The scrape Content-Type (the standard Prometheus text format).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

#: Flat registry names folded into the labeled solver-answer family,
#: mirroring the tier names of ``perf.cache_report()["tiers"]``.
_TIER_LABELS = {
    "solver.context_hits": "context",
    "solver.component_memo_hits": "component_memo",
    "solver.memo_hits": "whole_query_memo",
    "solver.fastpath_unsat": "fastpath_unsat",
    "solver.checks": "decision",
}

_SCHED_LABELS = {
    "driver.steals": "steal",
    "driver.priority_inversions": "priority_inversion",
}

#: Persistent verdict-store counters (``repro.perf.store``) folded into one
#: labeled family; the store's size gauges (``store.entries``,
#: ``store.bytes``) stay generic ``repro_store_*`` gauges.
_STORE_LABELS = {
    "store.hits": "hit",
    "store.misses": "miss",
    "store.writes": "write",
    "store.evictions": "evict",
    "store.errors": "error",
}

_KILL_PREFIX = "executor.kill."
_RUNG_RE = re.compile(r"^driver\.rung\.(scheduled|resolved|carryover)\.(\d+)$")

_FAMILY_HELP = {
    "repro_executor_kills_total": "Path states killed, by kill-taxonomy reason.",
    "repro_solver_answers_total": "Solver queries answered, by cache tier.",
    "repro_driver_sched_events_total":
        "Scheduler events: work steals and priority inversions.",
    "repro_driver_rung_jobs_total":
        "Portfolio-ladder jobs, by lifecycle event and rung.",
    "repro_store_ops_total":
        "Persistent verdict-store operations, by outcome.",
}


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    f = float(value)
    if f.is_integer():
        return str(int(f))
    return repr(f)


def render_prometheus(registry: Optional[metrics.MetricsRegistry] = None) -> str:
    """The registry as Prometheus text exposition (format 0.0.4).

    Deterministic: families and sample lines are emitted sorted, and the
    first line carries :data:`EXPOSITION_VERSION` so golden tests (and
    scrapers that care) can pin the shape.
    """
    registry = registry if registry is not None else metrics.REGISTRY
    dump = registry.to_dict()
    families: dict[str, dict] = {}

    def family(name: str, ftype: str, help_text: str) -> dict:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = {
                "type": ftype, "help": help_text, "samples": [],
            }
        return fam

    for name in sorted(dump):
        data = dump[name]
        mtype = data.get("type")
        if mtype == "histogram":
            fam_name = "repro_" + _sanitize(name)
            fam = family(fam_name, "summary", f"Distribution of {name}.")
            for quantile, key in (("0.5", "p50"), ("0.95", "p95")):
                value = data.get(key)
                if value is not None:
                    fam["samples"].append(
                        (f'{fam_name}{{quantile="{quantile}"}}', value)
                    )
            fam["samples"].append((fam_name + "_sum", data.get("sum", 0.0)))
            fam["samples"].append((fam_name + "_count", data.get("count", 0)))
            continue
        labels = None
        rung = _RUNG_RE.match(name)
        if name.startswith(_KILL_PREFIX):
            fam_name = "repro_executor_kills_total"
            labels = f'reason="{name[len(_KILL_PREFIX):]}"'
        elif name in _TIER_LABELS:
            fam_name = "repro_solver_answers_total"
            labels = f'tier="{_TIER_LABELS[name]}"'
        elif name in _SCHED_LABELS:
            fam_name = "repro_driver_sched_events_total"
            labels = f'event="{_SCHED_LABELS[name]}"'
        elif name in _STORE_LABELS:
            fam_name = "repro_store_ops_total"
            labels = f'op="{_STORE_LABELS[name]}"'
        elif rung is not None:
            fam_name = "repro_driver_rung_jobs_total"
            labels = f'event="{rung.group(1)}",rung="{rung.group(2)}"'
        if labels is not None:
            fam = family(fam_name, "counter", _FAMILY_HELP[fam_name])
            fam["samples"].append(
                (f"{fam_name}{{{labels}}}", data.get("value", 0))
            )
        elif mtype == "counter":
            fam_name = "repro_" + _sanitize(name) + "_total"
            fam = family(fam_name, "counter", f"Total {name}.")
            fam["samples"].append((fam_name, data.get("value", 0)))
        else:
            fam_name = "repro_" + _sanitize(name)
            fam = family(fam_name, "gauge", f"Current {name}.")
            fam["samples"].append((fam_name, data.get("value", 0)))

    lines = [f"# repro-exposition-version {EXPOSITION_VERSION}"]
    for fam_name in sorted(families):
        fam = families[fam_name]
        lines.append(f"# HELP {fam_name} {fam['help']}")
        lines.append(f"# TYPE {fam_name} {fam['type']}")
        for sample, value in sorted(fam["samples"]):
            lines.append(f"{sample} {_fmt(value)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Live lifecycle streaming
# ---------------------------------------------------------------------------

#: Driver event classes that constitute the per-edge lifecycle (matched by
#: name — see the module docstring's import-discipline note). SpanFinished
#: is deliberately excluded: thousands per second, and phase rollups are
#: already served by RunReport.phase_seconds.
_LIFECYCLE = frozenset({
    "RunStarted",
    "EdgeScheduled",
    "EdgeEscalated",
    "EdgeStolen",
    "EdgeFinished",
    "RunFinished",
})


class TelemetryHub:
    """A bounded, cursor-addressable ring of driver lifecycle events.

    Subscribe :meth:`sink` to a driver's event bus (the serve session
    does this for its resident driver). Consumers poll
    :meth:`events_since` with the cursor from their previous call —
    the ``watch`` verb's wire protocol — or take a :meth:`snapshot` of
    the *derived* live state for one-shot renderers like ``repro top``.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._in_flight: dict[str, dict] = {}
        self._workers: dict[str, int] = {}
        self._totals = {
            "scheduled": 0,
            "escalated": 0,
            "stolen": 0,
            "refuted": 0,
            "witnessed": 0,
            "timeout": 0,
            "cached": 0,
        }
        self._run: Optional[dict] = None

    # -- ingestion ----------------------------------------------------------

    def sink(self, event) -> None:
        """An ``EventSink``: convert one driver event into a ring row."""
        kind = type(event).__name__
        if kind not in _LIFECYCLE:
            return
        row = {"event": kind}
        for field in getattr(event, "__dataclass_fields__", ()):
            row[field] = getattr(event, field)
        now = time.time()
        with self._lock:
            self._seq += 1
            row["seq"] = self._seq
            row["ts"] = now
            self._events.append(row)
            self._fold(kind, row, now)

    def _fold(self, kind: str, row: dict, now: float) -> None:
        """Fold one event into the derived live state (lock held)."""
        if kind == "RunStarted":
            self._run = {
                "total_jobs": row.get("total_jobs", 0),
                "jobs": row.get("jobs", 0),
                "backend": row.get("backend", ""),
                "started": now,
                "finished": None,
                "seconds": None,
            }
        elif kind == "EdgeScheduled":
            self._totals["scheduled"] += 1
            self._in_flight.setdefault(
                row["description"], {"since": now, "rung": 0, "steals": 0}
            )
        elif kind == "EdgeEscalated":
            self._totals["escalated"] += 1
            entry = self._in_flight.get(row["description"])
            if entry is not None:
                entry["rung"] = row.get("rung", 0) + 1
        elif kind == "EdgeStolen":
            self._totals["stolen"] += 1
            entry = self._in_flight.get(row["description"])
            if entry is not None:
                entry["steals"] += 1
            worker = row.get("thread", "")
            self._workers[worker] = self._workers.get(worker, 0) + 1
        elif kind == "EdgeFinished":
            status = row.get("status", "")
            if row.get("cached"):
                self._totals["cached"] += 1
            elif status in self._totals:
                self._totals[status] += 1
            self._in_flight.pop(row["description"], None)
            worker = row.get("worker", "")
            self._workers[worker] = self._workers.get(worker, 0) + 1
        elif kind == "RunFinished":
            if self._run is not None:
                self._run["finished"] = now
                self._run["seconds"] = row.get("seconds")
            self._in_flight.clear()

    # -- consumption --------------------------------------------------------

    def events_since(
        self, cursor: int = 0, limit: int = 500
    ) -> tuple[int, list[dict]]:
        """Events with ``seq > cursor`` (oldest first, at most ``limit``)
        and the new cursor to resume from. A consumer that fell more than
        ``capacity`` events behind silently resumes from the oldest
        retained row — the ring never blocks the producer."""
        with self._lock:
            rows = [dict(r) for r in self._events if r["seq"] > cursor]
        rows = rows[:limit]
        new_cursor = rows[-1]["seq"] if rows else cursor
        return new_cursor, rows

    def snapshot(self) -> dict:
        """The derived live state for one-shot renderers (``repro top``)."""
        with self._lock:
            in_flight = [
                {"description": desc, **entry}
                for desc, entry in sorted(
                    self._in_flight.items(), key=lambda kv: kv[1]["since"]
                )
            ]
            return {
                "seq": self._seq,
                "in_flight": in_flight,
                "workers": dict(sorted(self._workers.items())),
                "totals": dict(self._totals),
                "run": dict(self._run) if self._run is not None else None,
            }


# ---------------------------------------------------------------------------
# Slow-query flight recorder
# ---------------------------------------------------------------------------

def flight_dir() -> str:
    """Where slow-query captures land: ``$REPRO_FLIGHT_DIR`` or
    ``.repro-flight`` under the working directory."""
    return os.environ.get("REPRO_FLIGHT_DIR", ".repro-flight")


def search_summary(
    kind: str,
    description: str,
    result,
    worker: str = "",
    estimate: Optional[int] = None,
) -> dict:
    """One finished search as a flat flight-recorder row. ``result`` is an
    ``EdgeResult`` (duck-typed: this module cannot import the engine)."""
    footprint = getattr(result, "footprint", None)
    return {
        "kind": kind,
        "description": description,
        "status": getattr(result, "status", ""),
        "seconds": getattr(result, "seconds", 0.0),
        "path_programs": getattr(result, "path_programs", 0),
        "kill_reasons": dict(getattr(result, "kill_reasons", None) or {}),
        "footprint_size": len(footprint) if footprint is not None else None,
        "rung": getattr(result, "rung", None),
        "worker": worker,
        "estimate": estimate,
        "ts": time.time(),
    }


class FlightRecorder:
    """Always-on ring of recent search summaries + slow-query capture.

    :meth:`record` is the hot-path call: one dict append into a bounded
    deque under a lock (the obs-overhead guard benchmarks exactly this).
    :meth:`capture` persists a slow search's journal/trace; it reuses the
    installed run journal when there is one (never re-running, never
    mutating it), and otherwise replays the search on a fresh engine
    under a *temporary* journal — safe because the search is deterministic
    in ``(program, config)`` and the replay's temporary installs are
    restored before returning. Captures are capped per process
    (``max_captures``) and can be vetoed wholesale with
    ``REPRO_FLIGHT_DISABLE=1``.
    """

    def __init__(self, size: int = 256, max_captures: int = 8) -> None:
        self.size = size
        self.max_captures = max_captures
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=size)
        self._captures = 0
        self._counter = 0

    # -- the hot path -------------------------------------------------------

    def record(self, summary: dict) -> None:
        with self._lock:
            self._ring.append(summary)

    def recent(self, limit: Optional[int] = None) -> list[dict]:
        """Retained summaries, oldest first."""
        with self._lock:
            rows = list(self._ring)
        return rows if limit is None else rows[-limit:]

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._captures = 0
            self._counter = 0

    # -- slow-query capture -------------------------------------------------

    @staticmethod
    def capture_enabled() -> bool:
        return os.environ.get("REPRO_FLIGHT_DISABLE", "") != "1"

    def capture(
        self,
        description: str,
        summary: dict,
        replay: Optional[Callable[[], object]] = None,
        directory: Optional[str] = None,
    ) -> Optional[dict]:
        """Persist a slow search's journal (+ trace when recordable).

        Returns the capture's meta dict (also written as ``*.meta.json``)
        or ``None`` when capture is disabled, the per-process cap is
        reached, or no journal could be obtained."""
        if not self.capture_enabled():
            return None
        with self._lock:
            if self._captures >= self.max_captures:
                return None
            self._captures += 1
            index = self._counter = self._counter + 1
        journal, tracer = self._acquire(description, replay)
        if journal is None or not journal.searches:
            return None
        directory = directory or flight_dir()
        os.makedirs(directory, exist_ok=True)
        slug = _sanitize(description)[:60] or "search"
        stem = os.path.join(directory, f"{index:03d}-{slug}")
        journal_path = stem + ".journal.jsonl"
        journal.write_jsonl(journal_path)
        trace_path = None
        if tracer is not None and tracer.spans():
            trace_path = stem + ".trace.json"
            tracer.write(trace_path)
        meta = {
            "capture": index,
            "description": description,
            "summary": summary,
            "journal": os.path.basename(journal_path),
            "trace": os.path.basename(trace_path) if trace_path else None,
            "attribution": journal.attribution(),
            "ts": time.time(),
        }
        with open(stem + ".meta.json", "w") as fh:
            json.dump(meta, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return meta

    def _acquire(self, description: str, replay):
        """The capture's (journal, tracer) pair.

        With a run journal installed the search was already journaled:
        extract its entries into a standalone sub-journal (the installed
        journal is read, never re-run into — re-running would double the
        kill counts that ``RunReport.attribution`` is asserted against).
        With no journal installed, replay the search under temporary
        instruments; a temporary tracer is only installed when tracing is
        off, so an installed tracer's sink wiring is never disturbed."""
        book = provenance.get_journal()
        if book is not None:
            searches = book.searches_for(description)
            if not searches:
                return None, None
            sub = provenance.RunJournal()
            sub.absorb([sj.to_dict() for sj in searches])
            return sub, None
        if replay is None:
            return None, None
        temp_journal = provenance.install(provenance.RunJournal())
        temp_tracer = None if trace.enabled() else trace.install(
            trace.Tracer(max_spans=100_000)
        )
        try:
            replay()
        except Exception:
            pass
        finally:
            provenance.disable()
            if temp_tracer is not None:
                trace.disable()
        sub = provenance.RunJournal()
        sub.absorb(
            [sj.to_dict() for sj in temp_journal.searches_for(description)]
        )
        return sub, temp_tracer


#: The process-wide recorder the driver feeds. Always on; bounded.
RECORDER = FlightRecorder()


def list_captures(directory: Optional[str] = None) -> list[dict]:
    """Capture metas persisted under ``directory`` (oldest first). Each
    meta gains a ``path`` key pointing at its journal for loading."""
    directory = directory or flight_dir()
    if not os.path.isdir(directory):
        return []
    out = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".meta.json"):
            continue
        try:
            with open(os.path.join(directory, name)) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            continue
        if meta.get("journal"):
            meta["path"] = os.path.join(directory, meta["journal"])
        out.append(meta)
    return out


# ---------------------------------------------------------------------------
# Periodic snapshot streaming (batch runs)
# ---------------------------------------------------------------------------

class MetricsStreamer:
    """Append periodic registry snapshots to a JSONL file.

    The batch-run analogue of being scraped: ``--metrics-stream FILE``
    starts one of these for the duration of the run, so post-hoc tooling
    sees the metric *trajectory*, not just the final dump. One JSON
    object per line: ``{"ts", "seq", "metrics": {...}}``; a final
    snapshot is flushed on :meth:`stop`."""

    def __init__(
        self,
        path: str,
        interval: float = 5.0,
        registry: Optional[metrics.MetricsRegistry] = None,
    ) -> None:
        self.path = path
        self.interval = max(0.05, float(interval))
        self.registry = registry if registry is not None else metrics.REGISTRY
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._seq = 0

    def _flush(self) -> None:
        self._seq += 1
        row = {
            "ts": time.time(),
            "seq": self._seq,
            "metrics": self.registry.to_dict(),
        }
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._flush()

    def start(self) -> "MetricsStreamer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="metrics-stream", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the ticker and flush one final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._flush()


__all__ = [
    "CONTENT_TYPE",
    "EXPOSITION_VERSION",
    "FlightRecorder",
    "MetricsStreamer",
    "RECORDER",
    "TelemetryHub",
    "flight_dir",
    "list_captures",
    "render_prometheus",
    "search_summary",
]
