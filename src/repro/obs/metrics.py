"""Process-wide metrics registry: counters, gauges, and histograms.

This is the measurement substrate behind the paper's effort accounting
(Table 1's path programs, refutation kinds, per-edge seconds): every layer
of the pipeline reports into one named registry instead of ad-hoc counter
objects. The registry absorbs what ``SolverStats``
(:mod:`repro.solver.core`) and ``SearchStats`` (:mod:`repro.symbolic.stats`)
used to count — those classes remain as thin compatibility views, but the
canonical cross-run aggregate lives here and is dumped by ``--metrics``.

Design constraints, in order:

1. *cheap* — instruments are plain objects with one lock each; hot loops
   hold a local tally and flush once per phase (see
   :meth:`Counter.inc` callers in :mod:`repro.pointsto.andersen`);
2. *thread-safe* — driver worker threads write concurrently; every
   read-modify-write is under the instrument's lock;
3. *always on* — unlike tracing there is no disabled mode: the registry
   is the single source of truth, and dumping it (``--metrics FILE``)
   costs nothing extra during the run.

Histograms keep a bounded value buffer (deterministic stride thinning
beyond ``keep``) from which p50/p95 are estimated; count/sum/min/max are
exact regardless.
"""

from __future__ import annotations

import json
import threading
from typing import Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Number = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> Number:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}

    def merge(self, snap: dict) -> None:
        """Fold another process's counter into this one (values add)."""
        self.inc(snap.get("value", 0))

    def zero(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that goes up and down (e.g. live worker count)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: Number) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> Number:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}

    def merge(self, snap: dict) -> None:
        """Fold another process's gauge into this one. Gauges describe a
        momentary level, not a total, so merging takes the max — the
        peak observed across processes."""
        value = snap.get("value", 0)
        with self._lock:
            if value > self._value:
                self._value = value

    def zero(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A distribution summary: exact count/sum/min/max, estimated quantiles.

    Beyond ``keep`` observations the value buffer is thinned by doubling a
    deterministic keep-every-Nth stride — no randomness, so repeated runs
    of a deterministic workload produce identical dumps.
    """

    __slots__ = ("name", "keep", "count", "total", "min", "max", "_values",
                 "_stride", "_skip", "_lock")

    def __init__(self, name: str, keep: int = 8192) -> None:
        self.name = name
        self.keep = keep
        self.count = 0
        self.total = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._values: list[Number] = []
        self._stride = 1
        self._skip = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._skip += 1
            if self._skip >= self._stride:
                self._skip = 0
                self._values.append(value)
                if len(self._values) > self.keep:
                    # Thin to every other sample and double the stride.
                    self._values = self._values[::2]
                    self._stride *= 2

    def percentile(self, p: float) -> Optional[Number]:
        """Estimated p-th percentile (0..100) from the retained samples."""
        with self._lock:
            values = sorted(self._values)
        if not values:
            return None
        rank = max(0, min(len(values) - 1, round(p / 100 * (len(values) - 1))))
        return values[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Full serializable state, including the retained sample buffer
        (unlike :meth:`to_dict`, which summarizes it as quantiles)."""
        with self._lock:
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "values": list(self._values),
                "stride": self._stride,
            }

    def merge(self, snap: dict) -> None:
        """Fold another process's histogram into this one: exact moments
        add, and the sample buffers concatenate then re-thin to ``keep``."""
        with self._lock:
            self.count += snap.get("count", 0)
            self.total += snap.get("sum", 0.0)
            for bound, better in (("min", min), ("max", max)):
                other = snap.get(bound)
                if other is not None:
                    ours = getattr(self, bound)
                    setattr(
                        self, bound,
                        other if ours is None else better(ours, other),
                    )
            self._values.extend(snap.get("values", []))
            self._stride = max(self._stride, snap.get("stride", 1))
            while len(self._values) > self.keep:
                self._values = self._values[::2]
                self._stride *= 2

    def zero(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._values = []
            self._stride = 1
            self._skip = 0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use, dumped as one JSON object."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = cls(name, **kwargs)
                    self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as"
                f" {type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, keep: int = 8192) -> Histogram:
        return self._get_or_create(name, Histogram, keep=keep)

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (test isolation; not used in production)."""
        with self._lock:
            self._instruments.clear()

    def zero(self) -> None:
        """Zero every instrument *in place*, preserving identity — callers
        holding module-level handles keep reporting into the registry.
        Used by forked process workers to drop the parent's inherited
        values so the snapshot they ship back carries only their own."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.zero()

    def to_dict(self) -> dict:
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].to_dict() for name in sorted(instruments)}

    def snapshot(self) -> dict:
        """Serializable state of every instrument, suitable for shipping
        across a process boundary and merging via :meth:`merge_snapshot`."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in instruments.items()}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker-process registry snapshot into this registry:
        counters add, gauges take the max, histograms merge samples."""
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name, data in snap.items():
            cls = kinds.get(data.get("type"))
            if cls is None:
                continue
            self._get_or_create(name, cls).merge(data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


#: The process-wide default registry: every pipeline layer reports here.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, keep: int = 8192) -> Histogram:
    return REGISTRY.histogram(name, keep=keep)
