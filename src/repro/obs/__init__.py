"""Observability for the refutation pipeline: span tracing + metrics.

Two complementary substrates (see docs/observability.md):

* :mod:`repro.obs.trace` — hierarchical span tracing with a near-zero-cost
  disabled default and Chrome trace-event JSON export (``--trace FILE``,
  loadable in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — an always-on process-wide registry of named
  counters, gauges, and p50/p95 histograms (``--metrics FILE``).

Usage from pipeline code::

    from ..obs import metrics, trace

    _SEARCHES = metrics.counter("executor.searches")

    with trace.span("executor.search", edge=str(edge)) as sp:
        ...
        sp.set(status=result.status)
    _SEARCHES.inc()
"""

from . import metrics, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from .trace import SpanRecord, Tracer

__all__ = [
    "metrics",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SpanRecord",
    "Tracer",
]
