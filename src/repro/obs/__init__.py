"""Observability for the refutation pipeline: span tracing + metrics.

Three complementary substrates (see docs/observability.md):

* :mod:`repro.obs.trace` — hierarchical span tracing with a near-zero-cost
  disabled default and Chrome trace-event JSON export (``--trace FILE``,
  loadable in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — an always-on process-wide registry of named
  counters, gauges, and p50/p95 histograms (``--metrics FILE``);
* :mod:`repro.obs.provenance` — per-query search journals recording every
  state spawned/killed/witnessed during backwards symbolic execution, with
  typed kill reasons, JSONL/DOT export, and refutation certificates
  (``--journal FILE``, ``repro explain``). No-op unless installed.
* :mod:`repro.obs.telemetry` — the operational layer on top: Prometheus
  text exposition of the registry (``GET /metrics``), the lifecycle-event
  hub behind ``watch`` / ``repro top``, the always-on slow-query flight
  recorder (``repro explain --slow``), and periodic snapshot streaming
  (``--metrics-stream FILE``).

Usage from pipeline code::

    from ..obs import metrics, trace

    _SEARCHES = metrics.counter("executor.searches")

    with trace.span("executor.search", edge=str(edge)) as sp:
        ...
        sp.set(status=result.status)
    _SEARCHES.inc()
"""

from . import metrics, provenance, telemetry, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from .provenance import RunJournal, SearchJournal
from .telemetry import FlightRecorder, MetricsStreamer, TelemetryHub
from .trace import SpanRecord, Tracer

__all__ = [
    "metrics",
    "provenance",
    "telemetry",
    "trace",
    "FlightRecorder",
    "MetricsStreamer",
    "TelemetryHub",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RunJournal",
    "SearchJournal",
    "SpanRecord",
    "Tracer",
]
