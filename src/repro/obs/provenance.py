"""Refutation provenance: per-query search journals and prune attribution.

The paper's value proposition is *precise refutations* — telling the
developer **why** a heap-reachability alarm is false — and its evaluation
attributes refutation power to specific mechanisms (instance constraints,
loop-invariant inference, strong updates). This module records that "why"
as structured data: a :class:`SearchJournal` per refutation query logs
every state event of the backwards symbolic execution —

* ``spawned`` — a path state entered the worklist (parent id + label);
* ``killed`` — the state died, with a **typed kill reason** from
  :data:`KILL_REASONS` plus the raw constraint detail;
* ``witnessed`` — the state survived to the program entry;
* ``note`` — a non-killing provenance remark (a callee skipped soundly,
  a loop invariant inferred).

Like :mod:`repro.obs.trace`, journaling is off by default and the hooks in
:mod:`repro.symbolic.executor` / :mod:`repro.symbolic.loops` /
:mod:`repro.solver.core` are no-ops unless :func:`install` has made a
:class:`RunJournal` process-wide active (one ``is None`` check per hook;
the ``benchmarks/obs_overhead.py`` guard covers the disabled cost).

On top of the journal sit the consumers:

* **attribution** — kill counts rolled up per search
  (:attr:`SearchJournal.kill_counts`), per edge
  (``EdgeResult.kill_reasons``), and per run
  (``RunReport.attribution`` and ``executor.kill.<reason>`` metrics);
* **exporters** — JSONL (:meth:`RunJournal.write_jsonl`) and Graphviz DOT
  of the search tree with kill reasons on the leaves (:func:`to_dot`);
* **certificates** — :func:`render_certificate` turns the journals of one
  edge into the human-readable proof the ``thresher explain`` subcommand
  prints: every producer's search tree with the constraint that killed
  each branch.

Journals survive worker pools: thread workers share the process-wide
:class:`RunJournal` (``open_search`` is the only synchronized point; each
search's events are single-writer); process workers journal locally and
the driver merges their :meth:`RunJournal.drain` payloads back with
:meth:`RunJournal.absorb`, like the refuted-state cache snapshots.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Optional

from . import metrics

# ---------------------------------------------------------------------------
# The kill-reason taxonomy (see docs/observability.md for the mapping from
# raw refutation strings).
# ---------------------------------------------------------------------------

#: An instance (``from`` region), separation, or dispatch constraint became
#: contradictory — the paper's axioms (1)/(2) and the separating conjunction.
INSTANCE_CONSTRAINT = "instance-constraint-contradiction"
#: The decision procedure reported the accumulated pure path and data
#: constraints unsatisfiable.
SOLVER_UNSAT = "solver-unsat"
#: Dropped at a loop head: the inferred disjunctive invariant (or the
#: loop-head query history) already covers this state.
LOOP_INVARIANT_DROP = "loop-invariant-drop"
#: Dropped before expansion: an entailment-weaker sibling in the same
#: successor batch subsumes it (Section 3.3 worklist subsumption).
WORKLIST_SUBSUMED = "worklist-subsumed"
#: Dropped by the cross-search refuted-state cache: an earlier REFUTED
#: search already proved this state a dead end.
REFUTED_CACHE_HIT = "refuted-cache-hit"
#: Died crossing a call boundary that had to be skipped or could not be
#: bound (parameter/argument mismatch at an entry).
CALLEE_SKIP_DROP = "callee-skip-drop"
#: The path-program budget or the wall-clock deadline ran out; the state
#: (and everything still on the worklist) was abandoned unproven.
BUDGET_TIMEOUT = "budget-timeout"
#: Control flow can never reach here: the callee never completes normally,
#: or the method has no callers.
CONTROL_UNREACHABLE = "control-unreachable"
#: Dropped at a non-loop program point whose query history holds an
#: already-explored weaker query.
HISTORY_SUBSUMED = "history-subsumed"

KILL_REASONS = (
    INSTANCE_CONSTRAINT,
    SOLVER_UNSAT,
    LOOP_INVARIANT_DROP,
    WORKLIST_SUBSUMED,
    REFUTED_CACHE_HIT,
    CALLEE_SKIP_DROP,
    BUDGET_TIMEOUT,
    CONTROL_UNREACHABLE,
    HISTORY_SUBSUMED,
)

SPAWNED = "spawned"
KILLED = "killed"
WITNESSED = "witnessed"
NOTE = "note"


def classify_kill(fail_reason: Optional[str]) -> str:
    """Map a raw refutation string (``Query.fail_reason`` /
    ``TransferContext.count_refutation`` text) onto the typed taxonomy."""
    if not fail_reason:
        return SOLVER_UNSAT
    head = fail_reason.split(":", 1)[0].strip()
    if head == "control":
        return CONTROL_UNREACHABLE
    if head.startswith("pure constraints"):
        return SOLVER_UNSAT
    if head == "entry" or head == "entry binding unsat":
        if "parameter/argument" in fail_reason:
            return CALLEE_SKIP_DROP
        if "initial values" in fail_reason or "unsat" in fail_reason:
            return SOLVER_UNSAT
        return INSTANCE_CONSTRAINT
    # instance constraint / separation / kind mismatch / dispatch / narrow:
    # all are contradictions in the instance-constraint fragment.
    return INSTANCE_CONSTRAINT


class StateEvent:
    """One search-tree event. ``sid`` numbers states per search, starting
    at 1 (0 means "no state": the synthetic root / a non-journaled state)."""

    __slots__ = ("kind", "sid", "parent", "label", "reason", "detail")

    def __init__(
        self,
        kind: str,
        sid: int,
        parent: Optional[int] = None,
        label: Optional[int] = None,
        reason: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.sid = sid
        self.parent = parent
        self.label = label
        self.reason = reason
        self.detail = detail

    def to_row(self) -> list:
        return [self.kind, self.sid, self.parent, self.label, self.reason,
                self.detail]

    @classmethod
    def from_row(cls, row: list) -> "StateEvent":
        return cls(row[0], row[1], row[2], row[3], row[4], row[5])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateEvent({self.kind}, s{self.sid}, parent={self.parent},"
            f" label={self.label}, reason={self.reason!r})"
        )


class SearchJournal:
    """The event log of one refutation search (one ``refute_edge`` /
    ``refute_fact_at`` call). Single-writer: only the engine running the
    search appends; readers come after :meth:`close`.

    Events beyond ``max_events`` are counted (``dropped_events``) but not
    stored; :attr:`kill_counts` stays exact regardless, so attribution
    totals never lose kills to the retention cap.
    """

    __slots__ = ("description", "kind", "status", "events", "kill_counts",
                 "max_events", "dropped_events", "witness_sid", "_next_sid")

    def __init__(
        self, description: str, kind: str = "edge", max_events: int = 200_000
    ) -> None:
        self.description = description
        self.kind = kind
        self.status: Optional[str] = None
        self.events: list[StateEvent] = []
        self.kill_counts: dict[str, int] = {}
        self.max_events = max_events
        self.dropped_events = 0
        self.witness_sid: Optional[int] = None
        self._next_sid = 1

    # -- recording ----------------------------------------------------------

    def _add(self, event: StateEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped_events += 1

    def new_state(
        self, parent: int, label: Optional[int], detail: str = ""
    ) -> int:
        sid = self._next_sid
        self._next_sid += 1
        self._add(StateEvent(SPAWNED, sid, parent, label, None, detail))
        return sid

    def kill(
        self, sid: int, label: Optional[int], reason: str, detail: str = ""
    ) -> None:
        self.kill_counts[reason] = self.kill_counts.get(reason, 0) + 1
        self._add(StateEvent(KILLED, sid, None, label, reason, detail))

    def witness(self, sid: int, label: Optional[int]) -> None:
        self.witness_sid = sid
        self._add(StateEvent(WITNESSED, sid, None, label, None, ""))

    def note(
        self,
        sid: int,
        reason: str,
        detail: str = "",
        label: Optional[int] = None,
    ) -> None:
        self._add(StateEvent(NOTE, sid, None, label, reason, detail))

    def close(self, status: str) -> None:
        """Seal the journal with the search verdict and publish the kill
        rollup to the metrics registry (``executor.kill.<reason>``)."""
        self.status = status
        for reason, n in self.kill_counts.items():
            metrics.counter(f"executor.kill.{reason}").inc(n)

    # -- accessors ----------------------------------------------------------

    @property
    def states(self) -> int:
        return self._next_sid - 1

    @property
    def kills(self) -> int:
        return sum(self.kill_counts.values())

    def roots(self) -> list[StateEvent]:
        return [
            e for e in self.events if e.kind == SPAWNED and not e.parent
        ]

    def children(self) -> dict[int, list[StateEvent]]:
        out: dict[int, list[StateEvent]] = {}
        for e in self.events:
            if e.kind == SPAWNED and e.parent:
                out.setdefault(e.parent, []).append(e)
        return out

    def fates(self) -> dict[int, StateEvent]:
        """The killed/witnessed event per state id (leaves only)."""
        return {
            e.sid: e for e in self.events if e.kind in (KILLED, WITNESSED)
        }

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "kind": self.kind,
            "status": self.status,
            "states": self.states,
            "kill_counts": dict(self.kill_counts),
            "witness_sid": self.witness_sid,
            "dropped_events": self.dropped_events,
            "events": [e.to_row() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchJournal":
        sj = cls(data.get("description", ""), kind=data.get("kind", "edge"))
        sj.status = data.get("status")
        sj.kill_counts = dict(data.get("kill_counts", {}))
        sj.witness_sid = data.get("witness_sid")
        sj.dropped_events = data.get("dropped_events", 0)
        sj.events = [StateEvent.from_row(r) for r in data.get("events", [])]
        sj._next_sid = data.get("states", 0) + 1
        return sj


class RunJournal:
    """Every search journal of one run, in search-start order.

    Thread-safe at the granularity the engines need: :meth:`open_search`
    (and the merge/drain paths) synchronize on one lock; the events inside
    a :class:`SearchJournal` are only ever written by the engine that
    opened it.
    """

    def __init__(self, max_events_per_search: int = 200_000) -> None:
        self.max_events_per_search = max_events_per_search
        self._lock = threading.Lock()
        self._searches: list[SearchJournal] = []

    def open_search(self, description: str, kind: str = "edge") -> SearchJournal:
        sj = SearchJournal(
            description, kind=kind, max_events=self.max_events_per_search
        )
        with self._lock:
            self._searches.append(sj)
        return sj

    @property
    def searches(self) -> list[SearchJournal]:
        with self._lock:
            return list(self._searches)

    def searches_for(self, description: str) -> list[SearchJournal]:
        """Journals whose description matches exactly, else by substring."""
        all_searches = self.searches
        exact = [s for s in all_searches if s.description == description]
        if exact:
            return exact
        return [s for s in all_searches if description in s.description]

    def attribution(self) -> dict[str, int]:
        """Kill counts summed over every search — the run-level rollup that
        ``RunReport.attribution`` must equal."""
        out: dict[str, int] = {}
        for sj in self.searches:
            for reason, n in sj.kill_counts.items():
                out[reason] = out.get(reason, 0) + n
        return dict(sorted(out.items()))

    # -- worker-pool merge --------------------------------------------------

    def drain(self) -> list[dict]:
        """Serialize and clear: what a process-pool worker sends back after
        each job (only searches opened since the previous drain)."""
        with self._lock:
            done, self._searches = self._searches, []
        return [sj.to_dict() for sj in done]

    def absorb(self, payloads: Iterable[dict]) -> None:
        """Merge journals drained from a worker into this (parent) journal."""
        merged = [SearchJournal.from_dict(p) for p in payloads]
        with self._lock:
            self._searches.extend(merged)

    # -- export -------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [sj.to_dict() for sj in self.searches]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per line: a header, then one line per search."""
        searches = self.searches
        with open(path, "w") as fh:
            header = {
                "journal": "repro.obs.provenance",
                "schema_version": 1,
                "searches": len(searches),
                "attribution": self.attribution(),
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for sj in searches:
                fh.write(json.dumps(sj.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def read_jsonl(cls, path: str) -> "RunJournal":
        journal = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if "events" in data:
                    journal._searches.append(SearchJournal.from_dict(data))
        return journal


# ---------------------------------------------------------------------------
# The process-wide active journal (same pattern as trace.install/disable).
# ---------------------------------------------------------------------------

_active: Optional[RunJournal] = None
_tls = threading.local()


def install(journal: Optional[RunJournal] = None) -> RunJournal:
    """Make ``journal`` (or a fresh one) the process-wide active journal."""
    global _active
    journal = journal or RunJournal()
    _active = journal
    return journal


def disable() -> None:
    """Return to the no-journal default."""
    global _active
    _active = None


def get_journal() -> Optional[RunJournal]:
    """The active journal, or None when journaling is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def note_unsat(atoms: Iterable, cap: int = 6) -> None:
    """Solver hook: remember (per thread) the conjunction the decision
    procedure just found unsatisfiable, so the kill event for the state
    that asked can name the killing constraint. Only called when a journal
    is active and the verdict was UNSAT."""
    rendered = sorted(str(a) for a in atoms)
    if len(rendered) > cap:
        rendered = rendered[:cap] + [f"... +{len(rendered) - cap} more"]
    _tls.last_unsat = " ∧ ".join(rendered) if rendered else "(empty)"


def take_last_unsat() -> Optional[str]:
    """Pop the thread's last-unsat constraint rendering (or None)."""
    out = getattr(_tls, "last_unsat", None)
    _tls.last_unsat = None
    return out


# ---------------------------------------------------------------------------
# Exporters: Graphviz DOT and the human-readable certificate.
# ---------------------------------------------------------------------------

_DOT_KILL_COLORS = {
    INSTANCE_CONSTRAINT: "indianred1",
    SOLVER_UNSAT: "salmon",
    LOOP_INVARIANT_DROP: "goldenrod1",
    WORKLIST_SUBSUMED: "khaki",
    REFUTED_CACHE_HIT: "lightsteelblue",
    CALLEE_SKIP_DROP: "plum",
    BUDGET_TIMEOUT: "gray70",
    CONTROL_UNREACHABLE: "darkseagreen3",
    HISTORY_SUBSUMED: "wheat",
}


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(searches: list[SearchJournal], title: str = "search") -> str:
    """A Graphviz digraph of the search tree(s): one cluster per producer
    search, kill reasons (and colors) on the dead leaves, the witness leaf
    in green."""
    lines = [
        "digraph search {",
        "  rankdir=TB;",
        "  node [shape=box, fontsize=10, style=filled, fillcolor=white];",
        f'  label="{_dot_escape(title)}";',
    ]
    for i, sj in enumerate(searches):
        fates = sj.fates()
        lines.append(f"  subgraph cluster_{i} {{")
        status = sj.status or "?"
        lines.append(
            f'    label="{_dot_escape(sj.description)} [{status}]"; fontsize=11;'
        )
        for e in sj.events:
            if e.kind != SPAWNED:
                continue
            name = f"s{i}_{e.sid}"
            where = f"@L{e.label}" if e.label is not None else ""
            fate = fates.get(e.sid)
            if fate is not None and fate.kind == KILLED:
                label = f"s{e.sid} {where}\\n✕ {fate.reason}"
                if fate.detail:
                    label += f"\\n{_dot_escape(fate.detail[:60])}"
                color = _DOT_KILL_COLORS.get(fate.reason or "", "indianred1")
                lines.append(
                    f'    {name} [label="{label}", fillcolor={color}];'
                )
            elif fate is not None and fate.kind == WITNESSED:
                lines.append(
                    f'    {name} [label="s{e.sid} {where}\\n✓ witnessed",'
                    f" fillcolor=palegreen];"
                )
            else:
                lines.append(f'    {name} [label="s{e.sid} {where}"];')
            if e.parent:
                lines.append(f"    s{i}_{e.parent} -> {name};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _render_tree(sj: SearchJournal, max_nodes: int = 400) -> list[str]:
    """Indented text rendering of one search tree. Linear spawn chains
    (Seq unfoldings) are collapsed so the certificate shows decisions, not
    scheduler steps."""
    children = sj.children()
    fates = sj.fates()
    spawned = {e.sid: e for e in sj.events if e.kind == SPAWNED}
    lines: list[str] = []
    emitted = 0

    def describe(sid: int) -> str:
        e = spawned[sid]
        where = f" @L{e.label}" if e.label is not None else ""
        extra = f" ({e.detail})" if e.detail else ""
        return f"s{sid}{where}{extra}"

    def fate_line(sid: int) -> Optional[str]:
        fate = fates.get(sid)
        if fate is None:
            return None
        if fate.kind == WITNESSED:
            return "✓ WITNESSED: a concrete path program survives to the entry"
        detail = f" — {fate.detail}" if fate.detail else ""
        return f"✕ killed: {fate.reason}{detail}"

    def walk(sid: int, prefix: str, tail: bool) -> None:
        nonlocal emitted
        if emitted >= max_nodes:
            return
        # Collapse single-child chains without a fate of their own.
        chain = [sid]
        while (
            sid not in fates
            and len(children.get(sid, [])) == 1
        ):
            sid = children[sid][0].sid
            chain.append(sid)
        emitted += 1
        connector = "└─ " if tail else "├─ "
        if not prefix and not lines:
            connector = ""
        head = describe(chain[0])
        if len(chain) > 2:
            head += f" ⋯ {describe(chain[-1])}"
        elif len(chain) == 2:
            head += f" → {describe(chain[-1])}"
        line = prefix + connector + head
        fate = fate_line(sid)
        if fate is not None and not children.get(sid):
            line += "   " + fate
        lines.append(line)
        kids = children.get(sid, [])
        if fate is not None and kids:
            lines.append(prefix + ("   " if tail or not prefix else "│  ") + fate)
        child_prefix = prefix + ("   " if tail or not prefix else "│  ")
        for i, kid in enumerate(kids):
            walk(kid.sid, child_prefix, i == len(kids) - 1)

    roots = sj.roots()
    for i, root in enumerate(roots):
        walk(root.sid, "", i == len(roots) - 1)
    if emitted >= max_nodes:
        lines.append(f"... (tree truncated at {max_nodes} states)")
    if sj.dropped_events:
        lines.append(
            f"... ({sj.dropped_events} events beyond the retention cap;"
            " kill counts stay exact)"
        )
    return lines


def render_certificate(
    description: str,
    journal: RunJournal,
    status: Optional[str] = None,
    max_nodes: int = 400,
) -> str:
    """The human-readable refutation certificate for one edge/fact: every
    producer search tree, the typed kill reason (and constraint) on every
    dead branch, and the mechanism rollup. For witnessed edges the tree
    shows the surviving branch; callers can append the source-anchored
    witness narrative from :mod:`repro.symbolic.witness`."""
    searches = journal.searches_for(description)
    if not searches:
        return (
            f"no journal recorded for {description!r}\n"
            "(journals are written by runs with --journal /"
            " provenance.install(); cached verdicts reuse the original"
            " search's journal entry)"
        )
    verdict = status or searches[-1].status or "?"
    kills: dict[str, int] = {}
    for sj in searches:
        for reason, n in sj.kill_counts.items():
            kills[reason] = kills.get(reason, 0) + n
    title = "refutation certificate" if verdict == "refuted" else "search provenance"
    lines = [
        f"{title} — {description}",
        f"verdict: {verdict}",
    ]
    if kills:
        rollup = ", ".join(
            f"{reason} ×{n}" for reason, n in sorted(kills.items())
        )
        lines.append(f"dead branches: {sum(kills.values())} ({rollup})")
    else:
        lines.append("dead branches: none")
    for i, sj in enumerate(searches, 1):
        lines.append("")
        header = f"producer search {i} of {len(searches)}"
        lines.append(
            f"{header} — {sj.states} state(s), {sj.kills} kill(s)"
            f" [{sj.status or '?'}]"
        )
        lines.extend("  " + line for line in _render_tree(sj, max_nodes))
        notes = [e for e in sj.events if e.kind == NOTE]
        for e in notes[:8]:
            where = f" @L{e.label}" if e.label is not None else ""
            lines.append(f"  note{where}: {e.reason} — {e.detail}")
    if verdict == "refuted":
        lines.append("")
        lines.append(
            "every producer's every path program is refuted: the edge"
            " cannot be produced by any concrete execution."
        )
    return "\n".join(lines)
