"""Evaluation-table renderers (Table 1 and Table 2 of the paper)."""

from .tables import (
    Table1Row,
    Table2Row,
    render_table1,
    render_table2,
    table1_row,
    table2_row,
)

__all__ = [
    "Table1Row",
    "Table2Row",
    "render_table1",
    "render_table2",
    "table1_row",
    "table2_row",
]
