"""Renderers for the paper's evaluation tables.

``table1_row`` runs the full pipeline (points-to → alarms → refutation)
for one app/configuration and assembles the columns of Table 1;
``render_table1`` prints them in the paper's layout. ``table2_row`` runs
the mixed vs fully-symbolic representation comparison of Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..android.leaks import LeakChecker, LeakReport
from ..bench.apps import BenchApp
from ..bench.workloads import concrete_leak_pairs
from ..symbolic import Representation, SearchConfig


@dataclass
class Table1Row:
    app: str
    annotated: bool
    sloc: int
    cg_commands: int  # stand-in for the paper's CGB (bytecodes in call graph)
    alarms: int
    refuted_alarms: int
    true_alarms: int
    false_alarms: int
    fields: int
    refuted_fields: int
    edges_refuted: int
    edges_witnessed: int
    edge_timeouts: int
    seconds: float
    unsound_refutations: int  # must always be 0

    @property
    def ann_label(self) -> str:
        return "Y" if self.annotated else "N"

    def pct(self, value: int) -> int:
        return round(100 * value / self.alarms) if self.alarms else 0


def table1_row(
    app: BenchApp,
    annotated: bool,
    config: Optional[SearchConfig] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
    on_event: Optional[Callable[[object], None]] = None,
) -> tuple[Table1Row, LeakReport]:
    """One Table 1 cell. ``jobs``/``deadline`` select the parallel driver
    and the per-edge wall-clock limit; ``on_event`` receives the live
    progress stream (see :mod:`repro.engine.events`). The paper-faithful
    deterministic configuration is the default (``jobs=1``, no deadline);
    the resulting :class:`LeakReport` carries the structured
    ``run_report`` either way."""
    truth_pairs = concrete_leak_pairs(app)
    checker = LeakChecker(
        app.source,
        app.name,
        annotated=annotated,
        config=config,
        jobs=jobs,
        deadline=deadline,
        on_event=on_event,
    )
    report = checker.run()

    def is_true(alarm) -> bool:
        key = ((alarm.root.class_name, alarm.root.field), alarm.target.site)
        return key in truth_pairs

    true_alarms = sum(1 for a in report.alarms if is_true(a))
    unsound = sum(1 for a in report.alarms if a.refuted and is_true(a))
    row = Table1Row(
        app=app.name,
        annotated=annotated,
        sloc=len([l for l in app.source.splitlines() if l.strip()]),
        cg_commands=report.call_graph_commands,
        alarms=report.num_alarms,
        refuted_alarms=report.refuted_alarms,
        true_alarms=true_alarms,
        false_alarms=report.num_alarms - report.refuted_alarms - true_alarms,
        fields=report.fields,
        refuted_fields=report.refuted_fields,
        edges_refuted=report.edges_refuted,
        edges_witnessed=report.edges_witnessed,
        edge_timeouts=report.edge_timeouts,
        seconds=report.seconds,
        unsound_refutations=unsound,
    )
    return row, report


_T1_HEADER = (
    f"{'Benchmark':14s} {'SLOC':>5s} {'CGC':>6s} {'Ann?':>4s} {'Alrms':>5s}"
    f" {'RefA(%)':>9s} {'TruA(%)':>9s} {'FalA(%)':>9s} {'Flds':>4s}"
    f" {'RefFlds':>7s} {'RefEdg':>6s} {'WitEdg':>6s} {'TO':>3s} {'T(s)':>7s}"
)


def render_table1(rows: list[Table1Row]) -> str:
    lines = [
        "Table 1: Filtering effectiveness and computational effort",
        _T1_HEADER,
        "-" * len(_T1_HEADER),
    ]
    for row in rows:
        lines.append(
            f"{row.app:14s} {row.sloc:5d} {row.cg_commands:6d} {row.ann_label:>4s}"
            f" {row.alarms:5d}"
            f" {row.refuted_alarms:4d}({row.pct(row.refuted_alarms):3d})"
            f" {row.true_alarms:4d}({row.pct(row.true_alarms):3d})"
            f" {row.false_alarms:4d}({row.pct(row.false_alarms):3d})"
            f" {row.fields:4d} {row.refuted_fields:7d} {row.edges_refuted:6d}"
            f" {row.edges_witnessed:6d} {row.edge_timeouts:3d} {row.seconds:7.2f}"
        )
    totals = _totals(rows)
    lines.append("-" * len(_T1_HEADER))
    for ann in ("N", "Y"):
        sub = [r for r in rows if r.ann_label == ann]
        if not sub:
            continue
        t = _totals(sub)
        lines.append(
            f"{'Total':14s} {t.sloc:5d} {t.cg_commands:6d} {ann:>4s} {t.alarms:5d}"
            f" {t.refuted_alarms:4d}({t.pct(t.refuted_alarms):3d})"
            f" {t.true_alarms:4d}({t.pct(t.true_alarms):3d})"
            f" {t.false_alarms:4d}({t.pct(t.false_alarms):3d})"
            f" {t.fields:4d} {t.refuted_fields:7d} {t.edges_refuted:6d}"
            f" {t.edges_witnessed:6d} {t.edge_timeouts:3d} {t.seconds:7.2f}"
        )
    del totals
    return "\n".join(lines)


def _totals(rows: list[Table1Row]) -> Table1Row:
    return Table1Row(
        app="Total",
        annotated=rows[0].annotated if rows else False,
        sloc=sum(r.sloc for r in rows),
        cg_commands=sum(r.cg_commands for r in rows),
        alarms=sum(r.alarms for r in rows),
        refuted_alarms=sum(r.refuted_alarms for r in rows),
        true_alarms=sum(r.true_alarms for r in rows),
        false_alarms=sum(r.false_alarms for r in rows),
        fields=sum(r.fields for r in rows),
        refuted_fields=sum(r.refuted_fields for r in rows),
        edges_refuted=sum(r.edges_refuted for r in rows),
        edges_witnessed=sum(r.edges_witnessed for r in rows),
        edge_timeouts=sum(r.edge_timeouts for r in rows),
        seconds=sum(r.seconds for r in rows),
        unsound_refutations=sum(r.unsound_refutations for r in rows),
    )


# ---------------------------------------------------------------------------
# Table 2: fully-symbolic vs mixed representation
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    app: str
    annotated: bool
    mixed_seconds: float
    symbolic_seconds: float
    mixed_timeouts: int
    symbolic_timeouts: int
    mixed_refuted_alarms: int
    symbolic_refuted_alarms: int

    @property
    def slowdown(self) -> float:
        if self.mixed_seconds <= 0:
            return 1.0
        return self.symbolic_seconds / self.mixed_seconds

    @property
    def timeout_delta(self) -> int:
        return self.symbolic_timeouts - self.mixed_timeouts


def table2_row(
    app: BenchApp,
    annotated: bool = False,
    config: Optional[SearchConfig] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
    on_event: Optional[Callable[[object], None]] = None,
) -> Table2Row:
    base = config or SearchConfig()
    mixed_cfg = base.copy(representation=Representation.MIXED)
    symbolic_cfg = base.copy(representation=Representation.FULLY_SYMBOLIC)
    mixed = LeakChecker(
        app.source, app.name, annotated, mixed_cfg,
        jobs=jobs, deadline=deadline, on_event=on_event,
    ).run()
    symbolic = LeakChecker(
        app.source, app.name, annotated, symbolic_cfg,
        jobs=jobs, deadline=deadline, on_event=on_event,
    ).run()
    return Table2Row(
        app=app.name,
        annotated=annotated,
        mixed_seconds=mixed.seconds,
        symbolic_seconds=symbolic.seconds,
        mixed_timeouts=mixed.edge_timeouts,
        symbolic_timeouts=symbolic.edge_timeouts,
        mixed_refuted_alarms=mixed.refuted_alarms,
        symbolic_refuted_alarms=symbolic.refuted_alarms,
    )


def render_table2(rows: list[Table2Row]) -> str:
    header = (
        f"{'Benchmark':14s} {'Ann?':>4s} {'T-mixed':>8s} {'T-symb':>8s}"
        f" {'slowdown':>9s} {'TO-mixed':>8s} {'TO-symb':>8s} {'TO(Δ)':>6s}"
        f" {'RefA-mix':>8s} {'RefA-sym':>8s}"
    )
    lines = [
        "Table 2: fully-symbolic representation vs mixed symbolic-explicit",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.app:14s} {'Y' if row.annotated else 'N':>4s}"
            f" {row.mixed_seconds:8.2f} {row.symbolic_seconds:8.2f}"
            f" {row.slowdown:8.1f}X {row.mixed_timeouts:8d}"
            f" {row.symbolic_timeouts:8d} {row.timeout_delta:+6d}"
            f" {row.mixed_refuted_alarms:8d} {row.symbolic_refuted_alarms:8d}"
        )
    return "\n".join(lines)
