"""Relevance partitioning of pure-constraint queries.

A path state's atom conjunction almost always decomposes into small
*independent* subproblems: the reference (dis)equalities about one heap
cell share no variables with the arithmetic chain of a loop counter, and
neither shares variables with the separation disequalities of an
unrelated field. Deciding the conjunction monolithically re-pays for
every fragment whenever *any* fragment changes; deciding it per connected
component (over shared variables) lets verdicts be cached at the
granularity at which they actually recur.

Soundness is the easy direction of variable-disjoint conjunction:

* a conjunction of variable-disjoint systems is satisfiable **iff** every
  system is satisfiable on its own (models compose pointwise, and any
  model of the whole restricts to a model of each part);
* UNSAT in any component therefore refutes the whole query, and SAT in
  every component certifies the whole query;
* ``nonnull`` facts slice cleanly: a non-null variable can only be forced
  equal to ``NULL`` through a chain of reference equalities, and every
  atom of such a chain lives in that variable's component — a non-null
  variable mentioned by *no* atom can never be contradicted;
* Fourier–Motzkin give-ups stay per-component and conservative (SAT), so
  refutation soundness (Theorem 1) is preserved exactly as in the
  monolithic procedure.

Three pieces live here:

* :func:`syntactic_unsat` — an O(n) screen for atoms contradictory on
  their own (constant-infeasible linear atoms, ``x != x``, ``v == NULL``
  for a known-non-null ``v``) that skips union-find and FM entirely;
* :func:`split_components` — union-find over the atoms' variable sets,
  producing per-component atom lists plus cheap *nominal* keys (the
  component's own atoms and sliced non-null facts, untouched), while
  :func:`canonical_key` derives — lazily, on the cache-miss path only —
  the plain-data *signature* with variables replaced by first-occurrence
  indices. Satisfiability is invariant under injective renaming, so the
  signature fully determines the verdict — and it is what makes the key
  space collapse: the executor mints globally fresh symbolic variables
  per path and per search, so nominal keys never recur across searches,
  while signatures recur for every structurally identical fragment
  across sibling paths and across searches;
* :class:`SolverContext` — the per-path-state verdict map carried on
  :class:`~repro.symbolic.query.Query`. A child state created by one
  transfer shares its parent's context; components untouched by the new
  atoms have unchanged keys and are answered from the context without
  even a memo-table lookup. Because a component key fully determines the
  verdict, the map holds only pure facts — sharing it *by reference*
  between siblings is the degenerate (and cheapest) safe form of
  copy-on-write.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .terms import Atom, LinAtom, Var, _NullConst

#: A component's *nominal* identity: ``(frozenset of atoms, frozenset of
#: relevant non-null vars)`` in the caller's own variable names. Cheap to
#: build (no new terms) and exact within one search lineage, where copies
#: share symbolic variables — the :class:`SolverContext` key.
ComponentKey = tuple

#: A component's *canonical* identity: a plain-data signature of the
#: atoms with variables replaced by first-occurrence indices — an
#: injective renaming, under which satisfiability is invariant. This is
#: the cross-lineage memo key: the executor mints globally fresh symbolic
#: variables per path and per search, so nominal keys never recur across
#: searches, while signatures recur for every structurally identical
#: fragment. Deliberately NOT built from term objects: signatures are
#: nested tuples of ints and strings, so they hash and compare at C
#: speed and — crucially — never touch the hash-cons intern table
#: (term-valued canonical keys flood it with renamed atoms, and its
#: overflow clears destroy the identity fast path for *every* atom
#: comparison in the process).
CanonicalKey = tuple

#: Signature slot for a NULL operand (variables use indices ``0, 1, ...``;
#: ``-2`` can never appear in a slot, so the CPython ``hash(-1) ==
#: hash(-2)`` aliasing below cannot bite here).
_NULL_SLOT = -1


def _zig(n: int) -> int:
    """Zigzag-encode an integer to a non-negative one.

    CPython reserves ``-1`` as the C-level hash error sentinel, so
    ``hash(-1) == hash(-2)`` — and constants/coefficients of ``-1`` and
    ``-2`` are ubiquitous in backwards increment chains (``x = x + 1`` /
    ``x = x + 2`` become equation atoms with those constants). Left raw,
    whole families of signatures differing only in such a slot share one
    hash and dict probes degenerate into long equality chains. Small
    non-negative ints hash to themselves, all distinct."""
    return n + n if n >= 0 else -n - n - 1

#: Context size cap; reaching it clears the map (cheap, rare — only very
#: long-lived lineages accumulate this many distinct components).
CONTEXT_CAP = 2048


def syntactic_unsat(
    atoms: Iterable[Atom], nonnull: frozenset
) -> Optional[Atom]:
    """Return an atom that is contradictory *on its own* (or against a
    ``nonnull`` fact), or ``None`` when the screen finds nothing.

    Catches the ground refutations the backwards executor produces
    constantly — a guard that folded to ``false``, ``v == NULL`` for an
    instance that must be a real object, ``x != x`` after unification —
    without building a union-find or running any elimination.
    """
    for atom in atoms:
        if isinstance(atom, LinAtom):
            expr = atom.expr
            if expr.is_constant:
                k = expr.const
                if atom.op == "<=":
                    if k > 0:
                        return atom
                elif atom.op == "==":
                    if k != 0:
                        return atom
                else:  # "!="
                    if k == 0:
                        return atom
        else:  # RefAtom
            if atom.equal:
                if isinstance(atom.left, _NullConst):
                    if atom.right in nonnull:
                        return atom
                elif isinstance(atom.right, _NullConst):
                    if atom.left in nonnull:
                        return atom
            elif atom.left == atom.right:
                return atom  # x != x (also NULL != NULL)
    return None


def split_components(
    atoms: list, nonnull: frozenset
) -> list[tuple[list, ComponentKey]]:
    """Partition ``atoms`` into connected components over shared
    variables, slicing ``nonnull`` per component.

    Returns ``(component atoms, nominal component key)`` pairs; the atom
    lists preserve the input order and everything stays in the caller's
    own variable names — renaming costs term interning, so the canonical
    form (:func:`canonical_key`) is derived lazily, only when the cheap
    nominal tiers miss. Ground atoms (no variables) must have been
    screened by :func:`syntactic_unsat` first: whatever survives the
    screen is a tautology and is dropped here.
    """
    parent: dict = {}

    def find(v: Var) -> Var:
        root = v
        while True:
            up = parent.get(root, root)
            if up == root:
                break
            root = up
        while v != root:  # path compression
            parent[v], v = root, parent[v]
        return root

    atom_vars: list[tuple[Atom, frozenset]] = []
    for atom in atoms:
        avars = atom.vars()
        atom_vars.append((atom, avars))
        if not avars:
            continue
        it = iter(avars)
        first = find(next(it))
        for v in it:
            parent[find(v)] = first

    groups: dict = {}  # root -> (atom list, var set); insertion-ordered
    for atom, avars in atom_vars:
        if not avars:
            continue  # ground tautology (screened by syntactic_unsat)
        root = find(next(iter(avars)))
        entry = groups.get(root)
        if entry is None:
            groups[root] = entry = ([], set())
        entry[0].append(atom)
        entry[1].update(avars)

    out: list[tuple[list, ComponentKey]] = []
    for catoms, cvars in groups.values():
        sliced = frozenset(v for v in nonnull if v in cvars)
        out.append((catoms, (frozenset(catoms), sliced)))
    return out


def canonical_key(catoms: list, nonnull: frozenset) -> CanonicalKey:
    """The plain-data signature of one component: ``catoms`` (in order)
    with variables replaced by first-occurrence indices, plus the sliced
    ``nonnull`` facts under the same replacement.

    Structurally identical fragments over different fresh variables share
    the signature, and a cached verdict transfers soundly: the index
    replacement is injective, and satisfiability is invariant under
    injective renaming, so the signature fully determines the verdict."""
    mapping: dict = {}
    sig = []
    for atom in catoms:
        if isinstance(atom, LinAtom):
            row = [atom.op, _zig(atom.expr.const)]
            for v, c in atom.expr.coeffs:
                i = mapping.get(v)
                if i is None:
                    i = mapping[v] = len(mapping)
                row.append((i, _zig(c)))
            sig.append(tuple(row))
        else:  # RefAtom
            row = ["=" if atom.equal else "!"]
            for side in (atom.left, atom.right):
                if isinstance(side, _NullConst):
                    row.append(_NULL_SLOT)
                else:
                    i = mapping.get(side)
                    if i is None:
                        i = mapping[side] = len(mapping)
                    row.append(i)
            sig.append(tuple(row))
    return (
        tuple(sig),
        frozenset(mapping[v] for v in nonnull if v in mapping),
    )


class SolverContext:
    """Per-path-state component verdict map (parent-reuse solver context).

    Holds ``component key -> verdict`` facts accumulated along one search
    lineage. Verdicts are pure functions of their keys, so the map is
    append-only-correct: it is shared by reference between a query and
    all its copies (parents, children, and siblings), and a stale entry
    cannot exist. The map is cleared wholesale at :data:`CONTEXT_CAP`
    entries, which only costs future re-derivation, never correctness.
    """

    __slots__ = ("verdicts",)

    def __init__(self) -> None:
        self.verdicts: dict = {}

    def get(self, key: ComponentKey) -> Optional[bool]:
        return self.verdicts.get(key)

    def remember(self, key: ComponentKey, verdict: bool) -> None:
        if len(self.verdicts) >= CONTEXT_CAP:
            self.verdicts.clear()
        self.verdicts[key] = verdict

    def __len__(self) -> int:
        return len(self.verdicts)
