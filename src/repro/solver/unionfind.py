"""A small union-find with path compression, keyed by hashable objects."""

from __future__ import annotations

from typing import Hashable, Iterator


class UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent.get(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the classes of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb
        return rb

    def same(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def items(self) -> Iterator[Hashable]:
        return iter(self._parent)

    def copy(self) -> "UnionFind":
        fresh = UnionFind()
        fresh._parent = dict(self._parent)
        return fresh
