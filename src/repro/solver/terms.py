"""Term language of the pure-constraint solver.

The witness-refutation analysis emits only conjunctions of:

* linear integer atoms  ``Σ cᵢ·xᵢ + k  (≤ | = | ≠)  0``  over *data*
  symbolic variables (booleans are encoded as 0/1 integers), and
* reference (dis)equalities between *instance* symbolic variables and the
  distinguished ``NULL`` constant.

The paper discharges these with Z3; we decide the same fragment with a
from-scratch procedure (:mod:`repro.solver.core`). Variables are arbitrary
hashable objects so the solver does not depend on the symbolic layer.

Terms are **hash-consed**: every :class:`LinExpr`, :class:`LinAtom`, and
:class:`RefAtom` is canonicalized through a process-wide intern table at
construction, so structurally equal terms are usually the *same* object.
Hashes are precomputed once, equality takes the identity fast path, and
atom sets (the solver-memoization keys, query histories, entailment
checks) dedupe in O(1) per element. The table is capped — when full it is
cleared, which only costs future re-interning, never correctness: equality
remains structural between non-shared instances (e.g. after crossing a
process-pool boundary).
"""

from __future__ import annotations

from math import gcd
from typing import Hashable, Iterable, Mapping, Union

Var = Hashable

#: Intern-table size cap; reaching it clears the table (cheap, deterministic).
INTERN_CAP = 1 << 16

_TABLE: dict = {}
# Plain-int tallies (no lock: the GIL makes occasional lost increments the
# only race, acceptable for statistics); surfaced as gauges by repro.perf.
_HITS = 0
_MISSES = 0


def intern_stats() -> dict:
    """Current intern-table statistics (hits/misses/live entries)."""
    return {"hits": _HITS, "misses": _MISSES, "size": len(_TABLE)}


def _canon(key: tuple, build) -> object:
    """Return the canonical object for ``key``, building it on first use."""
    global _HITS, _MISSES
    obj = _TABLE.get(key)
    if obj is not None:
        _HITS += 1
        return obj
    _MISSES += 1
    obj = build()
    if len(_TABLE) >= INTERN_CAP:
        _TABLE.clear()
    _TABLE[key] = obj
    return obj


class _NullConst:
    """The distinguished null reference constant."""

    _instance = None

    def __new__(cls) -> "_NullConst":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"


NULL = _NullConst()


class LinExpr:
    """Σ cᵢ·xᵢ + k with integer coefficients, in canonical form (no zero
    coefficients; terms sorted by repr for deterministic hashing).

    Immutable, hash-consed, ``__slots__``-backed: construct via
    :meth:`of` / :meth:`var` / :meth:`constant` or positionally with an
    already-canonical coefficient tuple."""

    __slots__ = ("coeffs", "const", "_hash")

    def __new__(cls, coeffs: tuple = (), const: int = 0) -> "LinExpr":
        coeffs = tuple(coeffs)
        key = ("le", coeffs, const)

        def build() -> "LinExpr":
            self = object.__new__(cls)
            object.__setattr__(self, "coeffs", coeffs)
            object.__setattr__(self, "const", const)
            object.__setattr__(self, "_hash", hash(key))
            return self

        return _canon(key, build)  # type: ignore[return-value]

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("LinExpr is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinExpr):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.const == other.const
            and self.coeffs == other.coeffs
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __reduce__(self):
        # Re-intern on unpickle (process-pool crossings).
        return (LinExpr, (self.coeffs, self.const))

    def __repr__(self) -> str:
        return f"LinExpr(coeffs={self.coeffs!r}, const={self.const!r})"

    @staticmethod
    def of(terms: Mapping[Var, int], const: int = 0) -> "LinExpr":
        clean = tuple(
            sorted(
                ((v, c) for v, c in terms.items() if c != 0),
                key=lambda item: repr(item[0]),
            )
        )
        return LinExpr(clean, const)

    @staticmethod
    def var(v: Var) -> "LinExpr":
        return LinExpr.of({v: 1})

    @staticmethod
    def constant(k: int) -> "LinExpr":
        return LinExpr((), k)

    def as_dict(self) -> dict[Var, int]:
        return dict(self.coeffs)

    def add(self, other: "LinExpr") -> "LinExpr":
        terms = self.as_dict()
        for v, c in other.coeffs:
            terms[v] = terms.get(v, 0) + c
        return LinExpr.of(terms, self.const + other.const)

    def sub(self, other: "LinExpr") -> "LinExpr":
        return self.add(other.scale(-1))

    def scale(self, factor: int) -> "LinExpr":
        return LinExpr.of({v: c * factor for v, c in self.coeffs}, self.const * factor)

    def rename(self, mapping: Mapping[Var, Var]) -> "LinExpr":
        terms: dict[Var, int] = {}
        for v, c in self.coeffs:
            v2 = mapping.get(v, v)
            terms[v2] = terms.get(v2, 0) + c
        return LinExpr.of(terms, self.const)

    def vars(self) -> frozenset[Var]:
        return frozenset(v for v, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __str__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            if c == 1:
                parts.append(f"{v}")
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}*{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


class LinAtom:
    """``expr op 0`` with op ∈ {"<=", "==", "!="} over the integers.

    Strict inequalities are normalized away at construction (``a < b`` over
    the integers is ``a - b + 1 ≤ 0``). Immutable and hash-consed like
    :class:`LinExpr`."""

    __slots__ = ("op", "expr", "_hash")

    def __new__(cls, op: str, expr: LinExpr) -> "LinAtom":
        if op not in ("<=", "==", "!="):
            raise ValueError(f"bad linear op {op!r}")
        key = ("la", op, expr)

        def build() -> "LinAtom":
            self = object.__new__(cls)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "expr", expr)
            object.__setattr__(self, "_hash", hash(key))
            return self

        return _canon(key, build)  # type: ignore[return-value]

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("LinAtom is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinAtom):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.expr == other.expr
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __reduce__(self):
        return (LinAtom, (self.op, self.expr))

    def __repr__(self) -> str:
        return f"LinAtom(op={self.op!r}, expr={self.expr!r})"

    def rename(self, mapping: Mapping[Var, Var]) -> "LinAtom":
        return LinAtom(self.op, self.expr.rename(mapping))

    def vars(self) -> frozenset[Var]:
        return self.expr.vars()

    def __str__(self) -> str:
        return f"{self.expr} {self.op} 0"


class RefAtom:
    """Reference (dis)equality between two instances (or NULL).

    Immutable and hash-consed like :class:`LinExpr`."""

    __slots__ = ("equal", "left", "right", "_hash")

    def __new__(
        cls, equal: bool, left: Union[Var, _NullConst], right: Union[Var, _NullConst]
    ) -> "RefAtom":
        key = ("ra", equal, left, right)

        def build() -> "RefAtom":
            self = object.__new__(cls)
            object.__setattr__(self, "equal", equal)
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
            object.__setattr__(self, "_hash", hash(key))
            return self

        return _canon(key, build)  # type: ignore[return-value]

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("RefAtom is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RefAtom):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.equal == other.equal
            and self.left == other.left
            and self.right == other.right
        )

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __reduce__(self):
        return (RefAtom, (self.equal, self.left, self.right))

    def __repr__(self) -> str:
        return (
            f"RefAtom(equal={self.equal!r}, left={self.left!r},"
            f" right={self.right!r})"
        )

    def rename(self, mapping: Mapping[Var, Var]) -> "RefAtom":
        left = mapping.get(self.left, self.left)
        right = mapping.get(self.right, self.right)
        return RefAtom(self.equal, left, right)

    def normalized(self) -> "RefAtom":
        a, b = self.left, self.right
        if repr(a) > repr(b):
            a, b = b, a
        return RefAtom(self.equal, a, b)

    def vars(self) -> frozenset[Var]:
        out = set()
        for side in (self.left, self.right):
            if not isinstance(side, _NullConst):
                out.add(side)
        return frozenset(out)

    def __str__(self) -> str:
        op = "==" if self.equal else "!="
        return f"{self.left} {op} {self.right}"


Atom = Union[LinAtom, RefAtom]


# -- convenience constructors used by the symbolic transfer functions ----------


def le(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("<=", lhs.sub(rhs))


def lt(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("<=", lhs.sub(rhs).add(LinExpr.constant(1)))


def eq(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("==", lhs.sub(rhs))


def ne(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("!=", lhs.sub(rhs))


def ref_eq(a: Union[Var, _NullConst], b: Union[Var, _NullConst]) -> RefAtom:
    return RefAtom(True, a, b).normalized()


def ref_ne(a: Union[Var, _NullConst], b: Union[Var, _NullConst]) -> RefAtom:
    return RefAtom(False, a, b).normalized()


def tighten(expr: LinExpr) -> LinExpr:
    """Integer tightening: divide through by the gcd of the coefficients,
    rounding the constant of a ≤-atom toward the feasible side."""
    if not expr.coeffs:
        return expr
    g = 0
    for _, c in expr.coeffs:
        g = gcd(g, abs(c))
    if g <= 1:
        return expr
    new_coeffs = {v: c // g for v, c in expr.coeffs}
    # Σ c'x ≤ -k/g  and the LHS is an integer, so Σ c'x ≤ floor(-k/g).
    bound = (-expr.const) // g
    return LinExpr.of(new_coeffs, -bound)
