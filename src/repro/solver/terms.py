"""Term language of the pure-constraint solver.

The witness-refutation analysis emits only conjunctions of:

* linear integer atoms  ``Σ cᵢ·xᵢ + k  (≤ | = | ≠)  0``  over *data*
  symbolic variables (booleans are encoded as 0/1 integers), and
* reference (dis)equalities between *instance* symbolic variables and the
  distinguished ``NULL`` constant.

The paper discharges these with Z3; we decide the same fragment with a
from-scratch procedure (:mod:`repro.solver.core`). Variables are arbitrary
hashable objects so the solver does not depend on the symbolic layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Hashable, Iterable, Mapping, Union

Var = Hashable


class _NullConst:
    """The distinguished null reference constant."""

    _instance = None

    def __new__(cls) -> "_NullConst":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"


NULL = _NullConst()


@dataclass(frozen=True)
class LinExpr:
    """Σ cᵢ·xᵢ + k with integer coefficients, in canonical form (no zero
    coefficients; terms sorted by repr for deterministic hashing)."""

    coeffs: tuple[tuple[Var, int], ...]
    const: int = 0

    @staticmethod
    def of(terms: Mapping[Var, int], const: int = 0) -> "LinExpr":
        clean = tuple(
            sorted(
                ((v, c) for v, c in terms.items() if c != 0),
                key=lambda item: repr(item[0]),
            )
        )
        return LinExpr(clean, const)

    @staticmethod
    def var(v: Var) -> "LinExpr":
        return LinExpr.of({v: 1})

    @staticmethod
    def constant(k: int) -> "LinExpr":
        return LinExpr((), k)

    def as_dict(self) -> dict[Var, int]:
        return dict(self.coeffs)

    def add(self, other: "LinExpr") -> "LinExpr":
        terms = self.as_dict()
        for v, c in other.coeffs:
            terms[v] = terms.get(v, 0) + c
        return LinExpr.of(terms, self.const + other.const)

    def sub(self, other: "LinExpr") -> "LinExpr":
        return self.add(other.scale(-1))

    def scale(self, factor: int) -> "LinExpr":
        return LinExpr.of({v: c * factor for v, c in self.coeffs}, self.const * factor)

    def rename(self, mapping: Mapping[Var, Var]) -> "LinExpr":
        terms: dict[Var, int] = {}
        for v, c in self.coeffs:
            v2 = mapping.get(v, v)
            terms[v2] = terms.get(v2, 0) + c
        return LinExpr.of(terms, self.const)

    def vars(self) -> frozenset[Var]:
        return frozenset(v for v, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __str__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            if c == 1:
                parts.append(f"{v}")
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}*{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class LinAtom:
    """``expr op 0`` with op ∈ {"<=", "==", "!="} over the integers.

    Strict inequalities are normalized away at construction (``a < b`` over
    the integers is ``a - b + 1 ≤ 0``).
    """

    op: str
    expr: LinExpr

    def __post_init__(self) -> None:
        if self.op not in ("<=", "==", "!="):
            raise ValueError(f"bad linear op {self.op!r}")

    def rename(self, mapping: Mapping[Var, Var]) -> "LinAtom":
        return LinAtom(self.op, self.expr.rename(mapping))

    def vars(self) -> frozenset[Var]:
        return self.expr.vars()

    def __str__(self) -> str:
        return f"{self.expr} {self.op} 0"


@dataclass(frozen=True)
class RefAtom:
    """Reference (dis)equality between two instances (or NULL)."""

    equal: bool
    left: Union[Var, _NullConst]
    right: Union[Var, _NullConst]

    def rename(self, mapping: Mapping[Var, Var]) -> "RefAtom":
        left = mapping.get(self.left, self.left)
        right = mapping.get(self.right, self.right)
        return RefAtom(self.equal, left, right)

    def normalized(self) -> "RefAtom":
        a, b = self.left, self.right
        if repr(a) > repr(b):
            a, b = b, a
        return RefAtom(self.equal, a, b)

    def vars(self) -> frozenset[Var]:
        out = set()
        for side in (self.left, self.right):
            if not isinstance(side, _NullConst):
                out.add(side)
        return frozenset(out)

    def __str__(self) -> str:
        op = "==" if self.equal else "!="
        return f"{self.left} {op} {self.right}"


Atom = Union[LinAtom, RefAtom]


# -- convenience constructors used by the symbolic transfer functions ----------


def le(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("<=", lhs.sub(rhs))


def lt(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("<=", lhs.sub(rhs).add(LinExpr.constant(1)))


def eq(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("==", lhs.sub(rhs))


def ne(lhs: LinExpr, rhs: LinExpr) -> LinAtom:
    return LinAtom("!=", lhs.sub(rhs))


def ref_eq(a: Union[Var, _NullConst], b: Union[Var, _NullConst]) -> RefAtom:
    return RefAtom(True, a, b).normalized()


def ref_ne(a: Union[Var, _NullConst], b: Union[Var, _NullConst]) -> RefAtom:
    return RefAtom(False, a, b).normalized()


def tighten(expr: LinExpr) -> LinExpr:
    """Integer tightening: divide through by the gcd of the coefficients,
    rounding the constant of a ≤-atom toward the feasible side."""
    if not expr.coeffs:
        return expr
    g = 0
    for _, c in expr.coeffs:
        g = gcd(g, abs(c))
    if g <= 1:
        return expr
    new_coeffs = {v: c // g for v, c in expr.coeffs}
    # Σ c'x ≤ -k/g  and the LHS is an integer, so Σ c'x ≤ floor(-k/g).
    bound = (-expr.const) // g
    return LinExpr.of(new_coeffs, -bound)
