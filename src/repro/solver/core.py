"""Decision procedure for the analysis's pure-constraint fragment.

Satisfiability of a conjunction of :class:`~repro.solver.terms.Atom` is
decided by:

1. congruence over reference (dis)equalities via union-find, with the
   ``NULL`` constant and caller-supplied non-null facts;
2. Gaussian elimination of linear equalities with a unit-coefficient
   variable;
3. Fourier–Motzkin elimination with integer tightening for the remaining
   ``≤`` atoms;
4. a completeness pass for ``≠`` atoms: a disequality fails only when the
   ``≤`` system *forces* the difference to zero.

The procedure is sound in both directions on this fragment, except that it
conservatively reports SAT when the FM elimination exceeds its size budget
— which preserves refutation soundness (Theorem 1): the analysis only
*refutes* on UNSAT.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..obs import metrics, provenance, trace
from . import partition
from .terms import NULL, Atom, LinAtom, LinExpr, RefAtom, Var, _NullConst, tighten
from .unionfind import UnionFind

# Beyond this many ≤-atoms during elimination we give up and report SAT.
FM_ATOM_BUDGET = 400

# Process-wide mirrors of the per-context SolverStats counters; the
# canonical cross-run aggregate (dumped by --metrics) lives in the
# repro.obs registry, while SolverStats instances stay around as the
# per-search compatibility view. ``solver.checks``/``solver.unsat`` count
# *actual decision-procedure runs* — a memo hit increments only the
# memo-hit counters, which is what makes the cached-vs-uncached solver
# call reduction measurable.
_CHECKS = metrics.counter("solver.checks")
_UNSAT = metrics.counter("solver.unsat")
_GIVEUPS = metrics.counter("solver.fm_giveups")
_ENTAILS = metrics.counter("solver.entails")
_CHECK_ATOMS = metrics.histogram("solver.check_atoms")
_MEMO_HITS = metrics.counter("solver.memo_hits")
_MEMO_MISSES = metrics.counter("solver.memo_misses")
_ENTAILS_MEMO_HITS = metrics.counter("solver.entails_memo_hits")
_ENTAILS_MEMO_MISSES = metrics.counter("solver.entails_memo_misses")
# Relevance-partitioned path (repro.solver.partition): queries partitioned,
# components per query, atoms per component, and the three ways a component
# can be answered without an actual decision-procedure run.
_PARTITIONS = metrics.counter("solver.partitions")
_COMPONENTS = metrics.histogram("solver.components")
_COMPONENT_SIZE = metrics.histogram("solver.component_size")
_CONTEXT_HITS = metrics.counter("solver.context_hits")
_COMPONENT_HITS = metrics.counter("solver.component_memo_hits")
_COMPONENT_MISSES = metrics.counter("solver.component_memo_misses")
_FASTPATH_UNSAT = metrics.counter("solver.fastpath_unsat")


class SolverStats:
    """Per-search counters (compatibility view over the repro.obs registry:
    the process-wide totals live in ``solver.*`` metrics).

    ``checks``/``unsat``/``entails`` count *queries asked and their
    verdicts* — they are memoization-invariant, so per-search accounting
    (and tests pinning exact counts) reads the same with caches on or off.
    ``memo_hits``/``memo_misses`` say how many of those queries were
    answered from the memo table vs. actually decided; on the partitioned
    path ``context_hits``/``component_hits`` count components answered
    from the per-state solver context and the per-component memo table.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.unsat = 0
        self.fm_giveups = 0
        self.entails = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.context_hits = 0
        self.component_hits = 0

    def __repr__(self) -> str:
        return (
            f"SolverStats(checks={self.checks}, unsat={self.unsat},"
            f" giveups={self.fm_giveups}, entails={self.entails},"
            f" memo_hits={self.memo_hits}, memo_misses={self.memo_misses},"
            f" context_hits={self.context_hits},"
            f" component_hits={self.component_hits})"
        )


GLOBAL_STATS = SolverStats()


def check_sat(
    atoms: Iterable[Atom],
    nonnull: Optional[frozenset[Var]] = None,
    stats: Optional[SolverStats] = None,
    context: Optional[partition.SolverContext] = None,
) -> bool:
    """True if the conjunction may be satisfiable, False if definitely not.

    ``nonnull`` lists instance variables known to denote real objects
    (e.g. instances that appear as the source of an exact points-to
    constraint); equating one of those with NULL is a contradiction.

    Two interchangeable strategies, selected by
    :data:`repro.perf.SOLVER_PARTITION`:

    * **monolithic** (``--no-partition``): decide the whole conjunction
      in one union-find + Fourier–Motzkin run, memoizing the verdict on
      the canonical frozen atom set (terms are hash-consed, so the key is
      cheap); the memo is a pure-function cache with no invalidation,
      toggled via :data:`repro.perf.SOLVER_MEMO`;
    * **relevance-partitioned** (the default): screen for syntactic
      contradictions, split the conjunction into connected components
      over shared variables, and decide each component independently —
      answering from the caller's ``context``
      (:class:`repro.solver.partition.SolverContext`, carried on the
      query and shared parent→child) or the per-component memo table
      whenever the fragment was already decided. UNSAT in any component
      is UNSAT overall; SAT in every component is SAT overall (the
      components share no variables, so models compose).
    """
    from ..perf import store as perf_store
    from ..perf.memo import SOLVER_MEMO, SOLVER_PARTITION

    stats = stats or GLOBAL_STATS
    stats.checks += 1
    atoms = list(atoms)
    nonnull = nonnull or frozenset()

    if SOLVER_PARTITION.enabled:
        return _check_sat_partitioned(atoms, nonnull, stats, context)

    memo_key = None
    if SOLVER_MEMO.enabled:
        memo_key = (frozenset(atoms), frozenset(nonnull))
        cached = SOLVER_MEMO.check.get(memo_key)
        if cached is not None:
            stats.memo_hits += 1
            _MEMO_HITS.inc()
            if not cached:
                stats.unsat += 1
                if provenance.enabled():
                    provenance.note_unsat(atoms)
            return cached
        stats.memo_misses += 1
        _MEMO_MISSES.inc()

    # Persistent store probe (only ever after an in-memory memo miss):
    # monolithic whole-query verdicts persist under their canonical
    # signature, kind "mono" — kept apart from partitioned verdicts
    # because per-component FM give-ups can differ from whole-query ones.
    store = perf_store.ACTIVE
    canon = None
    if store is not None:
        canon = partition.canonical_key(atoms, nonnull)
        cached = store.get("mono", canon)
        if cached is not None:
            if memo_key is not None:
                SOLVER_MEMO.check.put(memo_key, cached)
            if not cached:
                stats.unsat += 1
                if provenance.enabled():
                    provenance.note_unsat(atoms)
            return cached

    _CHECKS.inc()
    _CHECK_ATOMS.observe(len(atoms))
    with trace.span("solver.check_sat"):
        ref_atoms = [a for a in atoms if isinstance(a, RefAtom)]
        lin_atoms = [a for a in atoms if isinstance(a, LinAtom)]

        result = True
        if not _check_refs(ref_atoms, nonnull):
            result = False
        elif not _check_linear(lin_atoms, stats):
            result = False
        if not result:
            stats.unsat += 1
            _UNSAT.inc()
            if provenance.enabled():
                provenance.note_unsat(atoms)
    if memo_key is not None:
        SOLVER_MEMO.check.put(memo_key, result)
    if canon is not None and store is not None:
        store.put("mono", canon, result)
    return result


def _check_sat_partitioned(
    atoms: list[Atom],
    nonnull: frozenset[Var],
    stats: SolverStats,
    context: Optional[partition.SolverContext],
) -> bool:
    """Relevance-partitioned ``check_sat``: screen, split, decide per
    component, answering from ``context`` / the component memo / the
    persistent verdict store when the fragment is already known. See
    :mod:`repro.solver.partition` for the soundness argument."""
    from ..perf import store as perf_store
    from ..perf.memo import SOLVER_MEMO

    _PARTITIONS.inc()
    store = perf_store.ACTIVE

    # L1: whole-query memo. The executor re-asks identical conjunctions
    # constantly (version bumps without atom changes, sibling copies); a
    # frozenset probe is far cheaper than splitting and canonicalizing.
    # The leading marker keeps partitioned verdicts apart from monolithic
    # ones — per-component FM give-ups can differ from whole-query ones.
    memo_key = None
    if SOLVER_MEMO.enabled:
        memo_key = ("part", frozenset(atoms), nonnull)
        cached = SOLVER_MEMO.check.get(memo_key)
        if cached is not None:
            stats.memo_hits += 1
            _MEMO_HITS.inc()
            if not cached:
                stats.unsat += 1
                if provenance.enabled():
                    provenance.note_unsat(atoms)
            return cached
        stats.memo_misses += 1
        _MEMO_MISSES.inc()

    # L1.5: the persistent store's whole-query tier, on the canonical
    # alpha-renamed signature (run- and process-independent). Probed only
    # after an in-memory miss, so the disk-backed tier never slows a
    # memo hit; a hit back-fills the L1 memo for this run.
    wcanon = None
    if store is not None:
        wcanon = partition.canonical_key(atoms, nonnull)
        cached = store.get("part", wcanon)
        if cached is not None:
            if memo_key is not None:
                SOLVER_MEMO.check.put(memo_key, cached)
            if not cached:
                stats.unsat += 1
                if provenance.enabled():
                    provenance.note_unsat(atoms)
            return cached

    bad = partition.syntactic_unsat(atoms, nonnull)
    if bad is not None:
        _FASTPATH_UNSAT.inc()
        stats.unsat += 1
        _UNSAT.inc()
        if provenance.enabled():
            provenance.note_unsat([bad])
        if memo_key is not None:
            SOLVER_MEMO.check.put(memo_key, False)
        return False

    components = partition.split_components(atoms, nonnull)
    _COMPONENTS.observe(len(components))

    memo_on = SOLVER_MEMO.enabled
    for catoms, key in components:
        # Tier 1: the per-lineage context, on cheap nominal keys (copies
        # share symbolic variables, so unchanged components recur by
        # name). The canonical signature is only derived below, on a
        # context miss.
        verdict: Optional[bool] = None
        if context is not None:
            verdict = context.get(key)
            if verdict is not None:
                stats.context_hits += 1
                _CONTEXT_HITS.inc()
        if verdict is None:
            # Tier 2: the cross-lineage component memo, on canonical
            # signatures (alpha-equivalent fragments collapse); tier 2.5:
            # the persistent store's component tier (fragments decided by
            # earlier runs); tier 3: decide the original fragment.
            canon = (
                partition.canonical_key(catoms, key[1])
                if (memo_on or store is not None)
                else None
            )
            if canon is not None and memo_on:
                verdict = SOLVER_MEMO.component.get(canon)
                if verdict is not None:
                    stats.component_hits += 1
                    _COMPONENT_HITS.inc()
                else:
                    _COMPONENT_MISSES.inc()
            if verdict is None and canon is not None and store is not None:
                verdict = store.get("comp", canon)
                if verdict is not None and memo_on:
                    SOLVER_MEMO.component.put(canon, verdict)
            if verdict is None:
                verdict = _decide_component(catoms, key[1], stats)
                if canon is not None and memo_on:
                    SOLVER_MEMO.component.put(canon, verdict)
                if canon is not None and store is not None:
                    store.put("comp", canon, verdict)
        if context is not None:
            context.remember(key, verdict)
        if not verdict:
            stats.unsat += 1
            _UNSAT.inc()
            if provenance.enabled():
                provenance.note_unsat(catoms)
            if memo_key is not None:
                SOLVER_MEMO.check.put(memo_key, False)
            if wcanon is not None and store is not None:
                store.put("part", wcanon, False)
            return False
    if memo_key is not None:
        SOLVER_MEMO.check.put(memo_key, True)
    if wcanon is not None and store is not None:
        store.put("part", wcanon, True)
    return True


def _decide_component(
    catoms: list[Atom], nonnull: frozenset[Var], stats: SolverStats
) -> bool:
    """Run the actual decision procedure on one variable-connected
    component, in the caller's own variable names (the canonical
    signature is a cache key, never an instance — signatures are built
    from plain data precisely so no renamed terms are ever interned).
    Counts toward ``solver.checks`` — the "actual runs" metric the
    ablation grid compares against memo/context hits."""
    _CHECKS.inc()
    _CHECK_ATOMS.observe(len(catoms))
    _COMPONENT_SIZE.observe(len(catoms))
    with trace.span("solver.check_sat"):
        ref_atoms = [a for a in catoms if isinstance(a, RefAtom)]
        lin_atoms = [a for a in catoms if isinstance(a, LinAtom)]
        if not _check_refs(ref_atoms, nonnull):
            return False
        return _check_linear(lin_atoms, stats)


def entails(
    stronger: Iterable[Atom],
    weaker: Iterable[Atom],
    stats: Optional[SolverStats] = None,
) -> bool:
    """Conservative syntactic entailment: every atom of ``weaker`` appears
    in ``stronger`` (after normalization). Used by query subsumption, where
    a miss only costs re-exploration, never soundness. Memoized like
    :func:`check_sat` on the pair of normalized frozen atom sets."""
    from ..perf.memo import SOLVER_MEMO

    stats = stats or GLOBAL_STATS
    stats.entails += 1
    _ENTAILS.inc()
    with trace.span("solver.entails"):
        have = frozenset(_normalize(a) for a in stronger)
        want = frozenset(_normalize(a) for a in weaker)
        if SOLVER_MEMO.enabled:
            memo_key = (have, want)
            cached = SOLVER_MEMO.entailment.get(memo_key)
            if cached is not None:
                stats.memo_hits += 1
                _ENTAILS_MEMO_HITS.inc()
                return cached
            stats.memo_misses += 1
            _ENTAILS_MEMO_MISSES.inc()
            result = want <= have
            SOLVER_MEMO.entailment.put(memo_key, result)
            return result
        return want <= have


def _normalize(atom: Atom) -> Atom:
    if isinstance(atom, RefAtom):
        return atom.normalized()
    return atom


# ---------------------------------------------------------------------------
# References
# ---------------------------------------------------------------------------


def _check_refs(ref_atoms: list[RefAtom], nonnull: frozenset[Var]) -> bool:
    uf = UnionFind()
    for atom in ref_atoms:
        if atom.equal:
            uf.union(atom.left, atom.right)
    null_root = uf.find(NULL)
    for var in nonnull:
        if uf.find(var) == null_root:
            # var == NULL forced, but var must be a real object.
            return False
    for atom in ref_atoms:
        if not atom.equal and uf.same(atom.left, atom.right):
            return False
    return True


# ---------------------------------------------------------------------------
# Linear integer arithmetic
# ---------------------------------------------------------------------------


def _check_linear(lin_atoms: list[LinAtom], stats: SolverStats) -> bool:
    les: list[LinExpr] = []  # each meaning expr <= 0
    nes: list[LinExpr] = []  # each meaning expr != 0
    eqs: list[LinExpr] = []  # each meaning expr == 0
    for atom in lin_atoms:
        if atom.op == "<=":
            les.append(atom.expr)
        elif atom.op == "==":
            eqs.append(atom.expr)
        else:
            nes.append(atom.expr)

    subst_eqs, les = _eliminate_equalities(eqs, les, nes)
    if subst_eqs is None:
        return False

    if not _fm_feasible(les, stats):
        return False

    for expr in nes:
        if expr.is_constant:
            if expr.const == 0:
                return False
            continue
        # expr != 0 fails only if the system forces expr == 0, i.e. both
        # expr <= -1 and -expr <= -1 are infeasible with the system.
        pos = les + [expr.add(LinExpr.constant(1))]  # expr + 1 <= 0, expr <= -1
        neg = les + [expr.scale(-1).add(LinExpr.constant(1))]  # expr >= 1
        if not _fm_feasible(pos, stats) and not _fm_feasible(neg, stats):
            return False
    return True


def _eliminate_equalities(
    eqs: list[LinExpr], les: list[LinExpr], nes: list[LinExpr]
) -> tuple[Optional[dict], list[LinExpr]]:
    """Substitute away equalities with a ±1-coefficient variable; the rest
    become inequality pairs. Mutates ``nes`` in place with substitutions.
    Returns (marker dict or None on contradiction, new les)."""
    pending = list(eqs)
    while pending:
        expr = pending.pop()
        if expr.is_constant:
            if expr.const != 0:
                return None, les
            continue
        unit_var = None
        unit_coeff = 0
        for v, c in expr.coeffs:
            if c in (1, -1):
                unit_var = v
                unit_coeff = c
                break
        if unit_var is None:
            # No unit coefficient: keep as two inequalities.
            les.append(expr)
            les.append(expr.scale(-1))
            continue
        # unit_coeff * v = -(expr - unit_coeff*v)  =>  v = replacement
        rest = expr.sub(LinExpr.of({unit_var: unit_coeff}))
        replacement = rest.scale(-unit_coeff)

        def subst(target: LinExpr) -> LinExpr:
            coeff = target.as_dict().get(unit_var, 0)
            if coeff == 0:
                return target
            return target.sub(LinExpr.of({unit_var: coeff})).add(
                replacement.scale(coeff)
            )

        pending = [subst(e) for e in pending]
        les = [subst(e) for e in les]
        nes[:] = [subst(e) for e in nes]
    return {}, les


def _fm_feasible(les: list[LinExpr], stats: SolverStats) -> bool:
    """Fourier–Motzkin with integer tightening over atoms ``expr <= 0``."""
    system = [tighten(e) for e in les]
    while True:
        constants = [e for e in system if e.is_constant]
        if any(e.const > 0 for e in constants):
            return False
        system = [e for e in system if not e.is_constant]
        if not system:
            return True
        if len(system) > FM_ATOM_BUDGET:
            stats.fm_giveups += 1
            _GIVEUPS.inc()
            return True  # give up: conservatively satisfiable
        # Pick the variable with the fewest pos*neg combinations.
        occurrences: dict[Var, tuple[int, int]] = {}
        for expr in system:
            for v, c in expr.coeffs:
                pos, neg = occurrences.get(v, (0, 0))
                if c > 0:
                    occurrences[v] = (pos + 1, neg)
                else:
                    occurrences[v] = (pos, neg + 1)
        var = min(
            occurrences,
            key=lambda v: (occurrences[v][0] * occurrences[v][1], repr(v)),
        )
        pos_exprs = [e for e in system if e.as_dict().get(var, 0) > 0]
        neg_exprs = [e for e in system if e.as_dict().get(var, 0) < 0]
        others = [e for e in system if e.as_dict().get(var, 0) == 0]
        combined: list[LinExpr] = []
        for p in pos_exprs:
            cp = p.as_dict()[var]
            for n in neg_exprs:
                cn = -n.as_dict()[var]
                # cn*p + cp*n eliminates var.
                combined.append(tighten(p.scale(cn).add(n.scale(cp))))
        system = others + combined
