"""Pure-constraint decision procedure (the offline stand-in for Z3)."""

from .core import FM_ATOM_BUDGET, GLOBAL_STATS, SolverStats, check_sat, entails
from .partition import SolverContext, canonical_key, split_components, syntactic_unsat
from .terms import (
    NULL,
    Atom,
    LinAtom,
    LinExpr,
    RefAtom,
    Var,
    eq,
    le,
    lt,
    ne,
    ref_eq,
    ref_ne,
    tighten,
)
from .unionfind import UnionFind

__all__ = [
    "FM_ATOM_BUDGET",
    "GLOBAL_STATS",
    "SolverStats",
    "check_sat",
    "entails",
    "SolverContext",
    "canonical_key",
    "split_components",
    "syntactic_unsat",
    "NULL",
    "Atom",
    "LinAtom",
    "LinExpr",
    "RefAtom",
    "Var",
    "eq",
    "le",
    "lt",
    "ne",
    "ref_eq",
    "ref_ne",
    "tighten",
    "UnionFind",
]
