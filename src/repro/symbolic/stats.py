"""Bookkeeping for the witness-refutation search: per-edge outcomes and
aggregate effort counters (the raw material of Table 1's Effort columns)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..pointsto.graph import HeapEdge

REFUTED = "refuted"
WITNESSED = "witnessed"
TIMEOUT = "timeout"


@dataclass
class EdgeResult:
    """Outcome of trying to refute one points-to edge."""

    edge: HeapEdge
    status: str  # refuted | witnessed | timeout
    path_programs: int = 0
    seconds: float = 0.0
    refutation_kinds: dict[str, int] = field(default_factory=dict)
    #: For witnessed edges: labels of the witnessing path program, in
    #: forward execution order (the paper's triaging aid).
    witness_trace: Optional[list[int]] = None
    #: Typed kill-reason counts from the search journal (empty unless a
    #: provenance journal was attached for the run).
    kill_reasons: dict[str, int] = field(default_factory=dict)
    #: Methods the search visited or whose mod/ref summaries it consulted
    #: (``SearchConfig.record_footprints``); the verdict can only change if
    #: one of these methods — or a summary they depend on — changes.
    footprint: Optional[frozenset] = None
    #: Portfolio rung that resolved this job (0 = first/only rung). Set by
    #: the driver; always 0 outside ``SearchConfig.portfolio`` runs.
    rung: int = 0

    @property
    def refuted(self) -> bool:
        return self.status == REFUTED

    @property
    def witnessed(self) -> bool:
        return self.status == WITNESSED

    @property
    def timed_out(self) -> bool:
        return self.status == TIMEOUT


@dataclass
class SearchStats:
    """Aggregate counters over one run of the refuter."""

    edges_refuted: int = 0
    edges_witnessed: int = 0
    edges_timeout: int = 0
    path_programs: int = 0
    seconds: float = 0.0
    history_drops: int = 0
    #: Run-wide prune attribution: kill reason -> dead branches, summed
    #: over every recorded edge result.
    kill_reasons: dict[str, int] = field(default_factory=dict)

    def record(self, result: EdgeResult) -> None:
        if result.refuted:
            self.edges_refuted += 1
        elif result.witnessed:
            self.edges_witnessed += 1
        else:
            self.edges_timeout += 1
        self.path_programs += result.path_programs
        self.seconds += result.seconds
        for reason, n in result.kill_reasons.items():
            self.kill_reasons[reason] = self.kill_reasons.get(reason, 0) + n
