"""Human-readable path program witnesses.

The paper emphasizes that even *refuted* path programs are useful triage
artifacts (the StandupTimer "latent leak" was found by reading one). This
module renders the label traces the executor records into source-anchored
path program listings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.program import IRProgram
from .stats import EdgeResult


@dataclass
class WitnessStep:
    label: int
    method: str
    text: str
    line: int


def witness_steps(program: IRProgram, trace: list[int]) -> list[WitnessStep]:
    steps = []
    for label in trace:
        cmd = program.commands.get(label)
        if cmd is None:
            continue
        method = program.command_method.get(label, "?")
        steps.append(WitnessStep(label, method, str(cmd), cmd.pos.line))
    return steps


def render_trace(program: IRProgram, trace: list[int], header: str) -> str:
    """A printable source-anchored listing of one label trace."""
    if not trace:
        return header + "\n  (no trace recorded)"
    lines = [header]
    last_method = None
    for step in witness_steps(program, trace):
        if step.method != last_method:
            lines.append(f"  in {step.method}:")
            last_method = step.method
        where = f"L{step.line}" if step.line else f"#{step.label}"
        lines.append(f"    {where}: {step.text}")
    return "\n".join(lines)


def render_witness(program: IRProgram, result: EdgeResult) -> str:
    """A printable path program witness for a witnessed edge."""
    header = f"witness for {result.edge} [{result.status}]"
    return render_trace(program, result.witness_trace or [], header)
