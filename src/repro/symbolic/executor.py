"""The witness-refutation search engine (Sections 2 and 3).

Given a points-to edge and the statements that may produce it (from the
producer map), the engine performs a goal-directed *backwards* symbolic
execution over path programs:

* the backwards program counter is an explicit continuation: a cons-list of
  tasks (execute a statement backwards, or cross a method entry);
* ``choice`` forks path programs (counted against the per-edge budget);
* ``loop`` triggers the on-the-fly invariant inference of
  :mod:`repro.symbolic.loops`;
* calls push abstract stack frames; reaching a method entry with an empty
  stack expands into all call-graph callers; callees beyond the stack
  bound are *skipped soundly* by dropping every constraint they might
  produce (mod/ref fields, statics, and transitively-allocated instances);
* a query whose memory becomes ``any`` (empty) is a witness: the edge
  cannot be refuted. Reaching the program entry with leftover memory
  constraints refutes the path (the initial heap is empty and statics are
  null).

An edge is REFUTED when every producer's every path program is refuted
within budget; WITNESSED when some path survives to a witness; TIMEOUT
when the budget runs out (treated as not-refuted, like the paper)."""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Optional, Union

from ..ir import instructions as ins
from ..ir.program import IRProgram
from ..ir.stmts import AtomicStmt, Choice, Loop, Seq, Stmt
from ..obs import metrics, provenance, trace
from ..pointsto import ELEMS, PointsToResult
from ..pointsto.graph import HeapEdge
from ..perf import store as perf_store
from ..perf.cache import RefutedStateCache
from ..perf.memo import SOLVER_MEMO, SOLVER_PARTITION
from ..pointsto.modref import ModSet
from . import loops
from .config import Representation, SearchConfig
from .query import Query
from .simplification import QueryHistory, query_entails
from .stats import REFUTED, TIMEOUT, WITNESSED, EdgeResult, SearchStats
from .symvar import SymVar
from .transfer import TransferContext, transfer_command

# Continuation: a cons-list of tasks; () is the empty continuation.
Cons = tuple  # (Task, Cons) | ()

# Per-search effort distributions (the raw material of Table 1's Effort
# columns, now first-class in the metrics registry).
_PATH_PROGRAMS = metrics.histogram("executor.path_programs")
_SEARCH_SECONDS = metrics.histogram("executor.search_seconds")
_SOLVER_CALLS = metrics.histogram("executor.solver_calls_per_search")
_WORKLIST_SUBSUMED = metrics.counter("executor.worklist_subsumed")
_STATES_EXPLORED = metrics.counter("executor.states_explored")


def _observe_search(result: "EdgeResult", solver_calls: int) -> None:
    _PATH_PROGRAMS.observe(result.path_programs)
    _SEARCH_SECONDS.observe(result.seconds)
    _SOLVER_CALLS.observe(solver_calls)
    metrics.counter(f"executor.{result.status}").inc()


@dataclass(frozen=True, slots=True)
class StmtTask:
    stmt: Stmt
    #: Query version at the enclosing choice's fork; an assume whose query
    #: is unchanged since the fork is irrelevant and skipped (Section 3.2).
    relevance: Optional[int] = None


@dataclass(frozen=True, slots=True)
class EnterMethodTask:
    qname: str


Task = Union[StmtTask, EnterMethodTask]


@dataclass(slots=True)
class PathState:
    k: Cons
    query: Query
    trace: Cons = ()  # cons-list of visited labels (newest first)
    #: Search-journal state id (0 = not journaled: journaling disabled, or
    #: a loop-inference subwalk state — see repro.obs.provenance).
    sid: int = 0


class SearchTimeout(Exception):
    pass


class _Witnessed(Exception):
    def __init__(self, state: PathState) -> None:
        self.state = state


class Engine:
    """Witness-refutation search over one analyzed program."""

    def __init__(
        self,
        pta: PointsToResult,
        config: Optional[SearchConfig] = None,
        root: Optional[str] = None,
        refuted_cache: Optional[RefutedStateCache] = None,
    ) -> None:
        self.pta = pta
        self.program: IRProgram = pta.program
        self.config = config or SearchConfig()
        # The solver memo is process-wide; the engine's config governs it
        # for the whole run (the driver replays the same config in workers).
        SOLVER_MEMO.set_enabled(self.config.memoize_solver)
        SOLVER_PARTITION.set_enabled(self.config.partition_solver)
        # The persistent verdict store follows the same discipline: one
        # engine construction (re)binds the process-wide store to the
        # configured cache directory, or detaches it when none is set.
        perf_store.attach(self.config.cache_dir)
        self.ctx = TransferContext(pta, self.config)
        self.root = root or self.program.entry
        if self.root is None:
            raise ValueError("program has no entry; pass root explicitly")
        self.stats = SearchStats()
        self._parents: dict[str, dict[int, tuple[Stmt, int]]] = {}
        self._budget_left = 0
        self._deadline_at: Optional[float] = None
        self._deadline_step = 0
        # Cross-search refuted-state cache: pass one in to share across
        # engines (driver thread pool); a private store otherwise. Must
        # never be shared across different pta/root pairs.
        self._refuted_cache: Optional[RefutedStateCache] = None
        if self.config.state_subsumption:
            self._refuted_cache = (
                refuted_cache if refuted_cache is not None else RefutedStateCache()
            )
        self._history = QueryHistory(
            enabled=self.config.simplify_queries, shared=self._refuted_cache
        )
        self._edge_cache: dict = {}
        self._branch_mods: dict[int, ModSet] = {}
        self._branch_throw: dict[int, bool] = {}
        #: Footprint of the search in flight (method qnames visited or
        #: consulted); None unless ``config.record_footprints``.
        self._fp: Optional[set[str]] = None
        self._stmt_callees: dict[int, frozenset] = {}
        #: The active search journal (repro.obs.provenance), or None: every
        #: journaling hook below is a no-op when no journal is installed.
        self._sj: Optional["provenance.SearchJournal"] = None
        #: Work-stealing hookup (thread backend): the driver sets a
        #: :class:`repro.engine.schedule.StealRegistry` on worker engines
        #: when ``config.work_stealing``; searches then run on a shared,
        #: stealable worklist. ``_shard`` is the worklist this engine is
        #: currently working (as owner or helper) — ``_spend`` charges it.
        self.steal_registry = None
        self._shard = None
        #: The current search's display token (edge/fact description) —
        #: carried onto shared worklists so steal telemetry can name it.
        self._desc = ""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def refute_edge(
        self,
        edge: HeapEdge,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> EdgeResult:
        """Try to refute ``edge``: search for a path program witness from
        every producing statement; refuted iff all searches are refuted.

        ``budget``/``deadline`` override the config's per-edge limits for
        this attempt (the driver's portfolio rungs). A TIMEOUT under an
        override is *provisional* — a later, larger rung may still resolve
        the edge — so it is not cached or counted in :attr:`stats`;
        REFUTED/WITNESSED verdicts are final at any rung (a deterministic
        search that completes under a smaller cap returns the same verdict
        under a larger one) and are cached normally."""
        from ..pointsto.producers import edge_key

        key = edge_key(edge)
        if key in self._edge_cache:
            return self._edge_cache[key]
        partial = budget is not None or deadline is not None
        start = time.perf_counter()
        checks_before = self.ctx.solver_stats.checks
        baseline = budget if budget is not None else self.config.path_budget
        self._budget_left = baseline
        self._arm_deadline(start, deadline)
        self._history = QueryHistory(
            enabled=self.config.simplify_queries, shared=self._refuted_cache
        )
        book = provenance.get_journal()
        self._desc = str(edge)
        self._sj = (
            book.open_search(str(edge), kind="edge") if book is not None else None
        )
        producers = self.pta.producers_of(edge)
        self._fp = set() if self.config.record_footprints else None
        if self._fp is not None:
            for label in producers:
                qname = self.program.command_method.get(label)
                if qname is not None:
                    self._fp.add(qname)
        status = REFUTED
        witness_trace: Optional[list[int]] = None
        explored = 0
        if not producers:
            # No statement can produce the edge (e.g. already suppressed by
            # an annotation): vacuously refuted.
            status = REFUTED
        with trace.span(
            "executor.search", edge=str(edge), producers=len(producers)
        ) as sp:
            try:
                for label in producers:
                    state = self._initial_state(edge, label)
                    if state is None:
                        continue  # this producer is trivially refuted
                    result_state = self._search([state])
                    if result_state is not None:
                        status = WITNESSED
                        witness_trace = _materialize(result_state.trace)
                        self._history.discard_pending()
                        break
                    # This producer's search completed REFUTED: every state
                    # it recorded is a proven dead end — share them.
                    self._flush_refuted()
            except SearchTimeout:
                status = TIMEOUT
                self._history.discard_pending()
            explored = baseline - self._budget_left
            sp.set(status=status, path_programs=explored)
        result = EdgeResult(
            edge=edge,
            status=status,
            path_programs=explored,
            seconds=time.perf_counter() - start,
            refutation_kinds=dict(self.ctx.refutations),
            witness_trace=witness_trace,
        )
        if self._fp is not None:
            result.footprint = frozenset(self._fp)
            self._fp = None
        if self._sj is not None:
            self._sj.close(status)
            result.kill_reasons = dict(self._sj.kill_counts)
            self._sj = None
        if not (partial and status == TIMEOUT):
            self.stats.record(result)
            self._edge_cache[key] = result
        self.stats.history_drops = self._history.drops
        _observe_search(result, self.ctx.solver_stats.checks - checks_before)
        return result

    def edge_results(self) -> dict:
        """All per-edge outcomes computed so far, keyed by edge key."""
        from ..pointsto.producers import edge_key

        return {edge_key(r.edge): r for r in self._edge_cache.values()}

    def refute_fact_at(
        self,
        label: int,
        bindings: list[tuple[str, Optional[frozenset]]],
        budget: Optional[int] = None,
        description: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> EdgeResult:
        """Generic heap-reachability fact checking: can execution reach the
        program point *just before* the command at ``label`` in a state
        where each local ``var`` holds a (non-null) instance from
        ``region``? Returns REFUTED / WITNESSED / TIMEOUT like
        :meth:`refute_edge`. This is the building block for the clients the
        paper's introduction sketches (cast checking, escape analysis,
        assertion checking)."""
        start = time.perf_counter()
        checks_before = self.ctx.solver_stats.checks
        baseline = budget if budget is not None else self.config.path_budget
        self._budget_left = baseline
        self._arm_deadline(start, deadline)
        self._history = QueryHistory(
            enabled=self.config.simplify_queries, shared=self._refuted_cache
        )
        book = provenance.get_journal()
        self._desc = description or f"fact@L{label}"
        self._sj = (
            book.open_search(description or f"fact@L{label}", kind="fact")
            if book is not None
            else None
        )
        method = self.program.method_of_label(label)
        self._fp = set() if self.config.record_footprints else None
        if self._fp is not None:
            self._fp.add(method.qualified_name)
        q = Query(method.qualified_name)
        for var, region in bindings:
            v = q.new_ref(region, maybe_null=False, hint=var)
            if q.failed or not q.set_local(var, v):
                break
        status = REFUTED
        witness_trace: Optional[list[int]] = None
        with trace.span("executor.search", fact_label=label) as sp:
            if not q.failed and q.check_sat(self.ctx.solver_stats):
                k = self._continuation_before(method.qualified_name, label)
                state = PathState(k, q, (label, ()))
                if self._sj is not None:
                    state.sid = self._sj.new_state(0, label, detail="fact root")
                try:
                    self._spend()
                except SearchTimeout:
                    # Root-level exhaustion: _search never ran, so journal
                    # the kill ourselves (it sweeps its own frontier).
                    status = TIMEOUT
                    self._history.discard_pending()
                    if self._sj is not None:
                        self._sj.kill(
                            state.sid,
                            label,
                            provenance.BUDGET_TIMEOUT,
                            "budget or deadline exhausted at the fact root",
                        )
                else:
                    try:
                        found = self._search([state])
                        if found is not None:
                            status = WITNESSED
                            witness_trace = _materialize(found.trace)
                            self._history.discard_pending()
                        else:
                            self._flush_refuted()
                    except SearchTimeout:
                        status = TIMEOUT
                        self._history.discard_pending()
            elif self._sj is not None:
                sid = self._sj.new_state(0, label, detail="fact root")
                self._sj.kill(
                    sid,
                    label,
                    provenance.classify_kill(q.fail_reason),
                    q.fail_reason or "fact query unsatisfiable at its own site",
                )
            sp.set(status=status, path_programs=baseline - self._budget_left)
        result = EdgeResult(
            edge=None,  # type: ignore[arg-type]
            status=status,
            path_programs=baseline - self._budget_left,
            seconds=time.perf_counter() - start,
            refutation_kinds=dict(self.ctx.refutations),
            witness_trace=witness_trace,
        )
        if self._fp is not None:
            result.footprint = frozenset(self._fp)
            self._fp = None
        if self._sj is not None:
            self._sj.close(status)
            result.kill_reasons = dict(self._sj.kill_counts)
            self._sj = None
        _observe_search(result, self.ctx.solver_stats.checks - checks_before)
        return result

    # ------------------------------------------------------------------
    # Search loop
    # ------------------------------------------------------------------

    def _arm_deadline(
        self, start: float, override: Optional[float] = None
    ) -> None:
        """Arm the per-edge wall-clock deadline (cooperative cancellation:
        the search loops poll :meth:`_check_deadline` and unwind with
        ``SearchTimeout``, which is reported as TIMEOUT / not-refuted).
        ``override`` replaces the config's deadline for this search (the
        driver's portfolio rungs)."""
        deadline = (
            override if override is not None else self.config.deadline_seconds
        )
        if deadline is not None:
            self._deadline_at = start + deadline
        else:
            self._deadline_at = None
        self._deadline_step = 0

    def _check_deadline(self, every: int = 1) -> None:
        if self._deadline_at is None:
            return
        self._deadline_step += 1
        if self._deadline_step % every:
            return
        if time.perf_counter() > self._deadline_at:
            raise SearchTimeout()

    def _spend(self, n: int = 1) -> None:
        shard = self._shard
        if shard is not None:
            # Shared (stealable) search: one budget across owner and
            # helpers, so total effort matches the serial accounting.
            if not shard.spend(n):
                raise SearchTimeout()
            self._check_deadline()
            return
        self._budget_left -= n
        if self._budget_left < 0:
            raise SearchTimeout()
        self._check_deadline()

    def _search(self, initial: list[PathState]) -> Optional[PathState]:
        """DFS over path states; returns a witnessing state or None when
        all paths are refuted.

        Under ``config.schedule == "priority"`` the worklist is a
        best-first priority queue keyed on
        :func:`repro.engine.schedule.state_cost` (cheapest state next,
        newest-first among ties). Verdicts are order-independent on
        budget-ample searches — every path must be killed either way —
        but witness traces and near-budget timeout boundaries may differ
        from the LIFO run. When a steal registry is attached the search
        runs on a shared, stealable worklist instead
        (:meth:`_search_shared`)."""
        if self.steal_registry is not None and self._shard is None:
            return self._search_shared(initial)
        use_priority = self.config.schedule == "priority"
        frontier: list
        seq = 0
        if use_priority:
            from ..engine.schedule import state_cost

            frontier = []
            for s in initial:
                seq += 1
                heapq.heappush(frontier, (state_cost(s), -seq, s))
        else:
            frontier = list(initial)
        explored = 0
        sj = self._sj
        state: Optional[PathState] = None
        try:
            while frontier:
                self._check_deadline(every=16)
                state = (
                    heapq.heappop(frontier)[2] if use_priority else frontier.pop()
                )
                explored += 1
                successors = self._step(state)
                if sj is not None:
                    for child in successors:
                        child.sid = sj.new_state(
                            state.sid, _trace_label(child.trace)
                        )
                kept = self._prune_batch(successors)
                if use_priority:
                    for s in kept:
                        seq += 1
                        heapq.heappush(frontier, (state_cost(s), -seq, s))
                else:
                    frontier.extend(kept)
        except _Witnessed as w:
            if sj is not None:
                sj.witness(w.state.sid, _trace_label(w.state.trace))
            return w.state
        except SearchTimeout:
            if sj is not None:
                if state is not None and state.sid:
                    sj.kill(
                        state.sid,
                        _trace_label(state.trace),
                        provenance.BUDGET_TIMEOUT,
                        "path budget or wall-clock deadline exhausted",
                    )
                for entry in frontier:
                    s = entry[2] if use_priority else entry
                    if s.sid:
                        sj.kill(
                            s.sid,
                            _trace_label(s.trace),
                            provenance.BUDGET_TIMEOUT,
                            "abandoned on the worklist at timeout",
                        )
            raise
        finally:
            _STATES_EXPLORED.inc(explored)
        return None

    # ------------------------------------------------------------------
    # Shared (stealable) searches — repro.engine.schedule
    # ------------------------------------------------------------------

    def _search_shared(self, initial: list[PathState]) -> Optional[PathState]:
        """Run one search on a shared, stealable worklist: register it so
        drained pool threads can assist, then run the owner loop. The
        worklist carries this search's remaining budget and deadline, so
        helper effort is charged to the same limits."""
        from ..engine.schedule import SharedWorklist

        shard = SharedWorklist(
            initial,
            self._budget_left,
            self._deadline_at,
            description=getattr(self, "_desc", ""),
        )
        self.steal_registry.register(shard)
        try:
            self._run_shared(shard, owner=True)
        finally:
            self.steal_registry.unregister(shard)
            self._budget_left = shard.budget_left
        sj = self._sj
        if shard.witness is not None:
            # Helper-found witnesses carry sid 0 (stolen subtrees are
            # unjournaled); only journal a witness the owner tracked.
            if sj is not None and shard.witness.sid:
                sj.witness(shard.witness.sid, _trace_label(shard.witness.trace))
            return shard.witness
        if shard.timed_out:
            if sj is not None:
                for s in shard.drain():
                    if s.sid:
                        sj.kill(
                            s.sid,
                            _trace_label(s.trace),
                            provenance.BUDGET_TIMEOUT,
                            "abandoned on the shared worklist at timeout",
                        )
            raise SearchTimeout()
        return None

    def _run_shared(self, shard, owner: bool) -> None:
        """The step loop both the owner and helpers run against a shared
        worklist. The owner pops newest-first and journals its own
        subtree; helpers steal oldest-first and run unjournaled."""
        sj = self._sj if owner else None
        prev_shard = self._shard
        prev_deadline = self._deadline_at
        self._shard = shard
        self._deadline_at = shard.deadline_at
        explored = 0
        try:
            while True:
                state = shard.get(owner)
                if state is None:
                    return
                settled = False
                try:
                    self._check_deadline(every=16)
                    explored += 1
                    successors = self._step(state)
                    if sj is not None:
                        for child in successors:
                            child.sid = sj.new_state(
                                state.sid, _trace_label(child.trace)
                            )
                    shard.put_results(self._prune_batch(successors))
                    settled = True
                except _Witnessed as w:
                    settled = True
                    shard.found_witness(w.state)
                    return
                except SearchTimeout:
                    settled = True
                    shard.mark_timeout()
                    return
                finally:
                    if not settled:
                        shard.put_results([])
        finally:
            _STATES_EXPLORED.inc(explored)
            self._shard = prev_shard
            self._deadline_at = prev_deadline

    def assist(self, shard) -> None:
        """Work-steal helper entry point: step states of another engine's
        in-flight search on this (idle) engine. Runs with journaling off
        — stolen subtrees are unjournaled, so per-edge kill attribution
        still equals the journal recount — and a fresh query history so
        subsumption bookkeeping stays scoped to the assisted search. Dead
        ends proven here flow into the shared refuted-state cache exactly
        when the assisted search completes REFUTED."""
        saved_sj, self._sj = self._sj, None
        saved_history = self._history
        self._history = QueryHistory(
            enabled=self.config.simplify_queries, shared=self._refuted_cache
        )
        try:
            self._run_shared(shard, owner=False)
            if shard.refuted:
                self._flush_refuted()
            else:
                self._history.discard_pending()
        finally:
            self._history = saved_history
            self._sj = saved_sj

    # ------------------------------------------------------------------
    # Journaling hooks (no-ops when no journal is installed; subwalk
    # states carry sid 0 and are never journaled)
    # ------------------------------------------------------------------

    def _jkill(
        self,
        state: PathState,
        reason: str,
        detail: str = "",
        label: Optional[int] = None,
    ) -> None:
        sj = self._sj
        if sj is None or state.sid == 0:
            return
        sj.kill(
            state.sid,
            label if label is not None else _trace_label(state.trace),
            reason,
            detail,
        )

    def _jkill_fail(
        self,
        state: PathState,
        fail_reason: Optional[str],
        label: Optional[int] = None,
    ) -> None:
        """Kill attributed from a raw refutation string; solver-unsat kills
        are enriched with the constraint the decision procedure rejected."""
        if self._sj is None or state.sid == 0:
            return
        reason = provenance.classify_kill(fail_reason)
        detail = fail_reason or ""
        if reason == provenance.SOLVER_UNSAT:
            unsat = provenance.take_last_unsat()
            if unsat:
                detail = f"{detail} [{unsat}]" if detail else unsat
        self._jkill(state, reason, detail, label)

    def _flush_refuted(self) -> None:
        """Publish the just-refuted search's recorded states to the shared
        refuted-state cache."""
        pending = self._history.take_pending()
        if pending and self._refuted_cache is not None:
            self._refuted_cache.add_many(pending)

    def _prune_batch(self, states: list["PathState"]) -> list["PathState"]:
        """Entailment-based worklist subsumption over one state's successor
        batch (paper Section 3.3: ``Q1 ∨ Q2 = Q2`` when ``Q1 ⊨ Q2``).

        Only successors with the *identical* continuation are compared, and
        a state is dropped only when dominated by a batch-mate that DFS
        pops *earlier* (later in the list) — if the weaker mate is refuted
        the stronger state is too, and if the mate is witnessed the search
        ends there first either way, so the surviving verdict *and* witness
        are bit-identical to the unpruned run."""
        if len(states) < 2 or not self.config.state_subsumption:
            return states
        kept_rev: list[PathState] = []
        dropped = 0
        for s in reversed(states):
            dominated: Optional[PathState] = None
            for t in kept_rev:
                if s.k is t.k and query_entails(s.query, t.query):
                    dominated = t
                    break
            if dominated is not None:
                dropped += 1
                self._jkill(
                    s,
                    provenance.WORKLIST_SUBSUMED,
                    f"entailed by sibling state s{dominated.sid}:"
                    " refuting the weaker query refutes this one",
                )
                continue
            kept_rev.append(s)
        if not dropped:
            return states
        _WORKLIST_SUBSUMED.inc(dropped)
        kept_rev.reverse()
        return kept_rev

    def run_subwalk(self, stmt: Stmt, query: Query) -> list[Query]:
        """Execute ``stmt`` backwards from ``query``; returns the queries
        at the start of ``stmt``. Used by the loop-invariant inference."""
        collected: list[Query] = []
        stack = [PathState((StmtTask(stmt), ()), query)]
        while stack:
            self._check_deadline(every=16)
            state = stack.pop()
            if state.k == ():
                collected.append(state.query)
                continue
            stack.extend(self._step(state, in_subwalk=True))
        return collected

    def _step(self, state: PathState, in_subwalk: bool = False) -> list[PathState]:
        task, rest = state.k
        if isinstance(task, EnterMethodTask):
            return self._enter_method(task, rest, state, in_subwalk)
        stmt = task.stmt
        if isinstance(stmt, Seq):
            k = rest
            first = True
            for child in stmt.stmts:
                k = (StmtTask(child, task.relevance if first else None), k)
                first = False
            return [PathState(k, state.query, state.trace)]
        if isinstance(stmt, Choice):
            # Guard-relevance (Section 3.2): add the branch guards' path
            # constraints only when some side of the choice can affect the
            # query. Otherwise tag the guards as skippable.
            relevance = (
                None
                if self._choice_relevant(stmt, state.query)
                else state.query.version
            )
            out = []
            for branch in stmt.branches:
                self._spend()
                out.append(
                    PathState(
                        (StmtTask(branch, relevance=relevance), rest),
                        state.query.copy(),
                        state.trace,
                    )
                )
            return out
        if isinstance(stmt, Loop):
            key = ("loop", stmt.label)
            # Subwalk states have a truncated continuation (the loop body
            # only), so they must not consult or feed the cross-search cache.
            dropped = self._history.should_drop(
                key, state.query, flushable=not in_subwalk
            )
            if dropped:
                self._jkill(
                    state,
                    provenance.REFUTED_CACHE_HIT
                    if dropped == "shared"
                    else provenance.LOOP_INVARIANT_DROP,
                    f"loop L{stmt.label}: "
                    + (
                        "an earlier refuted search already proved this"
                        " state a dead end"
                        if dropped == "shared"
                        else "the loop-head history holds an"
                        " already-explored weaker query"
                    ),
                    label=stmt.label,
                )
                return []
            queries = loops.saturate(self, stmt, state.query)
            out = [
                self._continue(PathState(rest, q, state.trace), in_subwalk)
                for q in queries
            ]
            if not out:
                self._jkill(
                    state,
                    provenance.LOOP_INVARIANT_DROP,
                    f"loop L{stmt.label}: invariant inference refuted"
                    " every disjunct",
                    label=stmt.label,
                )
            return out
        assert isinstance(stmt, AtomicStmt)
        return self._atomic(stmt.cmd, task, rest, state, in_subwalk)

    def _continue(self, state: PathState, in_subwalk: bool) -> PathState:
        return state

    def _atomic(
        self,
        cmd: ins.Command,
        task: StmtTask,
        rest: Cons,
        state: PathState,
        in_subwalk: bool,
    ) -> list[PathState]:
        q = state.query
        trace = (cmd.label, state.trace)
        if isinstance(cmd, ins.Assume) and task.relevance is not None:
            if q.version == task.relevance:
                # The branch did not touch the query: the guard is
                # irrelevant path sensitivity; skip it.
                return [PathState(rest, q, trace)]
        if isinstance(cmd, ins.Invoke):
            # Don't pre-record the invoke label: when a callee is entered,
            # its label is recorded at the method-entry crossing instead so
            # the materialized trace reads in forward execution order
            # (invoke before callee body).
            return self._invoke(cmd, rest, state, state.trace, in_subwalk)
        queries = transfer_command(cmd, q, self.ctx)
        queries = self._explode_explicit(queries)
        if not queries:
            self._jkill_fail(state, self.ctx.last_reason, label=cmd.label)
            return []
        return [PathState(rest, qi, trace) for qi in queries]


    def _explode_explicit(self, queries: list[Query]) -> list[Query]:
        if self.config.representation is not Representation.FULLY_EXPLICIT:
            return queries
        new_refs = list(self.ctx.new_refs)
        out: list[Query] = []
        for q in queries:
            split = [q]
            for v in new_refs:
                if len(split) >= 64:
                    break
                next_split = []
                for qs in split:
                    region = qs.region_of(v)
                    if region is None or len(region) <= 1 or len(region) > 16:
                        next_split.append(qs)
                        continue
                    for loc in sorted(region, key=str):
                        q2 = qs.copy()
                        if q2.narrow(v, frozenset({loc})) and q2.check_sat(
                            self.ctx.solver_stats
                        ):
                            next_split.append(q2)
                split = next_split
            out.extend(split)
        return out

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _invoke(
        self,
        cmd: ins.Invoke,
        rest: Cons,
        state: PathState,
        trace: Cons,
        in_subwalk: bool,
    ) -> list[PathState]:
        q = state.query
        # A call that can never return normally makes every later program
        # point unreachable (exceptions are never caught).
        if not self.pta.completion.call_may_complete(cmd.label):
            self.ctx.count_refutation("control: callee never completes normally")
            self._jkill(
                state,
                provenance.CONTROL_UNREACHABLE,
                f"call @L{cmd.label} never completes normally: every later"
                " program point is unreachable",
                label=cmd.label,
            )
            return []
        callees = sorted(self.pta.callees_of(cmd.label))
        if self._fp is not None:
            self._fp.update(callees)
        mod = ModSet()
        for callee in callees:
            mod.update(self.pta.modref.method_mod(callee))
        if not callees:
            mod.calls_unknown = True
        if not self._call_relevant(cmd, q, mod):
            return [PathState(rest, q, (cmd.label, trace))]
        if not callees or len(q.stack) >= self.config.max_call_depth:
            self._skip_call(cmd, q, mod)
            self._jnote_skip(state, cmd)
            return [PathState(rest, q, (cmd.label, trace))]
        callees = self._filter_dispatch(cmd, q, callees)
        out = []
        for callee_qname in callees:
            callee = self.program.methods.get(callee_qname)
            if callee is None:
                q2 = q.copy()
                self._skip_call(cmd, q2, mod)
                self._jnote_skip(state, cmd)
                out.append(PathState(rest, q2, trace))
                continue
            if len(callees) > 1:
                self._spend()
            q2 = q.copy()
            ret_val = None
            if cmd.lhs is not None:
                ret_val = q2.get_local(cmd.lhs)
                if ret_val is not None:
                    q2.del_local(cmd.lhs)
            fid = q2.push_frame(callee_qname, cmd.label)
            if ret_val is not None:
                q2.locals[(fid, "$ret")] = ret_val
            k = (StmtTask(callee.body), (EnterMethodTask(callee_qname), rest))
            out.append(PathState(k, q2, trace))
        if not out:
            self.ctx.count_refutation("dispatch")
            self._jkill(
                state,
                provenance.INSTANCE_CONSTRAINT,
                f"virtual dispatch @L{cmd.label}: no callee is consistent"
                " with the receiver's instance region",
                label=cmd.label,
            )
        return out

    def _jnote_skip(self, state: PathState, cmd: ins.Invoke) -> None:
        """Record the sound-but-lossy callee skip in the journal (a note,
        not a kill: the state survives with weakened constraints)."""
        if self._sj is None or state.sid == 0:
            return
        self._sj.note(
            state.sid,
            provenance.CALLEE_SKIP_DROP,
            f"call @L{cmd.label} skipped soundly: dropped every constraint"
            " the callee might produce (mod/ref fields, statics,"
            " transitively-allocated instances)",
            label=cmd.label,
        )

    def _call_relevant(self, cmd: ins.Invoke, q: Query, mod: ModSet) -> bool:
        if cmd.lhs is not None and q.get_local(cmd.lhs) is not None:
            return True
        return self._mod_touches_query(q, mod, include_locals=False)

    def _mod_touches_query(
        self, q: Query, mod: ModSet, include_locals: bool
    ) -> bool:
        if mod.calls_unknown:
            return q.memory_size() > 0
        if any(mod.writes_field(f) for (_, f) in q.field_cells):
            return True
        if q.array_cells and mod.writes_field(ELEMS):
            return True
        if any(mod.writes_static(c, f) for (c, f) in q.statics):
            return True
        if include_locals and any(
            frame == q.current_frame and var in mod.locals
            for (frame, var) in q.locals
        ):
            return True
        if mod.alloc_sites and self._mentions_sites(q, mod.alloc_sites):
            return True
        return False

    def _choice_relevant(self, stmt: Choice, q: Query) -> bool:
        """True when some branch of the choice may affect the query — by
        writing state the query mentions, or by terminating (throw), which
        makes the surviving side's guard a real path condition."""
        for branch in stmt.branches:
            if self._branch_throws(branch):
                return True
            mod = self._branch_mod(branch)
            if self._mod_touches_query(q, mod, include_locals=True):
                return True
        return False

    def _branch_throws(self, branch: Stmt) -> bool:
        cached = self._branch_throw.get(id(branch))
        if cached is None:
            from ..ir.stmts import walk_commands

            cached = any(
                isinstance(c, ins.ThrowCmd) for c in walk_commands(branch)
            )
            self._branch_throw[id(branch)] = cached
        return cached

    def _branch_mod(self, branch: Stmt) -> ModSet:
        cached = self._branch_mods.get(id(branch))
        if cached is None:
            cached = self.pta.modref.statement_mod(branch)
            self._branch_mods[id(branch)] = cached
        self._fp_note_stmt(branch)
        return cached

    def _fp_note_stmt(self, stmt: Stmt) -> None:
        """Footprint bookkeeping for statement-level mod/ref consultations
        (branch relevance, loop-invariant inference): the verdict depends on
        the summaries of every callee reachable from the statement."""
        if self._fp is None:
            return
        qnames = self._stmt_callees.get(id(stmt))
        if qnames is None:
            from ..ir.stmts import walk_commands

            qnames = frozenset(
                qname
                for cmd in walk_commands(stmt)
                if isinstance(cmd, ins.Invoke)
                for qname in self.pta.callees_of(cmd.label)
            )
            self._stmt_callees[id(stmt)] = qnames
        self._fp.update(qnames)

    def _mentions_sites(self, q: Query, sites: set) -> bool:
        for v in q.all_memory_vars():
            if not v.is_ref:
                continue
            region = q.region_of(v)
            if region is None:
                return True  # unconstrained instance: could be from anywhere
            if any(loc.site in sites for loc in region):
                return True
        return False

    def _skip_call(self, cmd: ins.Invoke, q: Query, mod: ModSet) -> None:
        """Soundly skip a callee: drop every constraint it might produce."""
        if cmd.lhs is not None:
            q.del_local(cmd.lhs)
        if mod.calls_unknown:
            q.statics.clear()
            q.field_cells.clear()
            q.array_cells = []
            q.touch()
            return
        for key in [k for k in q.field_cells if mod.writes_field(k[1])]:
            del q.field_cells[key]
        for key in [k for k in q.statics if mod.writes_static(k[0], k[1])]:
            del q.statics[key]
        if mod.writes_field(ELEMS):
            q.array_cells = []
        # Drop constraints on instances the callee may allocate.
        if mod.alloc_sites:
            doomed: set[SymVar] = set()
            for v in q.all_memory_vars():
                if not v.is_ref:
                    continue
                region = q.region_of(v)
                if region is None or any(loc.site in mod.alloc_sites for loc in region):
                    doomed.add(v)
            if doomed:
                q.locals = {
                    k: v for k, v in q.locals.items() if q.find(v) not in doomed
                }
                q.statics = {
                    k: v for k, v in q.statics.items() if q.find(v) not in doomed
                }
                q.field_cells = {
                    k: v
                    for k, v in q.field_cells.items()
                    if q.find(k[0]) not in doomed and q.find(v) not in doomed
                }
                q.array_cells = [
                    c
                    for c in q.array_cells
                    if q.find(c.base) not in doomed and q.find(c.value) not in doomed
                ]
        q.touch()

    def _filter_dispatch(
        self, cmd: ins.Invoke, q: Query, callees: list[str]
    ) -> list[str]:
        """Keep only callees consistent with the receiver's region."""
        if cmd.kind != "virtual" or cmd.receiver is None:
            return callees
        recv = q.get_local(cmd.receiver)
        if recv is None:
            return callees
        region = q.region_of(recv)
        if region is None:
            return callees
        possible = {
            self.program.resolve_virtual(loc.class_name, cmd.method_name)
            for loc in region
        }
        return [c for c in callees if c in possible]

    # ------------------------------------------------------------------
    # Method entries
    # ------------------------------------------------------------------

    def _enter_method(
        self, task: EnterMethodTask, rest: Cons, state: PathState, in_subwalk: bool
    ) -> list[PathState]:
        q = state.query
        if self._fp is not None:
            self._fp.add(task.qname)
        if not in_subwalk:
            dropped = self._history.should_drop(("entry", task.qname), q)
            if dropped:
                self._jkill(
                    state,
                    provenance.REFUTED_CACHE_HIT
                    if dropped == "shared"
                    else provenance.HISTORY_SUBSUMED,
                    f"entry of {task.qname}: an already-refuted query"
                    " entails this one"
                    if dropped == "shared"
                    else f"entry of {task.qname}: subsumed by a query already"
                    " visited on this search",
                )
                return []
        method = self.program.methods[task.qname]
        if q.stack:
            frame = q.stack[-1]
            invoke = self.program.commands[frame.invoke_label]
            assert isinstance(invoke, ins.Invoke)
            q2 = q
            if not self._bind_entry(q2, method, invoke, pop=True):
                self._jkill_fail(
                    state,
                    q2.fail_reason or self.ctx.last_reason,
                    label=frame.invoke_label,
                )
                return []
            return [PathState(rest, q2, (frame.invoke_label, state.trace))]
        # Empty stack: the absolute entry, or expand into callers.
        if task.qname == self.root:
            if self._entry_satisfiable(q):
                raise _Witnessed(state)
            self._jkill_fail(
                state,
                q.fail_reason
                or self.ctx.last_reason
                or "entry: initial program state contradicts query",
            )
            return []  # unproducible constraints at program start: refuted
        callers = sorted(self.pta.callers_of(task.qname))
        if self._fp is not None:
            self._fp.update(caller for caller, _ in callers)
        out = []
        attempted = 0
        last_fail: Optional[str] = None
        for caller_qname, label in callers:
            invoke = self.program.commands.get(label)
            if not isinstance(invoke, ins.Invoke):
                continue
            self._spend()
            attempted += 1
            q2 = q.copy()
            if not self._bind_entry(
                q2, method, invoke, pop=False, caller_qname=caller_qname
            ):
                last_fail = q2.fail_reason or self.ctx.last_reason
                continue
            k = self._continuation_before(caller_qname, label)
            out.append(PathState(k, q2, (label, state.trace)))
        if not out and not in_subwalk:
            if attempted == 0:
                self._jkill(
                    state,
                    provenance.CONTROL_UNREACHABLE,
                    f"{task.qname} has no callers: the query cannot reach"
                    " the program entry",
                )
            else:
                self._jkill_fail(
                    state,
                    last_fail or "entry binding failed at every caller",
                )
        return out

    def _entry_satisfiable(self, q: Query) -> bool:
        """Does the initial program state satisfy the query? The initial
        heap is empty (so exact heap constraints and locals refute), and
        statics hold null / 0 — a static cell constraint survives only if
        its value can be the default."""
        from ..solver import NULL, LinExpr, eq, ref_eq

        if q.failed:
            return False
        if q.locals or q.field_cells or q.array_cells:
            self.ctx.count_refutation("entry: non-empty heap at program start")
            return False
        for (_, _), value in q.statics.items():
            root = q.find(value)
            if root.is_ref:
                if not q.is_maybe_null(value):
                    self.ctx.count_refutation("entry: static must be null initially")
                    return False
                q.add_pure(ref_eq(root, NULL))
            else:
                q.add_pure(eq(LinExpr.var(root), LinExpr.constant(0)))
        if not q.check_sat(self.ctx.solver_stats):
            self.ctx.count_refutation("entry: initial values contradict query")
            return False
        return True

    def _bind_entry(
        self,
        q: Query,
        method,
        invoke: ins.Invoke,
        pop: bool,
        caller_qname: Optional[str] = None,
    ) -> bool:
        """Translate callee-frame constraints at the method entry into the
        caller's frame (formals become actuals)."""
        from .transfer import _bind_value_into

        callee_frame = q.current_frame
        params = list(method.params)
        bindings: list[tuple[str, SymVar]] = []
        for (frame, var), value in list(q.locals.items()):
            if frame != callee_frame:
                continue
            if var in params:
                bindings.append((var, value))
                del q.locals[(frame, var)]
            else:
                # A non-parameter local constrained at entry: the value of
                # an uninitialized local can satisfy no instance constraint.
                q.fail("entry: constraint on uninitialized local")
                self.ctx.count_refutation("entry")
                return False
        if pop:
            q.pop_frame()
        else:
            assert caller_qname is not None
            q.rebase_to_caller(caller_qname)
        actuals: dict[str, ins.Atom] = {}
        plist = params[1:] if not method.is_static else params
        if not method.is_static:
            assert invoke.receiver is not None
            actuals[params[0]] = ins.VarAtom(invoke.receiver)
        for name, atom in zip(plist, invoke.args):
            actuals[name] = atom
        for var, value in bindings:
            atom = actuals.get(var)
            if atom is None:
                q.fail("entry: parameter/argument mismatch")
                return False
            if not _bind_value_into(q, self.ctx, atom, value):
                self.ctx.count_refutation(q.fail_reason or "entry binding")
                return False
            # Virtual dispatch consistency: the receiver must be an
            # instance that actually dispatches to this method.
            if (
                invoke.kind == "virtual"
                and not method.is_static
                and var == params[0]
                and self.ctx.narrowing
            ):
                recv_region = self.pta.pt_local(
                    q.current_method, invoke.receiver or ""
                )
                compatible = frozenset(
                    loc
                    for loc in recv_region
                    if self.program.resolve_virtual(loc.class_name, method.name)
                    == method.qualified_name
                )
                if not q.narrow(value, compatible):
                    self.ctx.count_refutation("dispatch")
                    return False
        self.ctx.renarrow(q)
        if q.failed or not q.check_sat(self.ctx.solver_stats):
            self.ctx.count_refutation("entry binding unsat")
            return False
        return True

    # ------------------------------------------------------------------
    # Continuations and initial states
    # ------------------------------------------------------------------

    def _parent_map(self, qname: str) -> dict[int, tuple[Stmt, int]]:
        cached = self._parents.get(qname)
        if cached is not None:
            return cached
        parents: dict[int, tuple[Stmt, int]] = {}

        def walk(stmt: Stmt) -> None:
            if isinstance(stmt, Seq):
                for i, child in enumerate(stmt.stmts):
                    parents[id(child)] = (stmt, i)
                    walk(child)
            elif isinstance(stmt, Choice):
                for i, branch in enumerate(stmt.branches):
                    parents[id(branch)] = (stmt, i)
                    walk(branch)
            elif isinstance(stmt, Loop):
                parents[id(stmt.body)] = (stmt, 0)
                walk(stmt.body)

        walk(self.program.methods[qname].body)
        self._parents[qname] = parents
        return parents

    def _continuation_before(self, qname: str, label: int) -> Cons:
        """The continuation for everything that executes before the command
        at ``label`` inside method ``qname`` (excluding the command)."""
        parents = self._parent_map(qname)
        node: Stmt = self.program.statements[label]
        tasks: list[Task] = []
        while True:
            entry = parents.get(id(node))
            if entry is None:
                break
            parent, index = entry
            if isinstance(parent, Seq):
                for i in range(index - 1, -1, -1):
                    tasks.append(StmtTask(parent.stmts[i]))
            elif isinstance(parent, Loop):
                # Starting mid-iteration: the partial prefix was already
                # scheduled above; now saturate at the loop head.
                tasks.append(StmtTask(parent))
            node = parent
        tasks.append(EnterMethodTask(qname))
        k: Cons = ()
        for t in reversed(tasks):
            k = (t, k)
        return k

    def _initial_state(self, edge: HeapEdge, label: int) -> Optional[PathState]:
        """The produced-case query for one producing statement."""
        cmd = self.program.commands[label]
        method = self.program.method_of_label(label)
        q = Query(method.qualified_name)
        self.ctx.begin_command()
        ok = True
        if isinstance(cmd, ins.FieldWrite) or isinstance(cmd, ins.ArrayWrite):
            assert not edge.is_static_root
            src = edge.src
            va = q.new_ref(frozenset({src}), hint=str(src))
            vb = q.new_ref(frozenset({edge.dst}), hint=str(edge.dst))
            q.mark_nonnull(va)
            q.mark_nonnull(vb)
            q.set_local(cmd.base, va)
            if self.ctx.narrowing:
                ok = q.narrow(va, self.pta.pt_local(method.qualified_name, cmd.base))
            from .transfer import _bind_value_into

            ok = ok and _bind_value_into(q, self.ctx, cmd.rhs, vb)
        elif isinstance(cmd, ins.StaticWrite):
            vb = q.new_ref(frozenset({edge.dst}), hint=str(edge.dst))
            q.mark_nonnull(vb)
            from .transfer import _bind_value_into

            ok = _bind_value_into(q, self.ctx, cmd.rhs, vb)
        else:  # pragma: no cover - producers are always writes
            return None
        if not ok or q.failed or not q.check_sat(self.ctx.solver_stats):
            if self._sj is not None:
                sid = self._sj.new_state(0, label, detail="producer")
                reason = provenance.classify_kill(
                    q.fail_reason or self.ctx.last_reason
                )
                self._sj.kill(
                    sid,
                    label,
                    reason,
                    q.fail_reason
                    or self.ctx.last_reason
                    or "producer query unsatisfiable at its own statement",
                )
            return None
        k = self._continuation_before(method.qualified_name, label)
        state = PathState(k, q, (label, ()))
        if self._sj is not None:
            state.sid = self._sj.new_state(0, label, detail="producer")
        try:
            self._spend()
        except SearchTimeout:
            # The budget/deadline died at the root: journal the kill here,
            # because the state never reaches _search's timeout sweep.
            if self._sj is not None:
                self._sj.kill(
                    state.sid,
                    label,
                    provenance.BUDGET_TIMEOUT,
                    "budget or deadline exhausted at the producer root",
                )
            raise
        return state


def _trace_label(trace: Cons) -> Optional[int]:
    """The most recently visited label of a state (None before any)."""
    return trace[0] if trace != () else None


def _materialize(trace: Cons) -> list[int]:
    labels = []
    while trace != ():
        label, trace = trace
        labels.append(label)
    return labels  # newest-first == forward execution order after backwards walk
