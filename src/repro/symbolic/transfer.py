"""Backwards transfer functions: the WIT rules of Figure 4.

Each function takes an atomic command and a query (owned: mutated or copied
freely) and returns the list of pre-queries (disjuncts). An empty list
means every disjunct was refuted at this command. The three refutation
channels of Section 3.2 all live here or in :class:`Query`:

1. *separation* — a produced/not-produced split forces one local to point
   to two distinct instances (caught by unification + the implied
   disequalities of the separating conjunction);
2. *instance constraints* — a ``from`` region becomes empty (axioms (1)
   and (2)), notably in WIT-NEW, WIT-ASSIGN, and WIT-READ;
3. *pure constraints* — the solver reports the accumulated path and data
   constraints unsatisfiable.

The :class:`TransferContext` carries the points-to result and realizes the
three state representations: in ``MIXED`` (and ``FULLY_EXPLICIT``) mode the
boxed region intersections of Figure 4 are applied; in ``FULLY_SYMBOLIC``
mode only the PSE-style alias check (via unification of explicit initial
regions) and the WIT-NEW allocation-site check remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..ir import instructions as ins
from ..pointsto import ELEMS, PointsToResult
from ..pointsto.graph import AbsLoc
from ..solver import NULL, LinExpr, eq, le, lt, ne, ref_eq, ref_ne
from ..solver.core import SolverStats
from ..solver.terms import LinAtom
from .config import Representation, SearchConfig
from .query import Query
from .symvar import SymVar

ARRAY_LEN_FIELD = "@len"
_DNF_CAP = 8


@dataclass
class TransferContext:
    """Shared state threaded through every transfer application."""

    pta: PointsToResult
    config: SearchConfig
    solver_stats: SolverStats = field(default_factory=SolverStats)
    #: Set of REF variables created by the current transfer application;
    #: the executor uses it for FULLY_EXPLICIT region splitting.
    new_refs: list[SymVar] = field(default_factory=list)
    refutations: dict[str, int] = field(default_factory=dict)
    #: Raw reason string of the most recent refutation, so the journal can
    #: classify a kill after the transfer that caused it has returned.
    last_reason: Optional[str] = None
    _site_locs: Optional[dict] = None

    @property
    def narrowing(self) -> bool:
        return self.config.representation is not Representation.FULLY_SYMBOLIC

    def begin_command(self) -> None:
        self.new_refs = []

    def count_refutation(self, reason: str) -> None:
        self.last_reason = reason
        kind = reason.split(":")[0]
        self.refutations[kind] = self.refutations.get(kind, 0) + 1

    def site_locs(self, site: ins.AllocSite) -> frozenset[AbsLoc]:
        """All abstract locations of an allocation site in the graph."""
        if self._site_locs is None:
            table: dict = {}
            for loc in self.pta.graph.all_abs_locs():
                table.setdefault(loc.site, set()).add(loc)
            self._site_locs = {s: frozenset(v) for s, v in table.items()}
        return self._site_locs.get(site, frozenset({AbsLoc(site)}))

    def region_local(self, method: str, var: str) -> Optional[frozenset]:
        if not self.narrowing:
            return None
        return self.pta.pt_local(method, var)

    def region_field(self, q: Query, base: SymVar, field_name: str) -> Optional[frozenset]:
        if not self.narrowing:
            return None
        region = q.region_of(base)
        if region is None:
            return None
        return self.pta.pt_field_of_set(region, field_name)

    def region_static(self, class_name: str, field_name: str) -> Optional[frozenset]:
        if not self.narrowing:
            return None
        return self.pta.pt_static(class_name, field_name)

    def fresh_ref(
        self, q: Query, region: Optional[frozenset], maybe_null: bool, hint: str = ""
    ) -> SymVar:
        v = q.new_ref(region, maybe_null=maybe_null, hint=hint)
        self.new_refs.append(v)
        return v

    def renarrow(self, q: Query) -> None:
        """Restore the query invariant that every heap-cell value's region
        is within pt of its base's region — sound because the up-front
        points-to sets over-approximate every reachable heap. Without this,
        narrowing a cell's *base* (e.g. binding a receiver at a method
        entry) would leave the stale wider region on the value."""
        if not self.narrowing:
            return
        changed = True
        while changed and not q.failed:
            changed = False
            for (base, field_name), value in list(q.field_cells.items()):
                if field_name.startswith("@") and field_name != "@elems":
                    continue
                if not value.is_ref:
                    continue
                breg = q.region_of(base)
                vreg = q.region_of(value)
                if breg is None or vreg is None:
                    continue
                target = self.pta.pt_field_of_set(breg, field_name)
                if not vreg <= target:
                    q.narrow(value, target)
                    changed = True
                    if q.failed:
                        return
            for cell in list(q.array_cells):
                breg = q.region_of(cell.base)
                vreg = q.region_of(cell.value)
                if breg is None or vreg is None or not cell.value.is_ref:
                    continue
                from ..pointsto import ELEMS

                target = self.pta.pt_field_of_set(breg, ELEMS)
                if not vreg <= target:
                    q.narrow(cell.value, target)
                    changed = True
                    if q.failed:
                        return


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def transfer_command(cmd: ins.Command, q: Query, ctx: TransferContext) -> list[Query]:
    """Apply the backwards transfer of ``cmd`` to ``q``; returns the
    satisfiable pre-queries."""
    ctx.begin_command()
    if isinstance(cmd, ins.Assign):
        results = _assign(cmd, q, ctx)
    elif isinstance(cmd, ins.BinOpCmd):
        results = _binop(cmd, q, ctx)
    elif isinstance(cmd, ins.UnOpCmd):
        results = _unop(cmd, q, ctx)
    elif isinstance(cmd, ins.New):
        results = _new(cmd, q, ctx, is_array=False)
    elif isinstance(cmd, ins.NewArray):
        results = _new(cmd, q, ctx, is_array=True)
    elif isinstance(cmd, ins.FieldRead):
        results = _field_read(cmd, q, ctx)
    elif isinstance(cmd, ins.FieldWrite):
        results = _field_write(cmd, q, ctx)
    elif isinstance(cmd, ins.StaticRead):
        results = _static_read(cmd, q, ctx)
    elif isinstance(cmd, ins.StaticWrite):
        results = _static_write(cmd, q, ctx)
    elif isinstance(cmd, ins.ArrayRead):
        results = _array_read(cmd, q, ctx)
    elif isinstance(cmd, ins.ArrayWrite):
        results = _array_write(cmd, q, ctx)
    elif isinstance(cmd, ins.ArrayLen):
        results = _array_len(cmd, q, ctx)
    elif isinstance(cmd, ins.CastCmd):
        results = _cast(cmd, q, ctx)
    elif isinstance(cmd, ins.InstanceOfCmd):
        results = _instanceof(cmd, q, ctx)
    elif isinstance(cmd, ins.ThrowCmd):
        # No execution continues past an uncaught exception: any query
        # after a throw is unreachable.
        q.fail("control: program point after throw is unreachable")
        results = [q]
    elif isinstance(cmd, ins.Assume):
        results = apply_assume(q, ctx, cmd.expr, cmd.polarity)
    elif isinstance(cmd, ins.Nondet):
        q.del_local(cmd.lhs)
        results = [q]
    elif isinstance(cmd, ins.Invoke):
        raise ValueError("Invoke must be handled by the executor")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown command {type(cmd).__name__}")
    return _filter_sat(results, ctx)


def _filter_sat(queries: list[Query], ctx: TransferContext) -> list[Query]:
    out = []
    for q in queries:
        if not q.failed:
            ctx.renarrow(q)
        if q.failed:
            ctx.count_refutation(q.fail_reason or "unknown")
            continue
        if not q.check_sat(ctx.solver_stats):
            ctx.count_refutation(q.fail_reason or "pure constraints")
            continue
        out.append(q)
    return out


# ---------------------------------------------------------------------------
# Operand binding helpers
# ---------------------------------------------------------------------------


def _bind_base(q: Query, ctx: TransferContext, var: str) -> Optional[SymVar]:
    """The value of a dereferenced local (a receiver or field-access base):
    definitely non-null, drawn from pt(var)."""
    u = q.get_local(var)
    if u is None:
        u = ctx.fresh_ref(
            q, ctx.region_local(q.current_method, var), maybe_null=False, hint=var
        )
        q.set_local(var, u)
    else:
        q.mark_nonnull(u)
        q.narrow(u, ctx.region_local(q.current_method, var))
    return None if q.failed else u


def _bind_data_local(q: Query, ctx: TransferContext, var: str) -> SymVar:
    v = q.get_local(var)
    if v is None:
        v = q.new_data(hint=var)
        q.set_local(var, v)
    return v


def _atom_to_linexpr(
    q: Query, ctx: TransferContext, atom: ins.Atom
) -> Optional[LinExpr]:
    if isinstance(atom, ins.IntAtom):
        return LinExpr.constant(atom.value)
    if isinstance(atom, ins.BoolAtom):
        return LinExpr.constant(1 if atom.value else 0)
    if isinstance(atom, ins.VarAtom):
        return LinExpr.var(q.find(_bind_data_local(q, ctx, atom.name)))
    return None  # null: not an integer


def _atom_to_ref(
    q: Query, ctx: TransferContext, atom: ins.Atom
) -> Union[SymVar, object, None]:
    """A reference-valued operand: a SymVar, NULL, or None on type error."""
    if isinstance(atom, ins.NullAtom):
        return NULL
    if isinstance(atom, ins.VarAtom):
        u = q.get_local(atom.name)
        if u is None:
            u = ctx.fresh_ref(
                q,
                ctx.region_local(q.current_method, atom.name),
                maybe_null=True,
                hint=atom.name,
            )
            q.set_local(atom.name, u)
        return u
    return None


def _bind_value_into(
    q: Query, ctx: TransferContext, atom: ins.Atom, v: SymVar
) -> bool:
    """Backwards-bind the value of ``atom`` to instance/data ``v`` — the
    shared core of WIT-ASSIGN and the produced cases of the write rules."""
    if isinstance(atom, ins.VarAtom):
        existing = q.get_local(atom.name)
        if existing is not None:
            if not q.unify(existing, v):
                return False
        else:
            q.set_local(atom.name, v)
        if v.is_ref:
            return q.narrow(v, ctx.region_local(q.current_method, atom.name))
        return True
    if isinstance(atom, ins.NullAtom):
        if not v.is_ref:
            q.fail("kind mismatch: null bound to data value")
            return False
        if not q.is_maybe_null(v):
            q.fail("separation: non-null instance equated with null")
            return False
        q.add_pure(ref_eq(q.find(v), NULL))
        return True
    if isinstance(atom, (ins.IntAtom, ins.BoolAtom)):
        if v.is_ref:
            q.fail("kind mismatch: constant bound to instance")
            return False
        value = atom.value if isinstance(atom, ins.IntAtom) else int(atom.value)
        q.add_pure(eq(LinExpr.var(q.find(v)), LinExpr.constant(value)))
        return True
    raise TypeError(f"unknown atom {atom!r}")


# ---------------------------------------------------------------------------
# WIT-ASSIGN and pure computation
# ---------------------------------------------------------------------------


def _assign(cmd: ins.Assign, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    if not _bind_value_into(q, ctx, cmd.rhs, v):
        return [q]  # failed flag set; filtered by caller
    return [q]


def _bool_value(q: Query, v: SymVar) -> Optional[bool]:
    """Is v's truth value determined by the pure constraints?"""
    root = q.find(v)
    for atom in q.canonical_pure():
        if isinstance(atom, LinAtom) and atom.op == "==":
            coeffs = atom.expr.as_dict()
            if set(coeffs) == {root} and abs(coeffs[root]) == 1:
                value = -atom.expr.const * coeffs[root]
                if value in (0, 1):
                    return bool(value)
    return None


_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _cmp_atom(op: str, left: LinExpr, right: LinExpr):
    if op == "<":
        return lt(left, right)
    if op == "<=":
        return le(left, right)
    if op == ">":
        return lt(right, left)
    if op == ">=":
        return le(right, left)
    if op == "==":
        return eq(left, right)
    if op == "!=":
        return ne(left, right)
    raise ValueError(op)


def _binop(cmd: ins.BinOpCmd, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    op = cmd.op
    vexpr = LinExpr.var(q.find(v))
    if op in ("+", "-"):
        left = _atom_to_linexpr(q, ctx, cmd.left)
        right = _atom_to_linexpr(q, ctx, cmd.right)
        if left is None or right is None:
            return [q]
        rhs = left.add(right) if op == "+" else left.sub(right)
        q.add_pure(eq(vexpr, rhs))
        return [q]
    if op == "*":
        # Linear only when one side is a constant.
        if isinstance(cmd.left, ins.IntAtom):
            right = _atom_to_linexpr(q, ctx, cmd.right)
            if right is not None:
                q.add_pure(eq(vexpr, right.scale(cmd.left.value)))
            return [q]
        if isinstance(cmd.right, ins.IntAtom):
            left = _atom_to_linexpr(q, ctx, cmd.left)
            if left is not None:
                q.add_pure(eq(vexpr, left.scale(cmd.right.value)))
            return [q]
        return [q]  # non-linear: leave v unconstrained (sound)
    if op in ("/", "%"):
        return [q]  # unconstrained (sound)
    if op in ("<", "<=", ">", ">=") or (op in ("==", "!=") and not cmd.ref_operands):
        return _comparison(cmd, q, ctx, v)
    if op in ("==", "!=") and cmd.ref_operands:
        return _ref_comparison(cmd, q, ctx, v)
    if op in ("&&", "||"):
        return _bool_connective(cmd, q, ctx, v)
    raise ValueError(f"unknown operator {op!r}")


def _comparison(
    cmd: ins.BinOpCmd, q: Query, ctx: TransferContext, v: SymVar
) -> list[Query]:
    truth = _bool_value(q, v)
    results = []
    for value in (True, False) if truth is None else (truth,):
        qi = q.copy() if truth is None else q
        left = _atom_to_linexpr(qi, ctx, cmd.left)
        right = _atom_to_linexpr(qi, ctx, cmd.right)
        if left is None or right is None:
            results.append(qi)
            continue
        op = cmd.op if value else _NEGATED[cmd.op]
        qi.add_pure(_cmp_atom(op, left, right))
        if truth is None:
            qi.add_pure(
                eq(LinExpr.var(qi.find(v)), LinExpr.constant(1 if value else 0))
            )
        results.append(qi)
    return results


def _ref_comparison(
    cmd: ins.BinOpCmd, q: Query, ctx: TransferContext, v: SymVar
) -> list[Query]:
    truth = _bool_value(q, v)
    results = []
    for value in (True, False) if truth is None else (truth,):
        qi = q.copy() if truth is None else q
        left = _atom_to_ref(qi, ctx, cmd.left)
        right = _atom_to_ref(qi, ctx, cmd.right)
        if left is None or right is None:
            results.append(qi)
            continue
        is_eq = (cmd.op == "==") == value
        _add_ref_relation(qi, left, right, is_eq)
        if truth is None and not qi.failed:
            qi.add_pure(
                eq(LinExpr.var(qi.find(v)), LinExpr.constant(1 if value else 0))
            )
        results.append(qi)
    return results


def _add_ref_relation(q: Query, left, right, is_eq: bool) -> None:
    if is_eq and isinstance(left, SymVar) and isinstance(right, SymVar):
        q.unify(left, right)  # intersects regions: an instance-constraint check
        return
    lterm = q.find(left) if isinstance(left, SymVar) else left
    rterm = q.find(right) if isinstance(right, SymVar) else right
    q.add_pure(ref_eq(lterm, rterm) if is_eq else ref_ne(lterm, rterm))


def _bool_connective(
    cmd: ins.BinOpCmd, q: Query, ctx: TransferContext, v: SymVar
) -> list[Query]:
    truth = _bool_value(q, v)
    results: list[Query] = []

    def with_operands(qi: Query, lval: Optional[bool], rval: Optional[bool]) -> Query:
        for atom, val in ((cmd.left, lval), (cmd.right, rval)):
            if val is None:
                continue
            expr = _atom_to_linexpr(qi, ctx, atom)
            if expr is not None:
                qi.add_pure(eq(expr, LinExpr.constant(1 if val else 0)))
        return qi

    for value in (True, False) if truth is None else (truth,):
        conj = cmd.op == "&&"
        if value == conj:
            # && true  or  || false: both operands forced.
            qi = q.copy()
            qi = with_operands(qi, conj, conj)
            if truth is None:
                qi.add_pure(
                    eq(LinExpr.var(qi.find(v)), LinExpr.constant(1 if value else 0))
                )
            results.append(qi)
        else:
            # && false or || true: either operand suffices — a case split.
            for which in (0, 1):
                qi = q.copy()
                lval = (not conj) if which == 0 else None
                rval = (not conj) if which == 1 else None
                qi = with_operands(qi, lval, rval)
                if truth is None:
                    qi.add_pure(
                        eq(
                            LinExpr.var(qi.find(v)),
                            LinExpr.constant(1 if value else 0),
                        )
                    )
                results.append(qi)
    return results


def _unop(cmd: ins.UnOpCmd, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    operand = _atom_to_linexpr(q, ctx, cmd.operand)
    if operand is None:
        return [q]
    vexpr = LinExpr.var(q.find(v))
    if cmd.op == "!":
        q.add_pure(eq(vexpr, LinExpr.constant(1).sub(operand)))
    else:  # unary minus
        q.add_pure(eq(vexpr, operand.scale(-1)))
    return [q]


# ---------------------------------------------------------------------------
# Casts and type tests
# ---------------------------------------------------------------------------


def _compatible_locs(ctx: TransferContext, region, class_name: str, positive: bool):
    """The subset of ``region`` whose dynamic type (does / does not) match
    ``class_name``."""
    table = ctx.pta.program.class_table
    return frozenset(
        loc
        for loc in region
        if table.site_is_instance(loc.site, class_name) == positive
    )


def _cast(cmd: ins.CastCmd, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    # The cast result IS the operand (same object, possibly null); reaching
    # any point after the cast implies it succeeded, so the value's region
    # is restricted to types compatible with the target.
    u = q.get_local(cmd.src)
    if u is None:
        q.set_local(cmd.src, v)
        q.narrow(v, ctx.region_local(q.current_method, cmd.src))
    else:
        if not q.unify(u, v):
            return [q]
    region = q.region_of(v)
    if region is not None:
        q.narrow(v, _compatible_locs(ctx, region, cmd.class_name, positive=True))
    return [q]


def _instanceof(cmd: ins.InstanceOfCmd, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    truth = _bool_value(q, v)
    results = []
    for value in (True, False) if truth is None else (truth,):
        qi = q.copy() if truth is None else q
        u = qi.get_local(cmd.src)
        if u is None:
            u = ctx.fresh_ref(
                qi,
                ctx.region_local(qi.current_method, cmd.src),
                maybe_null=True,
                hint=cmd.src,
            )
            qi.set_local(cmd.src, u)
        if value:
            # instanceof true: non-null and type-compatible.
            qi.mark_nonnull(u)
            region = qi.region_of(u)
            if region is not None and not qi.failed:
                qi.narrow(u, _compatible_locs(ctx, region, cmd.class_name, True))
        else:
            # instanceof false: null, or an incompatible instance. Null
            # remains possible (maybe_null is untouched); the instance
            # case restricts to incompatible locations.
            region = qi.region_of(u)
            if region is not None:
                qi.narrow(u, _compatible_locs(ctx, region, cmd.class_name, False))
        if truth is None and not qi.failed:
            qi.add_pure(
                eq(LinExpr.var(qi.find(v)), LinExpr.constant(1 if value else 0))
            )
        results.append(qi)
    return results


# ---------------------------------------------------------------------------
# WIT-NEW
# ---------------------------------------------------------------------------


def _new(
    cmd: Union[ins.New, ins.NewArray],
    q: Query,
    ctx: TransferContext,
    is_array: bool,
) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    # Arrays: the allocation fixes the length.
    if is_array:
        length = q.get_field(v, ARRAY_LEN_FIELD)
        if length is not None:
            size = _atom_to_linexpr(q, ctx, cmd.size)
            if size is not None:
                q.add_pure(eq(LinExpr.var(q.find(length)), size))
            q.del_field(v, ARRAY_LEN_FIELD)
    q.del_local(cmd.lhs)
    q.mark_nonnull(v)
    # Allocation-site check (kept in every representation, cf. Table 2 setup).
    if q.region_of(v) is not None:
        if not q.narrow(v, ctx.site_locs(cmd.site)):
            return [q]
        if not _constrain_allocation_context(cmd, q, ctx, v):
            return [q]
    # The instance does not exist before its allocation: any remaining
    # occurrence in the memory is a contradiction...
    if q.mentions_in_memory(v):
        q.fail("instance constraint: instance used before its allocation")
        return [q]
    # ...and pure constraints on it can be dropped (the existential is gone).
    root = q.find(v)
    q.drop_pure_if(lambda a: root in {q.find(x) for x in a.vars() if isinstance(x, SymVar)})
    q.regions.pop(root, None)
    return [q]


def _constrain_allocation_context(
    cmd: Union[ins.New, ins.NewArray], q: Query, ctx: TransferContext, v: SymVar
) -> bool:
    """A context-sensitive abstract location pins the allocating method's
    receiver: ``AbsLoc(site, (s1, ...))`` is only produced when ``this`` is
    an instance of site ``s1`` (object-sensitive heap contexts). Narrow the
    current ``this`` accordingly — this is what separates ``vec0.arr1``
    from ``vec1.arr1`` in the paper's Figure 2 reasoning."""
    if not ctx.narrowing:
        return True
    region = q.region_of(v)
    if not region or any(not loc.hctx for loc in region):
        return True  # some disjunct is context-free: nothing to learn
    if any(not isinstance(loc.hctx[0], ins.AllocSite) for loc in region):
        # Non-object-sensitive contexts (e.g. k-CFA call strings) carry no
        # receiver information.
        return True
    method = ctx.pta.program.methods.get(q.current_method)
    if method is None or method.is_static:
        return True
    receiver_sites = {loc.hctx[0] for loc in region}
    this_var = q.get_local("this")
    if this_var is None:
        this_var = ctx.fresh_ref(
            q,
            ctx.region_local(q.current_method, "this"),
            maybe_null=False,
            hint="this",
        )
        q.set_local("this", this_var)
    this_region = q.region_of(this_var)
    if this_region is None:
        return True
    compatible = frozenset(
        loc for loc in this_region if loc.site in receiver_sites
    )
    return q.narrow(this_var, compatible)


# ---------------------------------------------------------------------------
# WIT-READ / WIT-WRITE (instance fields)
# ---------------------------------------------------------------------------


def _field_read(cmd: ins.FieldRead, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    u = _bind_base(q, ctx, cmd.base)
    if u is None:
        return [q]
    if v.is_ref:
        q.narrow(v, ctx.region_field(q, u, cmd.field_name))
        if q.failed:
            return [q]
    q.set_field(u, cmd.field_name, v)
    return [q]


def _field_write(cmd: ins.FieldWrite, q: Query, ctx: TransferContext) -> list[Query]:
    cells = [
        (base, value)
        for (base, field_name), value in q.field_cells.items()
        if field_name == cmd.field_name
    ]
    if not cells:
        return [q]
    results: list[Query] = []
    # Produced cases: the write created cell (b, f) ↦ u.
    for base, value in cells:
        if isinstance(cmd.rhs, ins.NullAtom):
            continue  # a null store produces no points-to edge
        qi = q.copy()
        ux = _bind_base(qi, ctx, cmd.base)
        if ux is None or not qi.unify(ux, base):
            if not qi.failed:
                qi.fail("separation: write base cannot alias cell base")
            results.append(qi)
            continue
        qi.del_field(base, cmd.field_name)
        _bind_value_into(qi, ctx, cmd.rhs, value)
        results.append(qi)
    # Not-produced case: the write hit some other instance.
    ux = _bind_base(q, ctx, cmd.base)
    if ux is not None:
        diseqs = []
        for base, _ in cells:
            atom = ref_ne(q.find(ux), q.find(base))
            diseqs.append(atom)
            q.add_pure(atom)
        if q.check_sat(ctx.solver_stats):
            # Disaliasing simplification (Section 3.3): the local check
            # passed; drop the explicit disequalities and keep only the
            # separation- and instance-constraint-implied information.
            dropped = set(map(id, diseqs))
            q.pure = [(a, g) for a, g in q.pure if id(a) not in dropped]
            results.append(q)
        else:
            ctx.count_refutation("separation")
    else:
        results.append(q)  # failed; filtered later
    return results


# ---------------------------------------------------------------------------
# Statics
# ---------------------------------------------------------------------------


def _static_read(cmd: ins.StaticRead, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    if v.is_ref:
        q.narrow(v, ctx.region_static(cmd.class_name, cmd.field_name))
        if q.failed:
            return [q]
    q.set_static(cmd.class_name, cmd.field_name, v)
    return [q]


def _static_write(cmd: ins.StaticWrite, q: Query, ctx: TransferContext) -> list[Query]:
    u = q.get_static(cmd.class_name, cmd.field_name)
    if u is None:
        return [q]
    # A static write is always a strong update of that unique cell.
    q.del_static(cmd.class_name, cmd.field_name)
    _bind_value_into(q, ctx, cmd.rhs, u)
    return [q]


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------


def _array_len(cmd: ins.ArrayLen, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    u = _bind_base(q, ctx, cmd.base)
    if u is None:
        return [q]
    q.set_field(u, ARRAY_LEN_FIELD, v)
    return [q]


def _index_var(q: Query, ctx: TransferContext, atom: ins.Atom) -> SymVar:
    if isinstance(atom, ins.VarAtom):
        return _bind_data_local(q, ctx, atom.name)
    v = q.new_data(hint="idx")
    value = atom.value if isinstance(atom, ins.IntAtom) else 0
    q.add_pure(eq(LinExpr.var(v), LinExpr.constant(value)))
    return v


def _array_read(cmd: ins.ArrayRead, q: Query, ctx: TransferContext) -> list[Query]:
    v = q.get_local(cmd.lhs)
    if v is None:
        return [q]
    q.del_local(cmd.lhs)
    u = _bind_base(q, ctx, cmd.base)
    if u is None:
        return [q]
    if v.is_ref:
        q.narrow(v, ctx.region_field(q, u, ELEMS))
        if q.failed:
            return [q]
    vi = _index_var(q, ctx, cmd.index)
    q.add_array_cell(u, vi, v)
    return [q]


def _array_write(cmd: ins.ArrayWrite, q: Query, ctx: TransferContext) -> list[Query]:
    cells = list(q.array_cells)
    if not cells:
        return [q]
    results: list[Query] = []
    # Produced cases.
    for cell in cells:
        if isinstance(cmd.rhs, ins.NullAtom):
            continue
        qi = q.copy()
        ux = _bind_base(qi, ctx, cmd.base)
        if ux is None or not qi.unify(ux, cell.base):
            continue
        live = next(
            c
            for c in qi.array_cells
            if qi.find(c.index) is qi.find(cell.index)
            and qi.find(c.base) is qi.find(ux)
        )
        wi = _index_var(qi, ctx, cmd.index)
        qi.add_pure(eq(LinExpr.var(qi.find(wi)), LinExpr.var(qi.find(live.index))))
        qi.remove_array_cell(live)
        _bind_value_into(qi, ctx, cmd.rhs, live.value)
        results.append(qi)
    # Not-produced: for each cell, base differs or index differs.
    ux = _bind_base(q, ctx, cmd.base)
    if ux is None:
        results.append(q)
        return results
    wi = _index_var(q, ctx, cmd.index)
    ambiguous = []
    for cell in q.array_cells:
        rbase = q.region_of(cell.base)
        rux = q.region_of(ux)
        if (
            ctx.narrowing
            and rbase is not None
            and rux is not None
            and not (rbase & rux)
        ):
            continue  # bases provably disjoint: this cell is untouched
        if q.find(cell.base) is q.find(ux):
            ambiguous.append(("index", cell))
        else:
            ambiguous.append(("either", cell))
    splits = [q]
    for kind, cell in ambiguous:
        if len(splits) > ctx.config.max_array_case_splits:
            break  # fall back to dropping disaliasing info (sound)
        next_splits = []
        for qs in splits:
            if kind == "index" or True:
                # Case A: different index.
                qa = qs.copy()
                qa.add_pure(
                    ne(LinExpr.var(qa.find(wi)), LinExpr.var(qa.find(cell.index)))
                )
                next_splits.append(qa)
            if kind == "either":
                # Case B: different base (disequality dropped after check).
                qb = qs.copy()
                atom = ref_ne(qb.find(ux), qb.find(cell.base))
                qb.add_pure(atom)
                if qb.check_sat(ctx.solver_stats):
                    qb.pure = [(a, g) for a, g in qb.pure if a is not atom]
                    next_splits.append(qb)
        splits = next_splits
    results.extend(splits)
    return results


# ---------------------------------------------------------------------------
# WIT-ASSUME (guards)
# ---------------------------------------------------------------------------


def apply_assume(
    q: Query, ctx: TransferContext, expr: ins.PureExpr, polarity: bool
) -> list[Query]:
    """Interpret a branch guard in the current memory (e[M] of WIT-ASSUME),
    splitting on disjunctions. Guard atoms count against the
    path-constraint cap."""
    disjuncts = _dnf(expr, polarity)
    if disjuncts is None:
        return [q]  # guard too complex: sound to ignore
    results = []
    for i, conds in enumerate(disjuncts):
        qi = q.copy() if i < len(disjuncts) - 1 else q
        ok = True
        for cond in conds:
            if not _apply_cond(qi, ctx, cond):
                ok = False
                break
        if ok or qi.failed:
            results.append(qi)
    return results


def _dnf(expr: ins.PureExpr, polarity: bool) -> Optional[list[list[tuple]]]:
    if isinstance(expr, ins.PBool):
        return [[]] if expr.value == polarity else []
    if isinstance(expr, ins.PNot):
        return _dnf(expr.operand, not polarity)
    if isinstance(expr, (ins.PVar, ins.PField, ins.PStatic)):
        return [[("bool", expr, polarity)]]
    if isinstance(expr, ins.PBin):
        op = expr.op
        if op in ("&&", "||"):
            conj = (op == "&&") == polarity  # && under T, || under F distribute as AND
            left = _dnf(expr.left, polarity)
            right = _dnf(expr.right, polarity)
            if left is None or right is None:
                return None
            if conj:
                product = [l + r for l in left for r in right]
                return product if len(product) <= _DNF_CAP else None
            union = left + right
            return union if len(union) <= _DNF_CAP else None
        if op in ("<", "<=", ">", ">="):
            actual = op if polarity else _NEGATED[op]
            return [[("cmp", actual, expr.left, expr.right)]]
        if op in ("==", "!="):
            if expr.ref_operands:
                is_eq = (op == "==") == polarity
                return [[("refcmp", is_eq, expr.left, expr.right)]]
            actual = op if polarity else _NEGATED[op]
            return [[("cmp", actual, expr.left, expr.right)]]
        return None  # arithmetic at boolean position: malformed
    if isinstance(expr, (ins.PInt, ins.PNull)):
        return None
    return None


def _apply_cond(q: Query, ctx: TransferContext, cond: tuple) -> bool:
    kind = cond[0]
    cap = ctx.config.max_path_constraints
    if kind == "bool":
        _, term, value = cond
        expr = _term_to_linexpr(q, ctx, term)
        if expr is None:
            return True
        q.add_pure(
            eq(expr, LinExpr.constant(1 if value else 0)), guard=True, cap=cap
        )
        return not q.failed
    if kind == "cmp":
        _, op, left, right = cond
        lexpr = _term_to_linexpr(q, ctx, left)
        rexpr = _term_to_linexpr(q, ctx, right)
        if lexpr is None or rexpr is None:
            return True
        q.add_pure(_cmp_atom(op, lexpr, rexpr), guard=True, cap=cap)
        return not q.failed
    if kind == "refcmp":
        _, is_eq, left, right = cond
        lval = _term_to_ref(q, ctx, left)
        rval = _term_to_ref(q, ctx, right)
        if lval is None or rval is None:
            return True
        _add_ref_relation(q, lval, rval, is_eq)
        return not q.failed
    raise ValueError(kind)


def _term_to_linexpr(
    q: Query, ctx: TransferContext, term: ins.PureExpr
) -> Optional[LinExpr]:
    if isinstance(term, ins.PInt):
        return LinExpr.constant(term.value)
    if isinstance(term, ins.PBool):
        return LinExpr.constant(1 if term.value else 0)
    if isinstance(term, ins.PVar):
        return LinExpr.var(q.find(_bind_data_local(q, ctx, term.name)))
    if isinstance(term, ins.PField):
        base = _term_to_ref(q, ctx, term.base)
        if not isinstance(base, SymVar):
            return None
        q.mark_nonnull(base)
        value = q.get_field(base, term.field)
        if value is None:
            value = q.new_data(hint=term.field)
            q.set_field(base, term.field, value)
        return LinExpr.var(q.find(value)) if not value.is_ref else None
    if isinstance(term, ins.PStatic):
        value = q.get_static(term.class_name, term.field)
        if value is None:
            value = q.new_data(hint=term.field)
            q.set_static(term.class_name, term.field, value)
        return LinExpr.var(q.find(value)) if not value.is_ref else None
    if isinstance(term, ins.PBin) and term.op in ("+", "-", "*"):
        left = _term_to_linexpr(q, ctx, term.left)
        right = _term_to_linexpr(q, ctx, term.right)
        if left is None or right is None:
            return None
        if term.op == "+":
            return left.add(right)
        if term.op == "-":
            return left.sub(right)
        if left.is_constant:
            return right.scale(left.const)
        if right.is_constant:
            return left.scale(right.const)
        return None
    return None


def _term_to_ref(q: Query, ctx: TransferContext, term: ins.PureExpr):
    if isinstance(term, ins.PNull):
        return NULL
    if isinstance(term, ins.PVar):
        u = q.get_local(term.name)
        if u is None:
            u = ctx.fresh_ref(
                q,
                ctx.region_local(q.current_method, term.name),
                maybe_null=True,
                hint=term.name,
            )
            q.set_local(term.name, u)
        return u
    if isinstance(term, ins.PField):
        base = _term_to_ref(q, ctx, term.base)
        if not isinstance(base, SymVar):
            return None
        q.mark_nonnull(base)
        value = q.get_field(base, term.field)
        if value is None:
            value = ctx.fresh_ref(
                q,
                ctx.region_field(q, base, term.field),
                maybe_null=True,
                hint=term.field,
            )
            q.set_field(base, term.field, value)
        return value
    if isinstance(term, ins.PStatic):
        value = q.get_static(term.class_name, term.field)
        if value is None:
            value = ctx.fresh_ref(
                q,
                ctx.region_static(term.class_name, term.field),
                maybe_null=True,
                hint=term.field,
            )
            q.set_static(term.class_name, term.field, value)
        return value
    return None
