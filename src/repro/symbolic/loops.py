"""On-the-fly loop-invariant inference (Section 3.3).

Arriving backwards at a loop head with query ``Q``, we compute a
*disjunctive invariant*: the least set ``S ∋ Q`` of queries at the head
closed under the backwards transfer of the loop body — i.e. every state at
the head that can reach ``Q`` through some number of iterations is covered
by ``S``. Termination is forced by over-approximation (WIT-ABSTRACTION):

* pure constraints that the loop body may modify are dropped (the paper's
  "trivial widening" on the base domain);
* materialization is bounded: memory constraints introduced during the
  fixpoint beyond the per-location bound are dropped;
* if the fixpoint still does not converge within ``max_loop_passes``, every
  pending query is weakened to the drop-all form, and as a last resort to
  ``any`` (which can only make the edge *witnessed*, never unsoundly
  refuted).

The ``DROP_ALL`` mode is the ablation of hypothesis (3) in Section 4: it
drops every possibly-affected constraint immediately, which loses the
multi-container precision the full inference retains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import metrics, trace
from ..pointsto.modref import ModSet
from .config import LoopInference
from .query import Query
from .simplification import query_entails
from .symvar import SymVar

if TYPE_CHECKING:  # pragma: no cover
    from .executor import Engine
    from ..ir.stmts import Loop

_SATURATIONS = metrics.counter("executor.loop_saturations")
_INVARIANT_SIZE = metrics.histogram("executor.loop_invariant_size")


def saturate(engine: "Engine", loop: "Loop", query: Query) -> list[Query]:
    """Queries to propagate to the program point before ``loop``, given an
    incoming query at the loop head."""
    _SATURATIONS.inc()
    with trace.span("executor.loop_invariant", loop=loop.label) as sp:
        invariant = _saturate(engine, loop, query)
        sp.set(disjuncts=len(invariant))
    _INVARIANT_SIZE.observe(len(invariant))
    sj = getattr(engine, "_sj", None)
    if sj is not None:
        sj.note(
            0,
            "loop-invariant",
            f"inferred a loop invariant with {len(invariant)} disjunct(s)"
            f" at the head of loop @L{loop.label}",
            label=loop.label,
        )
    return invariant


def _saturate(engine: "Engine", loop: "Loop", query: Query) -> list[Query]:
    cfg = engine.ctx.config
    mod = engine.pta.modref.statement_mod(loop.body)
    engine._fp_note_stmt(loop.body)
    baseline_size = query.memory_size()

    def weaken(q: Query) -> Query:
        if cfg.loop_inference is LoopInference.DROP_ALL:
            _drop_affected_memory(q, mod)
        _drop_unstable_pure(q, mod)
        _bound_materialization(q, baseline_size, cfg.materialization_bound)
        return q

    invariant: list[Query] = []
    pending: list[Query] = [weaken(query)]
    passes = 0
    while pending and passes < cfg.max_loop_passes:
        passes += 1
        current, pending = pending, []
        for q in current:
            if q.failed or _subsumed(q, invariant):
                continue
            invariant.append(q)
            if cfg.loop_inference is LoopInference.DROP_ALL:
                # Affected constraints are gone; the body cannot change the
                # query further, so the fixpoint is immediate.
                continue
            for pre in engine.run_subwalk(loop.body, q.copy()):
                pre = weaken(pre)
                if not pre.failed and not _subsumed(pre, invariant + pending):
                    pending.append(pre)
    if pending:
        # No convergence: aggressively weaken the stragglers.
        for q in pending:
            _drop_affected_memory(q, mod)
            _drop_unstable_pure(q, mod)
            if not _subsumed(q, invariant):
                invariant.append(q)
                # One defensive closure pass; if the body still perturbs the
                # weakened query, fall back to `any` (witness-only).
                for pre in engine.run_subwalk(loop.body, q.copy()):
                    pre = weaken(pre)
                    _drop_affected_memory(pre, mod)
                    if not pre.failed and not _subsumed(pre, invariant):
                        top = pre
                        top.locals.clear()
                        top.statics.clear()
                        top.field_cells.clear()
                        top.array_cells.clear()
                        top.pure = []
                        invariant.append(top)
                        break
    return invariant


def _subsumed(q: Query, against: list[Query]) -> bool:
    return any(query_entails(q, other) for other in against)


def unstable_vars(q: Query, mod: ModSet) -> set[SymVar]:
    """Roots whose values the loop body may change: values of written
    locals, fields, statics, and array contents."""
    out: set[SymVar] = set()
    for (frame, var), value in q.locals.items():
        if frame == q.current_frame and (var in mod.locals or mod.calls_unknown):
            out.add(q.find(value))
    for (base, field_name), value in q.field_cells.items():
        if mod.writes_field(field_name):
            out.add(q.find(value))
    for (cls, fld), value in q.statics.items():
        if mod.writes_static(cls, fld):
            out.add(q.find(value))
    if mod.writes_field("@elems"):
        for cell in q.array_cells:
            out.add(q.find(cell.value))
            out.add(q.find(cell.index))
    return out


def _drop_unstable_pure(q: Query, mod: ModSet) -> None:
    unstable = unstable_vars(q, mod)
    if not unstable:
        return
    q.drop_pure_if(
        lambda atom: any(
            isinstance(v, SymVar) and q.find(v) in unstable for v in atom.vars()
        )
    )


def _drop_affected_memory(q: Query, mod: ModSet) -> None:
    """The drop-all widening: remove every memory constraint whose location
    the loop may write."""
    for (frame, var) in [
        key
        for key in q.locals
        if key[0] == q.current_frame and (key[1] in mod.locals or mod.calls_unknown)
    ]:
        del q.locals[(frame, var)]
    for key in [
        key for key in q.field_cells if mod.writes_field(key[1])
    ]:
        del q.field_cells[key]
    for key in [key for key in q.statics if mod.writes_static(key[0], key[1])]:
        del q.statics[key]
    if mod.writes_field("@elems") or mod.calls_unknown:
        q.array_cells = []
    q.touch()


def _bound_materialization(q: Query, baseline_size: int, bound: int) -> None:
    """Enforce the materialization bound: if the fixpoint has grown the
    memory far beyond the original query, drop the newest heap cells."""
    allowance = baseline_size + max(1, bound) * 4
    while q.memory_size() > allowance:
        if q.array_cells:
            newest = max(q.array_cells, key=lambda c: c.value.vid)
            q.remove_array_cell(newest)
            continue
        if q.field_cells:
            newest_key = max(q.field_cells, key=lambda k: q.field_cells[k].vid)
            del q.field_cells[newest_key]
            q.touch()
            continue
        break
