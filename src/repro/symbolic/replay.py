"""Concrete replay of path program witnesses.

A witnessed edge comes with a path program — the trace of commands the
backwards search followed. Because witnesses are over-approximate (a
failed refutation, not a proof), a witness may be spurious. This module
*validates* witnesses by replaying them on the concrete interpreter
semantics: a guided forward execution that, at every nondeterministic
point, consults the trace to pick the branch / loop decision the path
program took. A successful replay ends at the producing statement with the
claimed heap effect — turning an abstract witness into a concrete test
case, the strongest triage artifact a developer can ask for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import instructions as ins
from ..ir.interp import ConcreteObject, Interpreter, Limits, _Frame, _State
from ..ir.program import IRProgram
from ..ir.stmts import AtomicStmt, Choice, Loop, Seq, Stmt, walk_commands
from ..obs import metrics
from ..obs import trace as obs_trace


@dataclass
class ReplayResult:
    validated: bool
    reason: str
    #: How far into the trace the replay got (== len(trace) on success).
    consumed: int = 0


class _GuidedInterpreter(Interpreter):
    """An interpreter whose choice/loop decisions follow a witness trace."""

    def __init__(self, program: IRProgram, trace: list[int], limits: Limits) -> None:
        super().__init__(program, limits)
        self.trace = trace
        self._branch_labels: dict[int, list[set[int]]] = {}

    def labels_in(self, stmt: Stmt) -> set[int]:
        return {cmd.label for cmd in walk_commands(stmt)}

    def _choice_branch_labels(self, stmt: Choice) -> list[set[int]]:
        cached = self._branch_labels.get(stmt.label)
        if cached is None:
            cached = [self.labels_in(b) for b in stmt.branches]
            self._branch_labels[stmt.label] = cached
        return cached

    def run_guided(self) -> ReplayResult:
        entry = self.program.entry
        if entry is None:
            return ReplayResult(False, "no entry point")
        method = self.program.methods[entry]
        state = _State()
        state.frames.append(_Frame(method, {}))
        best = 0
        for final_state, cursor in self._exec_guided(state, method.body, 0):
            best = max(best, cursor)
            if cursor >= len(self.trace):
                return ReplayResult(True, "replayed to the producing statement", cursor)
        return ReplayResult(False, "trace not executable", best)

    # The guided executor mirrors Interpreter._exec but threads a trace
    # cursor and prunes decisions inconsistent with the trace.

    def _exec_guided(self, state: _State, stmt: Stmt, cursor: int):
        if cursor >= len(self.trace):
            yield state, cursor  # already done; propagate
            return
        if state.aborted is not None:
            yield state, cursor
            return
        if isinstance(stmt, AtomicStmt):
            yield from self._atomic_guided(state, stmt.cmd, cursor)
            return
        if isinstance(stmt, Seq):
            yield from self._seq_guided(state, stmt.stmts, 0, cursor)
            return
        if isinstance(stmt, Choice):
            expected = self.trace[cursor]
            branch_labels = self._choice_branch_labels(stmt)
            matching = [
                i for i, labels in enumerate(branch_labels) if expected in labels
            ]
            if not matching:
                # The choice is not on the traced path program (e.g. the
                # trace continues past it); try every branch.
                matching = list(range(len(stmt.branches)))
            for n, i in enumerate(matching):
                child = state.fork() if n < len(matching) - 1 else state
                yield from self._exec_guided(child, stmt.branches[i], cursor)
            return
        if isinstance(stmt, Loop):
            body_labels = self._branch_labels.setdefault(
                stmt.label, [self.labels_in(stmt.body)]
            )[0]
            current = [(state, cursor)]
            for _ in range(self.limits.max_loop_iterations + 1):
                if not current:
                    return
                next_round = []
                for s, c in current:
                    if s.aborted is not None or c >= len(self.trace):
                        yield s, c
                        continue
                    if self.trace[c] in body_labels:
                        # The path program iterates: run one body pass;
                        # also allow exiting (the same label may occur
                        # later outside).
                        yield s.fork(), c
                        next_round.extend(self._exec_guided(s, stmt.body, c))
                    else:
                        yield s, c
                current = next_round
            return
        raise TypeError(f"unknown statement {type(stmt).__name__}")

    def _seq_guided(self, state: _State, stmts: list[Stmt], i: int, cursor: int):
        if i >= len(stmts):
            yield state, cursor
            return
        for mid, c in self._exec_guided(state, stmts[i], cursor):
            yield from self._seq_guided(mid, stmts, i + 1, c)

    def _atomic_guided(self, state: _State, cmd: ins.Command, cursor: int):
        advance = cursor < len(self.trace) and self.trace[cursor] == cmd.label
        next_cursor = cursor + 1 if advance else cursor
        if isinstance(cmd, ins.Invoke):
            for out in self._exec_invoke_guided(state, cmd, next_cursor):
                yield out
            return
        if isinstance(cmd, ins.Nondet):
            # Both boolean values are consistent with any trace (the guard
            # assume downstream prunes the wrong one).
            for out_state in self._exec_atomic(state, cmd):
                yield out_state, next_cursor
            return
        for out_state in self._exec_atomic(state, cmd):
            yield out_state, next_cursor

    def _exec_invoke_guided(self, state: _State, cmd: ins.Invoke, cursor: int):
        # Resolve and bind exactly like the base interpreter, but run the
        # callee body guided.
        from ..ir.program import RET_VAR

        if len(state.frames) >= self.limits.max_call_depth:
            state.aborted = "call depth exceeded"
            yield state, cursor
            return
        locals_ = state.frame.locals
        args = [self._atom(state, a) for a in cmd.args]
        receiver = None
        if cmd.kind == "static":
            qname = f"{cmd.decl_class}.{cmd.method_name}"
        else:
            value = locals_.get(cmd.receiver)
            if not isinstance(value, ConcreteObject):
                state.aborted = "null dereference"
                yield state, cursor
                return
            receiver = value
            if cmd.kind == "special":
                qname = self.program.resolve_virtual(cmd.decl_class, cmd.method_name)
            else:
                qname = self.program.resolve_virtual(
                    value.site.class_name, cmd.method_name
                )
            if qname is None:
                state.aborted = "unresolved method"
                yield state, cursor
                return
        callee = self.program.methods.get(qname)
        if callee is None:
            state.aborted = "missing method body"
            yield state, cursor
            return
        callee_locals: dict = {}
        values = ([receiver] + args) if not callee.is_static else args
        for name, value in zip(callee.params, values):
            callee_locals[name] = value
        state.frames.append(_Frame(callee, callee_locals))
        for result, c in self._exec_guided(state, callee.body, cursor):
            if result.aborted is not None:
                yield result, c
                continue
            frame = result.frames.pop()
            if cmd.lhs is not None:
                result.frame.locals[cmd.lhs] = frame.locals.get(RET_VAR)
            yield result, c


def replay_witness(
    program: IRProgram,
    trace: Optional[list[int]],
    limits: Optional[Limits] = None,
) -> ReplayResult:
    """Validate a witness trace by guided concrete execution."""
    if not trace:
        return ReplayResult(False, "no trace to replay")
    metrics.counter("executor.replays").inc()
    with obs_trace.span("executor.replay", trace_len=len(trace)) as sp:
        interp = _GuidedInterpreter(
            program,
            trace,
            limits or Limits(max_loop_iterations=6, max_steps=60_000, max_paths=512),
        )
        result = interp.run_guided()
        sp.set(validated=result.validated)
    if result.validated:
        metrics.counter("executor.replays_validated").inc()
    return result
