"""The mixed symbolic-explicit query: ``Q ::= M ∧ P`` (Section 3.1).

A query is a separating conjunction of exact points-to constraints

* ``x ↦ v``       (a local of some stack frame holds instance ``v``),
* ``C.g ↦ v``     (a static field holds ``v``),
* ``v.f ↦ u``     (field ``f`` of instance ``v`` holds ``u``),
* ``v[i] ↦ u``    (an array cell, with a symbolic data index ``i``),

conjoined with pure constraints (linear integer + reference equalities) and
the paper's *instance constraints* ``v from r̂`` — each REF symbolic
variable carries a points-to region (a set of abstract locations).
``None`` as a region means "unconstrained", which is how the
fully-symbolic ablation representation is realized.

A query owns a union-find over its symbolic variables. Unifying two
variables intersects their regions; an empty intersection refutes the query
(axiom (1) of Section 3.2: ``v from ∅ ⇔ false``). Separation is enforced
when checking satisfiability: distinct field cells over the same field
imply their bases are distinct instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..pointsto.graph import AbsLoc
from ..solver import NULL, Atom, SolverContext, check_sat, ref_eq, ref_ne


def ref_eq_null(v: SymVar) -> Atom:
    return ref_eq(v, NULL)
from ..solver.core import SolverStats
from ..solver.terms import LinAtom, LinExpr, RefAtom
from ..solver.unionfind import UnionFind
from .symvar import DATA, REF, SymVar, fresh_data, fresh_ref

Region = Optional[frozenset]  # frozenset[AbsLoc]; None = unconstrained


@dataclass(frozen=True, slots=True)
class Frame:
    """A pending caller on the abstract backwards call stack."""

    frame_id: int
    method: str  # the caller's qualified method name
    invoke_label: int  # the call-site label inside the caller


@dataclass(slots=True)
class ArrayCell:
    base: SymVar
    index: SymVar
    value: SymVar


class Query:
    """One conjunction in the refutation state (mutable, copy-on-fork)."""

    __slots__ = (
        "uf",
        "regions",
        "maybe_null",
        "locals",
        "statics",
        "field_cells",
        "array_cells",
        "pure",
        "stack",
        "current_frame",
        "current_method",
        "_next_frame",
        "version",
        "failed",
        "fail_reason",
        "_sat_version",
        "_sat_result",
        "solver_ctx",
    )

    def __init__(self, current_method: str) -> None:
        self.uf = UnionFind()
        self.regions: dict[SymVar, Region] = {}
        self.maybe_null: set[SymVar] = set()
        self.locals: dict[tuple[int, str], SymVar] = {}
        self.statics: dict[tuple[str, str], SymVar] = {}
        self.field_cells: dict[tuple[SymVar, str], SymVar] = {}
        self.array_cells: list[ArrayCell] = []
        self.pure: list[tuple[Atom, bool]] = []  # (atom, is_guard_constraint)
        self.stack: list[Frame] = []
        self.current_frame = 0
        self.current_method = current_method
        self._next_frame = 1
        self.version = 0
        self.failed = False
        self.fail_reason = ""
        self._sat_version = -1
        self._sat_result = True
        self.solver_ctx: Optional[SolverContext] = None

    # -- lifecycle -----------------------------------------------------------------

    def copy(self) -> "Query":
        q = Query.__new__(Query)
        q.uf = self.uf.copy()
        q.regions = dict(self.regions)
        q.maybe_null = set(self.maybe_null)
        q.locals = dict(self.locals)
        q.statics = dict(self.statics)
        q.field_cells = dict(self.field_cells)
        q.array_cells = [ArrayCell(c.base, c.index, c.value) for c in self.array_cells]
        q.pure = list(self.pure)
        q.stack = list(self.stack)
        q.current_frame = self.current_frame
        q.current_method = self.current_method
        q._next_frame = self._next_frame
        q.version = self.version
        q.failed = self.failed
        q.fail_reason = self.fail_reason
        q._sat_version = self._sat_version
        q._sat_result = self._sat_result
        # Shared by reference: the context holds only pure component
        # verdicts (key fully determines verdict), so parent, children,
        # and siblings safely reuse one map (see repro.solver.partition).
        q.solver_ctx = self.solver_ctx
        return q

    def touch(self) -> None:
        self.version += 1

    def fail(self, reason: str) -> None:
        self.failed = True
        self.fail_reason = reason
        self.touch()

    # -- symbolic variables ------------------------------------------------------------

    def new_ref(
        self, region: Region, maybe_null: bool = False, hint: str = ""
    ) -> SymVar:
        v = fresh_ref(hint)
        if maybe_null:
            self.maybe_null.add(v)
        if region is not None:
            self.regions[v] = frozenset(region)
            if not region:
                self._empty_region(v)
        self.touch()
        return v

    def _empty_region(self, v: SymVar) -> None:
        """v's instance constraint became empty: if v may be null it *is*
        null (axiom (1) applies only to instances); otherwise refute."""
        root = self.find(v)
        if root in self.maybe_null:
            self.pure.append((ref_eq_null(root), False))
            self.touch()
        else:
            self.fail(f"instance constraint: {v} from ∅")

    def new_data(self, hint: str = "") -> SymVar:
        self.touch()
        return fresh_data(hint)

    def find(self, v: SymVar) -> SymVar:
        return self.uf.find(v)  # type: ignore[return-value]

    def region_of(self, v: SymVar) -> Region:
        return self.regions.get(self.find(v))

    def is_maybe_null(self, v: SymVar) -> bool:
        return self.find(v) in self.maybe_null

    def mark_nonnull(self, v: SymVar) -> None:
        root = self.find(v)
        if root in self.maybe_null:
            self.maybe_null.discard(root)
            region = self.regions.get(root)
            if region is not None and not region:
                self.fail(f"instance constraint: {v} from ∅")
            self.touch()

    def narrow(self, v: SymVar, region: Region) -> bool:
        """Intersect v's instance constraint with ``region`` (axiom (2))."""
        if region is None:
            return True
        root = self.find(v)
        current = self.regions.get(root)
        new = frozenset(region) if current is None else current & frozenset(region)
        if new == current:
            return True
        self.regions[root] = new
        self.touch()
        if not new:
            self._empty_region(root)
            return not self.failed
        return True

    def unify(self, a: SymVar, b: SymVar) -> bool:
        """Equate two instances; intersects regions; refutes on emptiness."""
        worklist = [(a, b)]
        while worklist:
            x, y = worklist.pop()
            rx, ry = self.find(x), self.find(y)
            if rx is ry:
                continue
            if rx.kind != ry.kind:
                self.fail("kind mismatch in unification")
                return False
            new_root = self.uf.union(rx, ry)
            old_root = rx if new_root is ry else ry
            region_old = self.regions.pop(old_root, None)
            region_new = self.regions.pop(new_root, None)
            if region_old is None:
                merged = region_new
            elif region_new is None:
                merged = region_old
            else:
                merged = region_old & region_new
            if merged is not None:
                self.regions[new_root] = merged
            # Null-ness: nonnull wins.
            old_mn = old_root in self.maybe_null
            new_mn = new_root in self.maybe_null
            self.maybe_null.discard(old_root)
            self.maybe_null.discard(new_root)
            if old_mn and new_mn:
                self.maybe_null.add(new_root)
            self.touch()
            if merged is not None and not merged and new_root.kind == REF:
                self._empty_region(new_root)
                if self.failed:
                    return False
            worklist.extend(self._rehash_cells())
        return True

    def _rehash_cells(self) -> list[tuple[SymVar, SymVar]]:
        """Re-key field cells to current roots; same-cell collisions yield
        pending value unifications (separation: one cell, one value)."""
        pending: list[tuple[SymVar, SymVar]] = []
        rebuilt: dict[tuple[SymVar, str], SymVar] = {}
        for (base, field_name), value in self.field_cells.items():
            root = self.find(base)
            key = (root, field_name)
            if key in rebuilt:
                pending.append((rebuilt[key], value))
            else:
                rebuilt[key] = value
        self.field_cells = rebuilt
        # Array cells with equal base and equal index are the same cell.
        merged: list[ArrayCell] = []
        for cell in self.array_cells:
            duplicate = False
            for other in merged:
                if self.find(other.base) is self.find(cell.base) and self.find(
                    other.index
                ) is self.find(cell.index):
                    pending.append((other.value, cell.value))
                    duplicate = True
                    break
            if not duplicate:
                merged.append(cell)
        self.array_cells = merged
        return pending

    # -- memory constraints ----------------------------------------------------------

    def get_local(self, var: str, frame: Optional[int] = None) -> Optional[SymVar]:
        frame = self.current_frame if frame is None else frame
        return self.locals.get((frame, var))

    def set_local(self, var: str, value: SymVar, frame: Optional[int] = None) -> bool:
        """x ↦ value; unifies when x is already constrained (separation:
        one local, one cell)."""
        frame = self.current_frame if frame is None else frame
        existing = self.locals.get((frame, var))
        if existing is not None:
            return self.unify(existing, value)
        self.locals[(frame, var)] = value
        self.touch()
        return True

    def del_local(self, var: str, frame: Optional[int] = None) -> None:
        frame = self.current_frame if frame is None else frame
        if (frame, var) in self.locals:
            del self.locals[(frame, var)]
            self.touch()

    def get_static(self, class_name: str, field_name: str) -> Optional[SymVar]:
        return self.statics.get((class_name, field_name))

    def set_static(self, class_name: str, field_name: str, value: SymVar) -> bool:
        existing = self.statics.get((class_name, field_name))
        if existing is not None:
            return self.unify(existing, value)
        self.statics[(class_name, field_name)] = value
        self.touch()
        return True

    def del_static(self, class_name: str, field_name: str) -> None:
        if (class_name, field_name) in self.statics:
            del self.statics[(class_name, field_name)]
            self.touch()

    def get_field(self, base: SymVar, field_name: str) -> Optional[SymVar]:
        return self.field_cells.get((self.find(base), field_name))

    def set_field(self, base: SymVar, field_name: str, value: SymVar) -> bool:
        self.mark_nonnull(base)
        root = self.find(base)
        existing = self.field_cells.get((root, field_name))
        if existing is not None:
            return self.unify(existing, value)
        self.field_cells[(root, field_name)] = value
        self.touch()
        return True

    def del_field(self, base: SymVar, field_name: str) -> None:
        key = (self.find(base), field_name)
        if key in self.field_cells:
            del self.field_cells[key]
            self.touch()

    def add_array_cell(self, base: SymVar, index: SymVar, value: SymVar) -> bool:
        self.mark_nonnull(base)
        for cell in self.array_cells:
            if self.find(cell.base) is self.find(base) and self.find(
                cell.index
            ) is self.find(index):
                return self.unify(cell.value, value)
        self.array_cells.append(ArrayCell(base, index, value))
        self.touch()
        return True

    def remove_array_cell(self, cell: ArrayCell) -> None:
        self.array_cells = [c for c in self.array_cells if c is not cell]
        self.touch()

    # -- pure constraints -------------------------------------------------------------

    def add_pure(self, atom: Atom, guard: bool = False, cap: Optional[int] = None) -> None:
        if guard and cap is not None:
            # Path-constraint cap (Section 4): once the set is full, further
            # guard constraints are dropped rather than added. The earliest
            # guards — those nearest the query point — are the ones the
            # refutation usually needs, so they are retained.
            if sum(1 for _, g in self.pure if g) >= cap:
                return
        self.pure.append((atom, guard))
        self.touch()

    def drop_pure_if(self, predicate) -> int:
        """Drop pure atoms satisfying ``predicate(atom)``; returns count."""
        kept = [(a, g) for a, g in self.pure if not predicate(a)]
        dropped = len(self.pure) - len(kept)
        if dropped:
            self.pure = kept
            self.touch()
        return dropped

    def canonical_pure(self) -> list[Atom]:
        mapping = {}
        for atom, _ in self.pure:
            for v in atom.vars():
                if isinstance(v, SymVar):
                    mapping[v] = self.find(v)
        return [atom.rename(mapping) for atom, _ in self.pure]

    # -- satisfiability ---------------------------------------------------------------

    def nonnull_roots(self) -> frozenset[SymVar]:
        roots: set[SymVar] = set()
        for value in list(self.locals.values()) + list(self.statics.values()):
            root = self.find(value)
            if root.is_ref and root not in self.maybe_null:
                roots.add(root)
        for (base, _), value in self.field_cells.items():
            roots.add(self.find(base))
            root = self.find(value)
            if root.is_ref and root not in self.maybe_null:
                roots.add(root)
        for cell in self.array_cells:
            roots.add(self.find(cell.base))
            root = self.find(cell.value)
            if root.is_ref and root not in self.maybe_null:
                roots.add(root)
        return frozenset(roots)

    def separation_atoms(self) -> list[Atom]:
        """Disequalities implied by the separating conjunction."""
        atoms: list[Atom] = []
        by_field: dict[str, list[SymVar]] = {}
        for (base, field_name), _ in self.field_cells.items():
            by_field.setdefault(field_name, []).append(self.find(base))
        for bases in by_field.values():
            for i in range(len(bases)):
                for j in range(i + 1, len(bases)):
                    if bases[i] is not bases[j]:
                        atoms.append(ref_ne(bases[i], bases[j]))
        # Distinct array cells on the same instance have distinct indices.
        for i in range(len(self.array_cells)):
            for j in range(i + 1, len(self.array_cells)):
                ci, cj = self.array_cells[i], self.array_cells[j]
                if self.find(ci.base) is self.find(cj.base):
                    expr = LinExpr.var(self.find(ci.index)).sub(
                        LinExpr.var(self.find(cj.index))
                    )
                    atoms.append(LinAtom("!=", expr))
        return atoms

    def check_sat(self, stats: Optional[SolverStats] = None) -> bool:
        if self.failed:
            return False
        if self._sat_version == self.version:
            return self._sat_result
        atoms = self.canonical_pure() + self.separation_atoms()
        from ..perf.memo import SOLVER_PARTITION

        if SOLVER_PARTITION.enabled and self.solver_ctx is None:
            self.solver_ctx = SolverContext()
        ok = check_sat(
            atoms,
            nonnull=self.nonnull_roots(),
            stats=stats,
            context=self.solver_ctx,
        )
        self._sat_version = self.version
        self._sat_result = ok
        if not ok:
            self.fail("pure constraints unsatisfiable")
        return ok

    # -- structure queries --------------------------------------------------------------

    def is_memory_empty(self) -> bool:
        return not self.locals and not self.statics and not self.field_cells and not self.array_cells

    def memory_size(self) -> int:
        return (
            len(self.locals)
            + len(self.statics)
            + len(self.field_cells)
            + len(self.array_cells)
        )

    def all_memory_vars(self) -> set[SymVar]:
        out: set[SymVar] = set()
        for v in self.locals.values():
            out.add(self.find(v))
        for v in self.statics.values():
            out.add(self.find(v))
        for (base, _), value in self.field_cells.items():
            out.add(self.find(base))
            out.add(self.find(value))
        for cell in self.array_cells:
            out.update((self.find(cell.base), self.find(cell.index), self.find(cell.value)))
        return out

    def mentions_in_memory(self, v: SymVar) -> bool:
        root = self.find(v)
        return root in self.all_memory_vars()

    def instance_counts(self) -> dict[AbsLoc, int]:
        """Number of distinct materialized instances per abstract location
        (used by the loop materialization bound)."""
        counts: dict[AbsLoc, int] = {}
        seen: set[SymVar] = set()
        for v in self.all_memory_vars():
            if v in seen or not v.is_ref:
                continue
            seen.add(v)
            region = self.regions.get(v)
            if region is None:
                continue
            for loc in region:
                counts[loc] = counts.get(loc, 0) + 1
        return counts

    # -- frames -----------------------------------------------------------------------

    def push_frame(self, callee_method: str, invoke_label: int) -> int:
        """Enter a callee backwards: the current method becomes a pending
        caller; returns the fresh frame id for the callee."""
        self.stack.append(Frame(self.current_frame, self.current_method, invoke_label))
        self.current_frame = self._next_frame
        self._next_frame += 1
        self.current_method = callee_method
        self.touch()
        return self.current_frame

    def pop_frame(self) -> Frame:
        frame = self.stack.pop()
        self.current_frame = frame.frame_id
        self.current_method = frame.method
        self.touch()
        return frame

    def rebase_to_caller(self, caller_method: str) -> int:
        """Replace the bottom frame: used when expanding past a method entry
        into one of its callers (empty-stack case). Returns the caller's
        fresh frame id."""
        self.current_frame = self._next_frame
        self._next_frame += 1
        self.current_method = caller_method
        self.touch()
        return self.current_frame

    def current_frame_locals(self) -> list[tuple[str, SymVar]]:
        return [
            (var, value)
            for (frame, var), value in self.locals.items()
            if frame == self.current_frame
        ]

    def stack_signature(self) -> tuple:
        return (
            self.current_method,
            tuple((f.method, f.invoke_label) for f in self.stack),
        )

    # -- rendering -------------------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for (frame, var), value in sorted(self.locals.items(), key=lambda kv: (kv[0][0], kv[0][1])):
            parts.append(f"{var}@{frame} ↦ {self.find(value)}")
        for (cls, fld), value in sorted(self.statics.items()):
            parts.append(f"{cls}.{fld} ↦ {self.find(value)}")
        for (base, fld), value in self.field_cells.items():
            parts.append(f"{base}.{fld} ↦ {self.find(value)}")
        for cell in self.array_cells:
            parts.append(
                f"{self.find(cell.base)}[{self.find(cell.index)}] ↦ {self.find(cell.value)}"
            )
        for v, region in self.regions.items():
            if region is not None and self.find(v) is v:
                names = ",".join(sorted(str(l) for l in region))
                parts.append(f"{v} from {{{names}}}")
        for atom, guard in self.pure:
            tag = "ᵍ" if guard else ""
            parts.append(f"{atom}{tag}")
        body = " * ".join(parts) if parts else "any"
        if self.failed:
            body = f"false ({self.fail_reason})"
        return body
