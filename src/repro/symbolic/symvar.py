"""Symbolic variables (the paper's "instances").

A symbolic variable is an existential standing for one concrete value: a
heap instance (kind ``REF``) drawn from a points-to region, or a primitive
value (kind ``DATA``, the paper's special ``data`` region). Identity is by
allocation of the Python object; queries relate variables through their own
union-find, so a :class:`SymVar` itself is immutable and freely shared
between forked queries.
"""

from __future__ import annotations

import itertools

_ids = itertools.count()

REF = "ref"
DATA = "data"


class SymVar:
    """An instance variable; hashable, identity-based."""

    __slots__ = ("vid", "kind", "hint")

    def __init__(self, kind: str, hint: str = "") -> None:
        if kind not in (REF, DATA):
            raise ValueError(f"bad symvar kind {kind!r}")
        self.vid = next(_ids)
        self.kind = kind
        self.hint = hint

    @property
    def is_ref(self) -> bool:
        return self.kind == REF

    def __repr__(self) -> str:
        stem = self.hint or ("v" if self.is_ref else "d")
        return f"{stem}̂{self.vid}"

    def __lt__(self, other: "SymVar") -> bool:
        return self.vid < other.vid


def fresh_ref(hint: str = "") -> SymVar:
    return SymVar(REF, hint)


def fresh_data(hint: str = "") -> SymVar:
    return SymVar(DATA, hint)
