"""Configuration of the witness-refutation search.

The defaults mirror the paper's experimental setup (Section 4):

* an exploration budget of path programs per edge (the paper used 10,000);
* callees skipped soundly beyond call-stack depth 3 via mod/ref dropping;
* the path-constraint set limited to at most two constraints;
* a materialization bound of one instance per abstract location during
  loop-invariant inference.

``Representation`` selects between the three state representations that the
paper compares (Table 2 and the Section 4 ablations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Representation(enum.Enum):
    #: The paper's contribution: symbolic variables carry ``from`` instance
    #: constraints (points-to regions), narrowed as values flow backwards.
    MIXED = "mixed"
    #: PSE-style: points-to facts are used only for alias checks at field
    #: writes and allocation-site checks at ``new``; no region narrowing.
    FULLY_SYMBOLIC = "fully-symbolic"
    #: Symbolic variables are case-split over their points-to sets so every
    #: instance names a single abstract location.
    FULLY_EXPLICIT = "fully-explicit"


class LoopInference(enum.Enum):
    #: Fixpoint over points-to constraints, dropping only the pure
    #: constraints the loop may modify (Section 3.3).
    FULL = "full"
    #: The ablation baseline: drop *every* possibly-affected constraint at
    #: any loop.
    DROP_ALL = "drop-all"


@dataclass
class SearchConfig:
    representation: Representation = Representation.MIXED
    #: Path-program budget per edge; exceeded => timeout (edge not refuted).
    path_budget: int = 10_000
    #: Per-edge wall-clock deadline in seconds; exceeded => timeout (edge
    #: not refuted), exactly like the path-program budget. ``None`` disables
    #: the deadline (the budget alone bounds the search). The paper's
    #: evaluation used a per-edge timeout in just this role.
    deadline_seconds: Optional[float] = None
    #: Callees beyond this symbolic call-stack depth are skipped soundly.
    max_call_depth: int = 3
    #: Maximum number of path (guard) constraints kept in a query.
    max_path_constraints: int = 2
    #: Loop-invariant inference materialization bound per abstract location.
    materialization_bound: int = 1
    #: Maximum body passes per loop saturation before aggressive weakening.
    max_loop_passes: int = 10
    #: Query-history subsumption at loop heads and procedure boundaries.
    simplify_queries: bool = True
    #: Memoize solver verdicts (check_sat/entails) on canonical frozen
    #: constraint sets (CLI ``--no-memo`` disables). Process-wide: the
    #: engine applies it to :data:`repro.perf.SOLVER_MEMO` at construction.
    memoize_solver: bool = True
    #: Cross-search refuted-state cache + entailment-based worklist
    #: subsumption (CLI ``--no-subsumption`` disables).
    state_subsumption: bool = True
    #: Relevance-partitioned incremental solving: decompose each pure
    #: conjunction into variable-connected components, cache verdicts per
    #: component, and reuse parent states' solved components via
    #: per-lineage solver contexts (CLI ``--no-partition`` restores the
    #: monolithic solver path). Process-wide like ``memoize_solver``.
    partition_solver: bool = True
    loop_inference: LoopInference = LoopInference.FULL
    #: Upper bound on disjuncts produced by one array-write case split
    #: before falling back to dropping disaliasing constraints.
    max_array_case_splits: int = 2
    #: Record, per search, the set of methods the search visited or whose
    #: mod/ref summaries it consulted (``EdgeResult.footprint``). The serve
    #: session uses footprints to invalidate only the verdicts an edit can
    #: touch; off by default because one-shot runs never read them.
    record_footprints: bool = False
    #: Worklist discipline inside one search: ``"lifo"`` (the paper's DFS,
    #: the default) or ``"priority"`` (cheapest-state-first best-first
    #: search keyed on constraint count + symbolic-memory size; see
    #: :func:`repro.engine.schedule.state_cost`). The driver also sorts
    #: job *batches* cheapest-first under ``"priority"``. Verdicts are
    #: schedule-independent on budget-ample runs; witness traces and
    #: near-budget timeout boundaries may differ.
    schedule: str = "lifo"
    #: Cheap-first portfolio (CLI ``--portfolio``): run every job at a
    #: small budget/deadline rung first and re-run only the survivors at
    #: escalating rungs, re-using the refuted-state cache and solver
    #: memos across rungs. The final rung always runs at the full
    #: configured budget/deadline, so verdicts are bit-identical to the
    #: fixed-schedule run.
    portfolio: bool = False
    #: Budget/deadline divisors for the portfolio rungs, cheapest first
    #: (``path_budget // d``); divisors <= 1 are ignored and a final
    #: full-budget rung is always appended. See
    #: :func:`repro.engine.schedule.rung_ladder`.
    portfolio_rungs: tuple = (16, 4)
    #: Path-level work stealing (CLI ``--steal``, thread backend only):
    #: drained pool threads steal unexplored path-state subtrees from the
    #: heaviest in-flight search. Shares one budget across thieves, which
    #: can resolve searches that would otherwise time out — strictly more
    #: precise, but not bit-identical near the budget boundary, hence its
    #: own toggle.
    work_stealing: bool = False

    #: Persistent cross-run verdict store directory (CLI ``--cache-dir``,
    #: env ``REPRO_CACHE_DIR``): solver verdicts and refuted states are
    #: read from and written back to ``<dir>/verdicts.sqlite``, shared
    #: across runs, process-pool workers, and ``repro serve`` restarts.
    #: ``None`` (the default) disables persistence entirely.
    cache_dir: Optional[str] = None

    #: Slow-query threshold in milliseconds (CLI ``--slow-query-ms``):
    #: any search whose wall clock exceeds it has its journal captured by
    #: the always-on flight recorder (:mod:`repro.obs.telemetry`), so
    #: ``repro explain --slow`` works without ``--journal``. ``None``
    #: disables capture; the ring-buffer summaries are recorded regardless.
    slow_query_ms: Optional[float] = 2000.0

    def copy(self, **overrides) -> "SearchConfig":
        from dataclasses import replace

        return replace(self, **overrides)
