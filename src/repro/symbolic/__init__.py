"""The witness-refutation analysis: mixed symbolic-explicit queries,
backwards transfer functions, loop-invariant inference, and the
interprocedural path-program search engine."""

from .config import LoopInference, Representation, SearchConfig
from .executor import Engine, SearchTimeout
from .query import ArrayCell, Frame, Query
from .replay import ReplayResult, replay_witness
from .simplification import QueryHistory, query_entails
from .stats import REFUTED, TIMEOUT, WITNESSED, EdgeResult, SearchStats
from .symvar import DATA, REF, SymVar, fresh_data, fresh_ref
from .transfer import TransferContext, apply_assume, transfer_command
from .witness import render_witness, witness_steps

__all__ = [
    "LoopInference",
    "Representation",
    "SearchConfig",
    "Engine",
    "SearchTimeout",
    "ArrayCell",
    "Frame",
    "Query",
    "QueryHistory",
    "query_entails",
    "ReplayResult",
    "replay_witness",
    "REFUTED",
    "TIMEOUT",
    "WITNESSED",
    "EdgeResult",
    "SearchStats",
    "DATA",
    "REF",
    "SymVar",
    "fresh_data",
    "fresh_ref",
    "TransferContext",
    "apply_assume",
    "transfer_command",
    "render_witness",
    "witness_steps",
]
