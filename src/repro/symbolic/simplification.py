"""Query simplification: subsumption joins and query histories.

Section 3.3 of the paper: the refutation state ``Q1 ∨ Q2`` can be replaced
by ``Q2`` whenever ``Q1 ⊨ Q2`` — a refutation of the weaker query refutes
the stronger one, so exploring the stronger one is redundant. The
implementation keeps a *query history* at procedure boundaries and loop
heads and drops any query entailed-into a previously seen weaker query.

Entailment between queries is checked structurally: an injective matching
of the weaker query's memory constraints into the stronger one's, under
which regions must shrink (``(v from r1) ⊨ (v from r2) iff r1 ⊆ r2``,
Equation § in the paper) and pure atoms must be syntactically present.
A failed match only costs re-exploration, never soundness.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics
from ..solver import Atom
from .query import Query
from .symvar import SymVar

# Structural query-entailment calls (worklist subsumption, refuted-state
# cache, query histories). This — not the dead ``solver.entails`` atom-set
# check — is what the ablation grid's ``entails_calls`` column reports.
_ENTAILS_CALLS = metrics.counter("executor.entails_calls")


def query_entails(strong: Query, weak: Query) -> bool:
    """Conservative check that ``strong ⊨ weak``."""
    _ENTAILS_CALLS.inc()
    if strong.failed:
        return True
    if weak.failed:
        return False
    if strong.stack_signature() != weak.stack_signature():
        return False
    frame_map = _frame_map(weak, strong)
    mapping: dict[SymVar, SymVar] = {}

    def match(wv: SymVar, sv: SymVar) -> bool:
        wr, sr = weak.find(wv), strong.find(sv)
        if wr in mapping:
            return mapping[wr] is sr
        if wr.kind != sr.kind:
            return False
        mapping[wr] = sr
        return True

    # Every memory constraint of the weak query must exist in the strong one.
    for (frame, var), wv in weak.locals.items():
        sframe = frame_map.get(frame)
        if sframe is None:
            return False
        sv = strong.locals.get((sframe, var))
        if sv is None or not match(wv, sv):
            return False
    for key, wv in weak.statics.items():
        sv = strong.statics.get(key)
        if sv is None or not match(wv, sv):
            return False
    # Field cells: resolve bases as the mapping grows.
    pending = list(weak.field_cells.items())
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for (base, field_name), wv in pending:
            broot = weak.find(base)
            if broot not in mapping:
                remaining.append(((base, field_name), wv))
                continue
            sv = strong.field_cells.get((mapping[broot], field_name))
            if sv is None or not match(wv, sv):
                return False
            progress = True
        pending = remaining
    if pending:
        return False
    # Array cells: greedy matching.
    used: set[int] = set()
    for cell in weak.array_cells:
        broot = weak.find(cell.base)
        if broot not in mapping:
            return False
        found = False
        for i, scell in enumerate(strong.array_cells):
            if i in used or strong.find(scell.base) is not mapping[broot]:
                continue
            snapshot = dict(mapping)
            if match(cell.index, scell.index) and match(cell.value, scell.value):
                used.add(i)
                found = True
                break
            mapping.clear()
            mapping.update(snapshot)
        if not found:
            return False
    # Instance constraints: strong regions must be subsets (Equation §).
    for wroot, sroot in mapping.items():
        wregion = weak.regions.get(wroot)
        if wregion is None:
            continue  # weak is unconstrained: anything entails it
        sregion = strong.regions.get(sroot)
        if sregion is None or not sregion <= wregion:
            return False
        # Null-ness: weak claims nonnull => strong must too.
        if wroot not in weak.maybe_null and sroot in strong.maybe_null:
            return False
    # Pure constraints: syntactic inclusion after renaming. Variables that
    # appear only in pure atoms (not anchored in memory) default to the
    # identity mapping — forked queries share SymVar objects, so a
    # free-floating variable denotes the same existential in both.
    strong_atoms = {_norm(a) for a in strong.canonical_pure()}
    for atom in weak.canonical_pure():
        rename: dict[SymVar, SymVar] = {}
        for v in atom.vars():
            if not isinstance(v, SymVar):
                continue
            wroot = weak.find(v)
            rename[wroot] = mapping.get(wroot, strong.find(wroot))
        renamed = atom.rename(rename)
        if _norm(renamed) not in strong_atoms:
            return False
    return True


def _norm(atom: Atom):
    from ..solver.terms import RefAtom

    if isinstance(atom, RefAtom):
        return atom.normalized()
    return atom


def _frame_map(weak: Query, strong: Query) -> dict[int, int]:
    """Positional frame-id correspondence (same stack signature assumed)."""
    wframes = [weak.current_frame] + [f.frame_id for f in reversed(weak.stack)]
    sframes = [strong.current_frame] + [f.frame_id for f in reversed(strong.stack)]
    return dict(zip(wframes, sframes))


class QueryHistory:
    """Per-program-point histories with subsumption-based dropping.

    Optionally backed by a cross-search
    :class:`~repro.perf.cache.RefutedStateCache` (``shared``): states the
    cache already proved refuted are dropped immediately, and states this
    search records are staged in ``pending`` so the engine can flush them
    into the shared cache once the search completes REFUTED (and discard
    them on WITNESSED/TIMEOUT, where nothing is proven). Subwalk states
    — whose continuation is truncated to the loop body — are never staged
    and never consult the shared cache (``flushable=False``).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_per_point: int = 64,
        shared: Optional["object"] = None,
    ) -> None:
        self.enabled = enabled
        self.max_per_point = max_per_point
        self.shared = shared
        self._seen: dict[tuple, list[Query]] = {}
        self.drops = 0
        self.pending: list[tuple[tuple, Query]] = []

    def should_drop(
        self, point_key: tuple, query: Query, flushable: bool = True
    ):
        """Truthy if an already-explored weaker query (this search) or an
        already-refuted query (shared cache) subsumes this one; otherwise
        records the query for future checks and returns ``False``. The
        truthy values distinguish the source for provenance: ``"history"``
        for the per-search visit history, ``"shared"`` for the cross-search
        refuted-state cache."""
        if not self.enabled:
            return False
        key = (point_key, query.stack_signature())
        history = self._seen.setdefault(key, [])
        for old in history:
            if query_entails(query, old):
                self.drops += 1
                return "history"
        if self.shared is not None and flushable and self.shared.subsumes(key, query):
            self.drops += 1
            return "shared"
        if len(history) < self.max_per_point:
            snapshot = query.copy()
            history.append(snapshot)
            if self.shared is not None and flushable:
                self.pending.append((key, snapshot))
        return False

    def take_pending(self) -> list[tuple[tuple, Query]]:
        """Hand over (and reset) the states staged for the shared cache.
        Call only when the search they came from completed REFUTED."""
        out = self.pending
        self.pending = []
        return out

    def discard_pending(self) -> None:
        self.pending = []

    def clear(self) -> None:
        self._seen.clear()
        self.pending = []
